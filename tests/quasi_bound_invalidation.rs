//! Quasi-bound cache invalidation audit (paper §4.3, Figure 9).
//!
//! The history cache admits accesses below a remembered upper bound without
//! touching shadow memory, so `free`/`realloc` are the correctness-critical
//! events: a stale quasi-bound must never *suppress* a use-after-free or a
//! post-realloc overflow. The implementation maintains three invariants,
//! each pinned by a test here:
//!
//! 1. **Loop-exit re-validation** (Figure 9 line 14): a `free` inside the
//!    loop may be admitted by the cache mid-loop, but `loop_final_check`
//!    re-checks `CI(y, y + ub)` at loop exit and reports it.
//! 2. **Planner refusal**: a pointer *redefined* in the loop (`realloc`)
//!    gets neither a cache slot nor a promoted pre-check — every access is
//!    checked individually.
//! 3. **Slot reset at loop entry**: quasi-bounds never survive from one loop
//!    to the next, so a `free`/`realloc` between two loops is caught at the
//!    first access of the second loop, not admitted from history.
//!
//! With the §5.4 reverse-traversal mitigation enabled, the cache also keeps
//! a quasi-*lower*-bound for end-anchored descending traversals — and every
//! invariant above must hold symmetrically below the anchor: the loop-exit
//! re-validation covers `CI(y + lb, y)`, and slots (lower bound included)
//! reset at loop entry. The `quasi_lower_bound_*` tests pin that symmetry.

use giantsan::analysis::{analyze, SiteFate, ToolProfile};
use giantsan::core::GiantSan;
use giantsan::ir::{run, ExecConfig, Expr, Program, ProgramBuilder};
use giantsan::runtime::{ErrorKind, RuntimeConfig, Sanitizer};

fn run_giantsan(prog: &Program, inputs: &[i64], profile: &ToolProfile) -> giantsan::ir::ExecResult {
    let a = analyze(prog, profile);
    let mut san = GiantSan::new(RuntimeConfig::small());
    run(prog, inputs, &mut san, &a.plan, &ExecConfig::default())
}

/// Like [`run_giantsan`] but with the §5.4 reverse-traversal mitigation on
/// (quasi-lower-bounds populated), returning the sanitizer too so tests can
/// assert the cache actually admitted accesses.
fn run_with_reverse_mitigation(
    prog: &Program,
    inputs: &[i64],
) -> (giantsan::ir::ExecResult, GiantSan) {
    let a = analyze(prog, &ToolProfile::giantsan());
    let mut san = GiantSan::builder()
        .config(RuntimeConfig::small())
        .reverse_mitigation(true)
        .build();
    let r = run(prog, inputs, &mut san, &a.plan, &ExecConfig::default());
    (r, san)
}

/// Invariant 1: a mid-loop `free` admitted by a quasi-bound hit is still
/// reported — the loop-exit final check re-validates the whole cached range.
#[test]
fn mid_loop_free_cannot_be_suppressed_by_the_cache() {
    let mut b = ProgramBuilder::new("uaf-cached");
    let p = b.alloc_heap(256);
    let idx = b.alloc_heap(64);
    b.store(idx, 0i64, 8, 1i64);
    b.for_loop(0i64, 2i64, |b, i| {
        // The data-dependent offset forces the quasi-bound cached path for
        // p; the in-loop free is a barrier that blocks promotion but, by
        // design, not caching.
        let j = b.load(idx, 0i64, 8);
        b.load_discard(p, Expr::var(j) * 8, 8);
        b.if_nonzero(Expr::from(1i64) - Expr::var(i), |b| b.free(p));
    });
    let prog = b.build();

    for profile in [ToolProfile::giantsan(), ToolProfile::giantsan_cache_only()] {
        let a = analyze(&prog, &profile);
        assert_eq!(
            a.fates[2],
            SiteFate::Cached,
            "{}: the p access must take the cached path for this test to \
             exercise staleness",
            profile.name
        );
        let r = run_giantsan(&prog, &[], &profile);
        assert!(
            r.detected(),
            "{}: use-after-free suppressed by a stale quasi-bound",
            profile.name
        );
        assert!(
            r.reports.iter().any(|e| e.kind == ErrorKind::UseAfterFree),
            "{}: expected a use-after-free report, got {:?}",
            profile.name,
            r.reports
        );
    }
}

/// Invariant 2: `realloc` inside the loop redefines the pointer, so the
/// planner must refuse both caching and promotion — and the per-access
/// checks then catch the post-realloc overflow.
#[test]
fn in_loop_realloc_blocks_caching_and_overflow_is_reported() {
    let mut b = ProgramBuilder::new("realloc-cached");
    let p = b.alloc_heap(256);
    b.for_loop(0i64, 2i64, |b, i| {
        // In bounds of the original 256, out of bounds after the shrink.
        b.store(p, 200i64, 8, 7i64);
        b.if_nonzero(Expr::from(1i64) - Expr::var(i), |b| b.realloc(p, 64i64));
    });
    let prog = b.build();

    let a = analyze(&prog, &ToolProfile::giantsan());
    assert_eq!(a.plan.num_caches, 0, "realloc'd pointer must not be cached");
    assert!(
        a.plan.loops.values().all(|lp| lp.pre_checks.is_empty()),
        "realloc'd pointer must not be promoted"
    );
    let r = run_giantsan(&prog, &[], &ToolProfile::giantsan());
    assert!(r.detected(), "post-realloc overflow missed");
    assert!(
        r.reports
            .iter()
            .any(|e| e.kind == ErrorKind::HeapBufferOverflow),
        "expected a heap overflow report, got {:?}",
        r.reports
    );
}

/// Invariant 3 (free): quasi-bounds do not survive across loops — a free
/// between two cached loops is reported at the second loop's first access.
#[test]
fn quasi_bound_does_not_survive_across_loops_after_free() {
    let mut b = ProgramBuilder::new("uaf-cross-loop");
    let p = b.alloc_heap(256);
    let idx = b.alloc_heap(64);
    b.store(idx, 0i64, 8, 4i64);
    let cached_loop = |b: &mut ProgramBuilder| {
        b.for_loop(0i64, 4i64, |b, _| {
            let j = b.load(idx, 0i64, 8);
            b.load_discard(p, Expr::var(j) * 8, 8);
        });
    };
    cached_loop(&mut b);
    b.free(p);
    cached_loop(&mut b);
    let prog = b.build();

    let a = analyze(&prog, &ToolProfile::giantsan());
    // Both p accesses ride the cache; the idx loads are hoisted.
    assert_eq!(a.fates[2], SiteFate::Cached);
    assert_eq!(a.fates[4], SiteFate::Cached);
    let r = run_giantsan(&prog, &[], &ToolProfile::giantsan());
    assert!(
        r.reports.iter().any(|e| e.kind == ErrorKind::UseAfterFree),
        "freed object admitted from a previous loop's quasi-bound: {:?}",
        r.reports
    );
}

/// Invariant 1, below the anchor: a mid-loop `free` admitted by a
/// quasi-*lower*-bound hit is still reported — the loop-exit final check
/// re-validates `CI(y + lb, y)`, the descending window the cache covered.
#[test]
fn quasi_lower_bound_free_is_caught_by_the_final_check() {
    let mut b = ProgramBuilder::new("uaf-cached-reverse");
    let p = b.alloc_heap(256);
    let idx = b.alloc_heap(64);
    b.store(idx, 0i64, 8, 1i64);
    // The paper's end-anchored idiom: every offset from `end` is negative,
    // so only the mitigation's lower bound can admit these from history.
    let end = b.ptr_add(p, 256i64);
    b.for_loop(0i64, 2i64, |b, i| {
        let j = b.load(idx, 0i64, 8);
        b.load_discard(end, Expr::var(j) * -8, 8);
        b.if_nonzero(Expr::from(1i64) - Expr::var(i), |b| b.free(p));
    });
    let prog = b.build();

    let a = analyze(&prog, &ToolProfile::giantsan());
    assert_eq!(
        a.fates[2],
        SiteFate::Cached,
        "the end-anchored access must take the cached path for this test to \
         exercise lower-bound staleness"
    );
    let (r, san) = run_with_reverse_mitigation(&prog, &[]);
    assert!(
        san.counters().cache_hits >= 1,
        "the second iteration must be admitted by the quasi-lower-bound \
         (got {:?})",
        san.counters()
    );
    assert!(
        r.detected(),
        "use-after-free below the anchor suppressed by a stale quasi-lower-bound"
    );
    assert!(
        r.reports.iter().any(|e| e.kind == ErrorKind::UseAfterFree),
        "expected a use-after-free report, got {:?}",
        r.reports
    );
}

/// Invariant 3, below the anchor: quasi-lower-bounds do not survive across
/// loops — after a shrinking realloc between two end-anchored reverse loops,
/// the second loop's first access lands in the released tail and must be
/// reported, not admitted from the first loop's lower bound.
#[test]
fn quasi_lower_bound_does_not_survive_realloc_shrink() {
    let mut b = ProgramBuilder::new("realloc-cached-reverse");
    let p = b.alloc_heap(256);
    let idx = b.alloc_heap(64);
    b.store(idx, 0i64, 8, 1i64);
    let end = b.ptr_add(p, 256i64);
    let reverse_loop = |b: &mut ProgramBuilder| {
        b.for_loop(0i64, 4i64, |b, _| {
            let j = b.load(idx, 0i64, 8);
            // [end - 8, end): the last word of the original 256, released
            // once the object shrinks to 64.
            b.load_discard(end, Expr::var(j) * -8, 8);
        });
    };
    reverse_loop(&mut b);
    b.realloc(p, 64i64);
    reverse_loop(&mut b);
    let prog = b.build();

    let (r, san) = run_with_reverse_mitigation(&prog, &[]);
    assert!(
        san.counters().cache_hits >= 1,
        "the first loop must converge onto its quasi-lower-bound (got {:?})",
        san.counters()
    );
    assert!(
        r.reports
            .iter()
            .any(|e| e.kind == ErrorKind::HeapBufferOverflow || e.kind == ErrorKind::UseAfterFree),
        "access into the realloc-released tail admitted from a previous \
         loop's quasi-lower-bound: {:?}",
        r.reports
    );
}

/// Invariant 3 (realloc): after a shrinking realloc between two cached
/// loops, an access within the *old* bound must be reported as an overflow
/// by the second loop — the first loop's quasi-bound is gone.
#[test]
fn quasi_bound_does_not_survive_across_loops_after_realloc() {
    let mut b = ProgramBuilder::new("realloc-cross-loop");
    let p = b.alloc_heap(256);
    let idx = b.alloc_heap(64);
    b.store(idx, 0i64, 8, 20i64); // access [160, 168): inside 256, outside 64
    let cached_loop = |b: &mut ProgramBuilder| {
        b.for_loop(0i64, 4i64, |b, _| {
            let j = b.load(idx, 0i64, 8);
            b.load_discard(p, Expr::var(j) * 8, 8);
        });
    };
    cached_loop(&mut b);
    b.realloc(p, 64i64);
    cached_loop(&mut b);
    let prog = b.build();

    let r = run_giantsan(&prog, &[], &ToolProfile::giantsan());
    assert!(
        r.reports
            .iter()
            .any(|e| e.kind == ErrorKind::HeapBufferOverflow || e.kind == ErrorKind::UseAfterFree),
        "post-realloc overflow admitted from a previous loop's quasi-bound: {:?}",
        r.reports
    );
}
