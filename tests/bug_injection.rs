//! Bug-injection differential testing: random safe programs with one
//! injected memory-safety violation of known geometry (see
//! `giantsan::workloads::fuzz`). Verifies each tool's verdict against what
//! its mechanism predicts — in particular that GiantSan's anchored
//! operation-level checks *dominate* ASan's instruction-level ones.

use giantsan::harness::{run_tool, Tool};
use giantsan::ir::Program;
use giantsan::runtime::RuntimeConfig;
use giantsan::workloads::fuzz::{buggy_program, InjectedBug};

fn detected(tool: Tool, prog: &Program) -> bool {
    run_tool(tool, prog, &[], &RuntimeConfig::small()).detected()
}

#[test]
fn giantsan_detects_every_injected_bug() {
    for seed in 0..40u64 {
        for bug in InjectedBug::ALL {
            let fp = buggy_program(seed, bug);
            assert!(
                detected(Tool::GiantSan, &fp.program),
                "GiantSan missed {} at seed {seed}",
                bug.name()
            );
        }
    }
}

#[test]
fn giantsan_dominates_asan_per_program() {
    let mut gs_total = 0u32;
    let mut asan_total = 0u32;
    for seed in 0..40u64 {
        for bug in InjectedBug::ALL {
            let fp = buggy_program(seed, bug);
            let gs = detected(Tool::GiantSan, &fp.program);
            let asan = detected(Tool::Asan, &fp.program);
            assert!(
                gs >= asan,
                "dominance violated on {} seed {seed}: asan={asan} gs={gs}",
                bug.name()
            );
            gs_total += gs as u32;
            asan_total += asan as u32;
        }
    }
    assert!(
        gs_total > asan_total,
        "GiantSan should strictly out-detect ASan on far overflows \
         (gs {gs_total} vs asan {asan_total})"
    );
}

#[test]
fn far_overflows_are_the_asan_gap() {
    // Every far overflow that ASan misses lands inside a live neighbour;
    // GiantSan's anchored check flags the region between base and access.
    let mut missed_by_asan = 0;
    for seed in 0..40u64 {
        let fp = buggy_program(seed, InjectedBug::OverflowFar);
        if !detected(Tool::Asan, &fp.program) {
            missed_by_asan += 1;
            assert!(detected(Tool::GiantSan, &fp.program), "seed {seed}");
        }
    }
    assert!(
        missed_by_asan > 10,
        "the generator should produce real bypasses, got {missed_by_asan}"
    );
}

#[test]
fn near_bugs_are_caught_by_all_location_tools() {
    for seed in 0..20u64 {
        for bug in [
            InjectedBug::OverflowNear,
            InjectedBug::UnderflowNear,
            InjectedBug::UseAfterFree,
            InjectedBug::StackStrcpy,
        ] {
            let fp = buggy_program(seed, bug);
            for tool in [Tool::GiantSan, Tool::Asan, Tool::AsanMinusMinus] {
                assert!(
                    detected(tool, &fp.program),
                    "{} missed {} at seed {seed}",
                    tool.name(),
                    bug.name()
                );
            }
        }
    }
}

#[test]
fn lfp_geometry_profile() {
    // LFP's mechanism: bounds from size-class slots, anchored arithmetic,
    // no stack coverage. Near overflows inside slack are missed; far
    // overflows escape the slot and are caught; stack strcpy is invisible.
    let mut near_missed = 0;
    for seed in 0..40u64 {
        let fp = buggy_program(seed, InjectedBug::OverflowNear);
        if !detected(Tool::Lfp, &fp.program) {
            near_missed += 1;
        }
        assert!(
            detected(
                Tool::Lfp,
                &buggy_program(seed, InjectedBug::OverflowFar).program
            ),
            "far overflow escapes the slot, seed {seed}"
        );
        assert!(
            !detected(
                Tool::Lfp,
                &buggy_program(seed, InjectedBug::StackStrcpy).program
            ),
            "stack is unprotected for LFP, seed {seed}"
        );
    }
    assert!(
        near_missed > 5,
        "rounding slack should hide some near overflows"
    );
}
