//! Serial-vs-parallel determinism: the batch engine's core contract.
//!
//! The `BatchRunner` promises that results are a function of the cell
//! matrix alone — never of the thread count or of scheduling order. These
//! tests run the same experiments serially and with a 4-worker pool and
//! require byte-identical modelled outputs: CSV rows, detection counters,
//! matrix digests, and the `BENCH_PR2` determinism payload fields.

use giantsan::harness::experiments::{table2, table3, table4, table5, trace};
use giantsan::harness::{csv, matrix, BatchRunner, Tool};
use giantsan::runtime::RuntimeConfig;

#[test]
fn table2_csv_is_byte_identical_across_thread_counts() {
    let serial = csv::table2_csv(&table2::table2_with(&BatchRunner::serial(), 1));
    for threads in [2, 4, 8] {
        let parallel = csv::table2_csv(&table2::table2_with(&BatchRunner::new(threads), 1));
        assert_eq!(serial, parallel, "{threads} threads");
    }
}

#[test]
fn detection_tables_are_thread_count_invariant() {
    let runner4 = BatchRunner::new(4);

    let t3s = table3::table3_with(&BatchRunner::serial(), 40);
    let t3p = table3::table3_with(&runner4, 40);
    assert_eq!(csv::table3_csv(&t3s), csv::table3_csv(&t3p));

    let t4s = table4::table4_with(&BatchRunner::serial());
    let t4p = table4::table4_with(&runner4);
    assert_eq!(csv::table4_csv(&t4s), csv::table4_csv(&t4p));

    let t5s = table5::table5_with(&BatchRunner::serial(), 60);
    let t5p = table5::table5_with(&runner4, 60);
    assert_eq!(csv::table5_csv(&t5s), csv::table5_csv(&t5p));
}

#[test]
fn matrix_digests_agree_across_three_seed_sets_and_thread_counts() {
    let cfg = RuntimeConfig::small();
    for seeds in [[0u64, 1, 2], [7, 11, 13], [100, 200, 300]] {
        let cells = matrix::default_matrix(1, &seeds);
        let serial = matrix::run_matrix(&BatchRunner::serial(), &cells, &cfg);
        let serial_digest = matrix::digest(&serial);
        for threads in [2, 4] {
            let parallel = matrix::run_matrix(&BatchRunner::new(threads), &cells, &cfg);
            assert_eq!(serial, parallel, "seeds {seeds:?}, {threads} threads");
            assert_eq!(serial_digest, matrix::digest(&parallel));
        }
        // And re-running serially reproduces the digest exactly (the runs
        // share no state).
        let again = matrix::run_matrix(&BatchRunner::serial(), &cells, &cfg);
        assert_eq!(serial_digest, matrix::digest(&again));
    }
}

#[test]
fn telemetry_data_plane_is_thread_count_invariant() {
    // The telemetry layer's determinism contract: the JSONL event stream,
    // its FNV-1a digest, the histograms, and the Prometheus exposition are
    // byte-identical at any thread count. Only the Chrome trace — the
    // presentation plane — may (and does) differ.
    for (workload, tool) in [
        ("figure8", Tool::GiantSan),
        ("figure8", Tool::Asan),
        ("519.lbm_r", Tool::GiantSan),
    ] {
        let serial = trace::trace_study_with(&BatchRunner::serial(), workload, tool, 1).unwrap();
        for threads in [2, 4] {
            let parallel =
                trace::trace_study_with(&BatchRunner::new(threads), workload, tool, 1).unwrap();
            let tag = format!("{workload} / {} / {threads} threads", tool.name());
            assert_eq!(serial.events_jsonl(), parallel.events_jsonl(), "{tag}");
            assert_eq!(serial.digest(), parallel.digest(), "{tag}");
            assert_eq!(serial.hists, parallel.hists, "{tag}");
            assert_eq!(serial.prometheus(), parallel.prometheus(), "{tag}");
            assert_eq!(
                csv::trace_counters_csv(&serial),
                csv::trace_counters_csv(&parallel),
                "{tag}"
            );
        }
    }
}

#[test]
fn bench_pr2_reports_matching_digests() {
    let report = giantsan::harness::bench_pr2::run_bench(4);
    assert_eq!(report.digest_serial, report.digest_parallel);
    assert!(report.table2_csv_identical);
    assert!(report.deterministic());
    assert!(report.threads == 4 && report.cells > 0);
}
