//! Paper-claims traceability: each test asserts one specific quantitative
//! sentence from the paper against this implementation, quoting it. If a
//! claim ever stops holding, the failure names the section it came from.

use giantsan::analysis::{analyze, SiteFate, ToolProfile};
use giantsan::baselines::Asan;
use giantsan::core::{encoding, GiantSan};
use giantsan::harness::{run_tool, Tool};
use giantsan::ir::{run, ExecConfig, Expr, ProgramBuilder};
use giantsan::runtime::{AccessKind, CacheSlot, Region, RuntimeConfig, Sanitizer};

/// §1: "checking whether a 1KB region contains a non-addressable byte
/// requires loading 128 segment states in ASan."
#[test]
fn s1_asan_1kb_needs_128_loads() {
    let mut asan = Asan::new(RuntimeConfig::default());
    let a = asan.alloc(1024, Region::Heap).unwrap();
    asan.counters_mut().reset();
    asan.check_region(a.base, a.base + 1024, AccessKind::Read)
        .unwrap();
    assert_eq!(asan.counters().shadow_loads, 128);
}

/// §3 (abstract, §2.2): GiantSan "can safeguard a sequential region of
/// arbitrary size in O(1) time" — at most 3 shadow loads at any size.
#[test]
fn s3_giantsan_region_checks_are_constant() {
    let mut gs = GiantSan::new(RuntimeConfig::default());
    for size in [8u64, 64, 1024, 65536, 1 << 20] {
        let a = gs.alloc(size, Region::Heap).unwrap();
        gs.counters_mut().reset();
        gs.check_region(a.base, a.base + size, AccessKind::Read)
            .unwrap();
        assert!(
            gs.counters().shadow_loads <= 3,
            "{size}: {} loads",
            gs.counters().shadow_loads
        );
    }
}

/// §4.1: "an x value in the shadow memory indicates at least 8 × 2^x and
/// less than 8 × 2^(x+1) consecutive bytes are addressable."
#[test]
fn s4_1_fold_degree_brackets_the_run_length() {
    let mut gs = GiantSan::new(RuntimeConfig::small());
    for size_words in 1..200u64 {
        let a = gs.alloc(size_words * 8, Region::Heap).unwrap();
        for j in 0..size_words {
            let code = gs.shadow().get(gs.shadow().segment_of(a.base + j * 8));
            let x = encoding::folding_degree(code).expect("live segment folded");
            let following = (size_words - j) * 8;
            assert!(
                following >= 8 << x,
                "claims more than the run: j={j}, x={x}, run={following}"
            );
            assert!(
                following < 8 << (x + 1),
                "under-claims the run: j={j}, x={x}, run={following}"
            );
        }
        gs.free(a.base).unwrap();
    }
}

/// §4.1 / Figure 5: "there is one (0)-folded segment, two (1)-folded
/// segments, and four (2)-folded segments" — 2^i consecutive (i)-folds.
#[test]
fn s4_1_figure5_pattern_counts() {
    let mut gs = GiantSan::new(RuntimeConfig::small());
    let a = gs.alloc(64 * 8, Region::Heap).unwrap();
    let seg0 = gs.shadow().segment_of(a.base);
    // 64 segments: one (6)-fold, then 2^i consecutive (i)-folds for i < 6.
    for degree in 0..=6u32 {
        let count = (0..64)
            .filter(|&j| gs.shadow().get(seg0 + j) == encoding::folded(degree))
            .count();
        let expected = if degree == 6 { 1 } else { 1 << degree };
        assert_eq!(count, expected, "degree {degree}");
    }
}

/// §4.2: "u covers > 50% of the addressable bytes following L" — the fast
/// check's coverage argument.
#[test]
fn s4_2_fast_check_covers_majority() {
    let mut gs = GiantSan::new(RuntimeConfig::small());
    for size_words in 1..=256u64 {
        let a = gs.alloc(size_words * 8, Region::Heap).unwrap();
        for j in 0..size_words {
            let code = gs.shadow().get(gs.shadow().segment_of(a.base + j * 8));
            let u = encoding::addressable_bytes(code);
            let following = (size_words - j) * 8;
            assert!(2 * u > following, "j={j}: {u} ≤ half of {following}");
        }
        gs.free(a.base).unwrap();
    }
}

/// §4.3: "the number of ub's updating is at most ⌈log2(n/8)⌉."
#[test]
fn s4_3_quasi_bound_update_bound() {
    for words in [1u64, 2, 3, 8, 100, 512, 4000] {
        let n = words * 8;
        let mut gs = GiantSan::new(RuntimeConfig::default());
        let a = gs.alloc(n, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        for off in (0..n).step_by(8) {
            gs.cached_check(&mut slot, a.base, off as i64, 8, AccessKind::Read)
                .unwrap();
        }
        let bound = (words as f64).log2().ceil() as u32 + 1;
        assert!(
            slot.updates <= bound.max(1),
            "n={n}: {} updates > ⌈log2({words})⌉",
            slot.updates
        );
    }
}

/// Table 1, row "Constant Propagation": `p[0] + p[10] + p[20]` takes 1
/// operation-level check vs 3 instruction-level checks.
#[test]
fn table1_constant_propagation_row() {
    // A runtime-sized buffer, so the merge (not static elision) is what
    // fires: one operation-level check vs three instruction-level ones.
    let mut b = ProgramBuilder::new("t1-constprop");
    let n = b.input(0);
    let p = b.alloc_heap(n);
    b.load_discard(p, 0i64, 8);
    b.load_discard(p, 80i64, 8);
    b.load_discard(p, 160i64, 8);
    b.free(p);
    let prog = b.build();
    let gs = run_tool(Tool::GiantSan, &prog, &[256], &RuntimeConfig::small());
    assert_eq!(
        gs.counters.fast_checks + gs.counters.slow_checks,
        1,
        "operation-level: one merged check"
    );
    let asan = run_tool(Tool::Asan, &prog, &[256], &RuntimeConfig::small());
    assert_eq!(asan.counters.fast_checks, 3, "instruction-level: three");

    // With a *constant* size the checks vanish entirely: the accesses are
    // provable at compile time (the strongest form of check elimination).
    let mut b = ProgramBuilder::new("t1-static");
    let p = b.alloc_heap(256);
    b.load_discard(p, 0i64, 8);
    b.load_discard(p, 80i64, 8);
    b.load_discard(p, 160i64, 8);
    b.free(p);
    let prog = b.build();
    let gs = run_tool(Tool::GiantSan, &prog, &[], &RuntimeConfig::small());
    assert_eq!(gs.counters.total_checks(), 0, "statically safe: no checks");
}

/// Table 1, row "Predefined Semantics": `memset(p, 0, N)` takes 1
/// operation-level check vs Θ(N) instruction-level work.
#[test]
fn table1_memset_row() {
    let n: i64 = 4096;
    let mut b = ProgramBuilder::new("t1-memset");
    let p = b.alloc_heap(n);
    b.memset(p, 0i64, n, 0i64);
    b.free(p);
    let prog = b.build();
    let gs = run_tool(Tool::GiantSan, &prog, &[], &RuntimeConfig::small());
    assert!(
        gs.counters.shadow_loads <= 3,
        "{}",
        gs.counters.shadow_loads
    );
    let asan = run_tool(Tool::Asan, &prog, &[], &RuntimeConfig::small());
    assert_eq!(asan.counters.shadow_loads as i64, n / 8, "Θ(N) guardian");
}

/// Table 1, row "Loop Bound Analysis": a bounded loop takes 1 check vs N.
#[test]
fn table1_bounded_loop_row() {
    let n: i64 = 512;
    let mut b = ProgramBuilder::new("t1-loop");
    let p = b.alloc_heap(n * 8);
    b.for_loop(0i64, n, |b, i| {
        b.store(p, Expr::var(i) * 8, 8, Expr::var(i));
    });
    b.free(p);
    let prog = b.build();
    let gs = run_tool(Tool::GiantSan, &prog, &[], &RuntimeConfig::small());
    assert_eq!(gs.counters.fast_checks + gs.counters.slow_checks, 1);
    let asan = run_tool(Tool::Asan, &prog, &[], &RuntimeConfig::small());
    assert_eq!(asan.counters.fast_checks as i64, n);
}

/// §4.4.2 / Figure 8: "only 2 checks and N cached checks are required, much
/// fewer than the 2 + 3N checks in existing location-based methods."
#[test]
fn figure8_check_counts() {
    let n: i64 = 256;
    let mut b = ProgramBuilder::new("fig8");
    let count = b.input(0);
    let x = b.alloc_heap(Expr::input(0) * 4);
    let y = b.alloc_heap(Expr::input(0) * 4);
    b.for_loop(0i64, count.clone(), |b, i| {
        b.store(x, Expr::var(i) * 4, 4, Expr::var(i));
    });
    b.for_loop(0i64, count.clone(), |b, i| {
        let j = b.load(x, Expr::var(i) * 4, 4);
        b.store(y, Expr::var(j) * 4, 4, Expr::var(i));
    });
    b.memset(x, 0i64, count * 4, 0i64);
    b.free(x);
    b.free(y);
    let prog = b.build();

    let analysis = analyze(&prog, &ToolProfile::giantsan());
    // x[i] (fill), x[i] (read) promoted; y[j] cached; memset guardian.
    let counts = analysis.fate_counts();
    assert_eq!(counts.get(&SiteFate::Promoted), Some(&2));
    assert_eq!(counts.get(&SiteFate::Cached), Some(&1));

    let mut gs = GiantSan::new(RuntimeConfig::small());
    let r = run(&prog, &[n], &mut gs, &analysis.plan, &ExecConfig::default());
    assert!(r.reports.is_empty());
    let c = gs.counters();
    // "2 checks + N cached": the promoted CIs, the memset guardian, the
    // loop-exit CI, and a ⌈log2⌉ handful of quasi-bound refresh CIs — each
    // O(1) — instead of ~3N instruction checks.
    assert!(
        c.fast_checks + c.slow_checks <= 8,
        "region checks: {}",
        c.fast_checks + c.slow_checks
    );
    assert!(c.cache_hits + c.cache_updates >= n as u64);
    // "2 + 3N checks in existing location-based methods."
    let asan = run_tool(Tool::Asan, &prog, &[n], &RuntimeConfig::small());
    assert!(asan.counters.total_checks() as i64 >= 3 * n);
}

/// §5.4: "only 0.39% of the buffer traversals are in reverse order" is the
/// paper's consolation; the mechanism itself — no quasi-lower-bound, every
/// reverse access pays a dedicated underflow check — must hold.
#[test]
fn s5_4_reverse_traversals_pay_per_access() {
    let n: u64 = 2048;
    let mut gs = GiantSan::new(RuntimeConfig::default());
    let a = gs.alloc(n, Region::Heap).unwrap();
    let end = a.base + n;
    let mut slot = CacheSlot::new();
    for k in 1..=(n / 8) {
        gs.cached_check(&mut slot, end, -(8 * k as i64), 8, AccessKind::Read)
            .unwrap();
    }
    assert_eq!(gs.counters().cache_hits, 0);
    assert_eq!(gs.counters().underflow_checks, n / 8);
}
