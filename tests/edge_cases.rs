//! Cross-crate edge cases: behaviours at the seams that the per-module unit
//! tests do not reach — encoding boundaries under churned heaps, interpreter
//! corner semantics, planner decisions on adversarial shapes, and tool
//! parity on awkward access geometry.

use giantsan::analysis::{analyze, SiteFate, ToolProfile};
use giantsan::baselines::{Asan, Lfp};
use giantsan::core::{check_region, check_region_bytewise, GiantSan};
use giantsan::harness::{run_tool, Tool};
use giantsan::ir::{run, CheckPlan, ExecConfig, Expr, ProgramBuilder, Termination};
use giantsan::runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};

#[test]
fn encoding_survives_heavy_alloc_free_churn() {
    // After thousands of alloc/free/realloc cycles, the O(1) checker must
    // still agree with the byte-wise oracle for every live object.
    let mut san = GiantSan::new(RuntimeConfig::small());
    let mut live = Vec::new();
    let mut tick = 0u64;
    for round in 0..2000u64 {
        let size = 1 + (round * 37) % 700;
        if let Ok(a) = san.alloc(size, Region::Heap) {
            live.push(a);
        }
        if live.len() > 12 {
            let victim = live.remove((round % 7) as usize);
            san.free(victim.base).unwrap();
        }
        tick += 1;
    }
    assert!(tick == 2000);
    for a in &live {
        let shadow = san.shadow();
        for (lo, hi) in [(0i64, a.size as i64), (8, a.size as i64 - 1)] {
            if hi <= lo {
                continue;
            }
            let l = a.base.offset(lo);
            let r = a.base.offset(hi);
            assert_eq!(
                check_region(shadow, l, r).is_ok(),
                check_region_bytewise(shadow, l, r).is_ok(),
                "object {:?} region [{lo},{hi})",
                a.id
            );
        }
        // Exactly one byte past the end still fails.
        assert!(check_region(shadow, a.base, a.base.offset(a.size as i64 + 1)).is_err());
    }
}

#[test]
fn interpreter_input_dyn_and_ptr_chains() {
    let mut b = ProgramBuilder::new("edge");
    let p = b.alloc_heap(128);
    // Pointer chains: q = p + 16; r = q + 16; write through r at -8.
    let q = b.ptr_add(p, 16i64);
    let r = b.ptr_add(q, 16i64);
    b.store(r, -8i64, 8, 0xbeefi64);
    // Dynamic input indexing with an out-of-range index reads 0.
    let v = b.let_(Expr::input_at(Expr::Const(99)));
    b.store(p, 0i64, 8, Expr::var(v) + 7);
    let prog = b.build();
    let mut san = giantsan::runtime::NullSanitizer::new(RuntimeConfig::small());
    let res = run(
        &prog,
        &[1, 2, 3],
        &mut san,
        &CheckPlan::none(&prog),
        &ExecConfig::default(),
    );
    assert_eq!(res.termination, Termination::Finished);
    let base = san.world().objects().iter_live().next().unwrap().base;
    assert_eq!(san.world().space().read_u64(base + 24).unwrap(), 0xbeef);
    assert_eq!(san.world().space().read_u64(base).unwrap(), 7);
}

#[test]
fn reverse_loop_with_nonzero_lower_bound() {
    let mut b = ProgramBuilder::new("revlo");
    let p = b.alloc_heap(256);
    b.for_loop_rev(8i64, 24i64, |b, i| {
        b.store(p, Expr::var(i) * 8, 8, Expr::var(i));
    });
    let prog = b.build();
    let mut san = giantsan::runtime::NullSanitizer::new(RuntimeConfig::small());
    let res = run(
        &prog,
        &[],
        &mut san,
        &CheckPlan::none(&prog),
        &ExecConfig::default(),
    );
    assert_eq!(res.native_work, 16);
    let base = san.world().objects().iter_live().next().unwrap().base;
    assert_eq!(san.world().space().read_u64(base + 8 * 8).unwrap(), 8);
    assert_eq!(san.world().space().read_u64(base + 23 * 8).unwrap(), 23);
    // Bytes outside [8, 24) untouched (zero).
    assert_eq!(san.world().space().read_u64(base).unwrap(), 0);
    assert_eq!(san.world().space().read_u64(base + 24 * 8).unwrap(), 0);
}

#[test]
fn planner_handles_triangular_nested_loops() {
    // Inner bound depends on the outer induction variable: the inner loop
    // is still promotable (its bound is invariant *inside* the inner loop).
    let mut b = ProgramBuilder::new("tri");
    let n = b.input(0);
    let p = b.alloc_heap(Expr::input(0) * Expr::input(0) * 8);
    b.for_loop(0i64, n.clone(), |b, i| {
        b.for_loop(0i64, Expr::var(i) + 1, |b, j| {
            b.store(
                p,
                (Expr::var(i) * Expr::input(0) + Expr::var(j)) * 8,
                8,
                Expr::var(j),
            );
        });
    });
    let prog = b.build();
    let a = analyze(&prog, &ToolProfile::giantsan());
    assert_eq!(a.fates[0], SiteFate::Promoted, "triangular loop promotable");
    // And execution is clean under the plan.
    let mut san = GiantSan::new(RuntimeConfig::small());
    let res = run(&prog, &[12], &mut san, &a.plan, &ExecConfig::default());
    assert!(res.reports.is_empty(), "{:?}", res.reports.first());
    assert_eq!(res.termination, Termination::Finished);
}

#[test]
fn invariant_offsets_hoist_through_the_whole_nest() {
    // offset = i (outer) inside the inner loop: invariant w.r.t. the inner
    // loop, and the inner loop has constant positive trip — so the check
    // widens over the outer range and runs ONCE for the whole nest
    // (CI(p, p + 8N) at the outer pre-header).
    let mut b = ProgramBuilder::new("hoist");
    let n = b.input(0);
    let p = b.alloc_heap(64);
    b.for_loop(0i64, n.clone(), |b, i| {
        b.for_loop(0i64, 4i64, |b, _| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
    });
    let prog = b.build();
    let a = analyze(&prog, &ToolProfile::giantsan());
    assert_eq!(a.fates[0], SiteFate::Promoted);
    // In-bounds run: clean, and only one region check executed.
    let mut san = GiantSan::new(RuntimeConfig::small());
    let res = run(&prog, &[8], &mut san, &a.plan, &ExecConfig::default());
    assert!(res.reports.is_empty());
    assert_eq!(
        san.counters().fast_checks + san.counters().slow_checks,
        1,
        "one hull check covers the whole nest"
    );
    // Out-of-bounds outer range: one report for the whole operation.
    let mut san = GiantSan::new(RuntimeConfig::small());
    let res = run(&prog, &[10], &mut san, &a.plan, &ExecConfig::default());
    assert_eq!(res.reports.len(), 1, "operation-level: one report");
}

#[test]
fn asan_and_giantsan_agree_on_straddling_widths() {
    // Accesses straddling segment boundaries with every width and offset.
    for size in [16u64, 24, 40] {
        let mut gs = GiantSan::new(RuntimeConfig::small());
        let g = gs.alloc(size, Region::Heap).unwrap();
        let mut asan = Asan::new(RuntimeConfig::small());
        let a = asan.alloc(size, Region::Heap).unwrap();
        for off in 0..(size + 10) as i64 {
            for width in [1u32, 2, 4, 8] {
                let gv = gs
                    .check_access(g.base.offset(off), width, AccessKind::Read)
                    .is_ok();
                let av = asan
                    .check_access(a.base.offset(off), width, AccessKind::Read)
                    .is_ok();
                assert_eq!(gv, av, "size={size} off={off} width={width}");
                let truth = (off as u64).saturating_add(width as u64) <= size;
                assert_eq!(gv, truth, "vs ground truth");
            }
        }
    }
}

#[test]
fn lfp_size_class_boundaries_are_exact() {
    use giantsan::baselines::lfp::{class_for, size_classes};
    // Every class boundary: size == class protects exactly, size == class+1
    // jumps to the next class.
    for &c in size_classes().iter().take(12) {
        assert_eq!(class_for(c), c);
        assert!(class_for(c + 1) > c);
        let mut lfp = Lfp::new(RuntimeConfig::small());
        let a = lfp.alloc(c, Region::Heap).unwrap();
        assert!(lfp
            .check_anchored(a.base, a.base + c - 1, a.base + c, AccessKind::Read)
            .is_ok());
        assert!(lfp
            .check_anchored(a.base, a.base + c, a.base + c + 1, AccessKind::Read)
            .is_err());
    }
}

#[test]
fn zero_sized_and_one_byte_allocations() {
    for tool in [Tool::GiantSan, Tool::Asan, Tool::Lfp] {
        let mut b = ProgramBuilder::new("tiny");
        let p = b.alloc_heap(0i64);
        let q = b.alloc_heap(1i64);
        b.store(q, 0i64, 1, 1i64);
        b.free(p);
        b.free(q);
        let prog = b.build();
        let out = run_tool(tool, &prog, &[], &RuntimeConfig::small());
        assert!(
            out.result.reports.is_empty(),
            "{}: {:?}",
            tool.name(),
            out.result.reports.first()
        );
    }
}

#[test]
fn memcpy_between_distinct_objects_checks_both_sides() {
    // Source too small: the read side must be flagged even though the
    // destination is fine, and vice versa.
    for (src_size, dst_size, len, should_fail) in [
        (32i64, 64i64, 32i64, false),
        (16, 64, 32, true),
        (64, 16, 32, true),
    ] {
        let mut b = ProgramBuilder::new("mc");
        let src = b.alloc_heap(src_size);
        let dst = b.alloc_heap(dst_size);
        b.memcpy(dst, 0i64, src, 0i64, len);
        b.free(src);
        b.free(dst);
        let prog = b.build();
        let out = run_tool(Tool::GiantSan, &prog, &[], &RuntimeConfig::small());
        assert_eq!(
            !out.result.reports.is_empty(),
            should_fail,
            "src={src_size} dst={dst_size} len={len}"
        );
    }
}

#[test]
fn frames_nested_five_deep_unwind_cleanly() {
    let mut b = ProgramBuilder::new("deep");
    fn nest(b: &mut ProgramBuilder, depth: u32) {
        b.frame(|b| {
            let s = b.alloc_stack(32);
            b.store(s, 0i64, 8, depth as i64);
            if depth > 0 {
                nest(b, depth - 1);
            }
            b.load_discard(s, 0i64, 8);
        });
    }
    nest(&mut b, 4);
    let prog = b.build();
    for tool in [Tool::GiantSan, Tool::Asan] {
        let out = run_tool(tool, &prog, &[], &RuntimeConfig::small());
        assert!(out.result.reports.is_empty(), "{}", tool.name());
        assert_eq!(out.result.termination, Termination::Finished);
    }
}

#[test]
fn realloc_preserves_data_and_quarantines_the_old_block() {
    let mut san = GiantSan::new(RuntimeConfig::small());
    let a = san.alloc(64, Region::Heap).unwrap();
    for i in 0..8u64 {
        san.world_mut()
            .space_mut()
            .write_u64(a.base + i * 8, 100 + i)
            .unwrap();
    }
    // Grow: data preserved, new tail accessible, old block poisoned.
    let b = san.realloc(a.base, 256).unwrap();
    assert_ne!(a.base, b.base, "quarantine prevents in-place reuse");
    for i in 0..8u64 {
        assert_eq!(
            san.world().space().read_u64(b.base + i * 8).unwrap(),
            100 + i
        );
    }
    assert!(san
        .check_region(b.base, b.base + 256, AccessKind::Write)
        .is_ok());
    // The stale pointer is a use-after-free.
    let err = san.check_access(a.base, 8, AccessKind::Read).unwrap_err();
    assert_eq!(err.kind, giantsan::runtime::ErrorKind::UseAfterFree);
    // Shrink: the cut-off tail is no longer accessible.
    let c = san.realloc(b.base, 16).unwrap();
    assert!(san.check_access(c.base + 8, 8, AccessKind::Read).is_ok());
    assert!(san.check_access(c.base + 16, 8, AccessKind::Read).is_err());
    // Shadow stays consistent through the moves.
    assert!(giantsan::core::validate_shadow(&san).is_empty());
}

#[test]
fn realloc_error_paths_are_classified() {
    let mut san = GiantSan::new(RuntimeConfig::small());
    let a = san.alloc(64, Region::Heap).unwrap();
    assert_eq!(
        san.realloc(a.base + 8, 128).unwrap_err().kind,
        giantsan::runtime::ErrorKind::InvalidFree
    );
    san.free(a.base).unwrap();
    assert_eq!(
        san.realloc(a.base, 128).unwrap_err().kind,
        giantsan::runtime::ErrorKind::DoubleFree
    );
}

#[test]
fn realloc_through_the_interpreter() {
    // A growable vector: push until capacity, realloc to double, keep
    // pushing — every tool must run it clean; a stale read afterwards is
    // caught by the quarantining tools.
    let mut b = ProgramBuilder::new("vec-grow");
    let v = b.alloc_heap(64);
    b.for_loop(0i64, 8i64, |b, i| {
        b.store(v, Expr::var(i) * 8, 8, Expr::var(i) + 1);
    });
    let stale = b.ptr_add(v, 0i64); // alias that will dangle after realloc
    b.realloc(v, 128i64);
    b.for_loop(8i64, 16i64, |b, i| {
        b.store(v, Expr::var(i) * 8, 8, Expr::var(i) + 1);
    });
    let sum = b.load(v, 0i64, 8);
    b.store(v, 0i64, 8, Expr::var(sum));
    b.load_discard(stale, 0i64, 8); // use-after-free via the alias
    b.free(v);
    let prog = b.build();
    for (tool, expect_uaf) in [
        (Tool::GiantSan, true),
        (Tool::Asan, true),
        (Tool::Lfp, true), // freed slot not yet reused
        (Tool::Native, false),
    ] {
        let out = run_tool(tool, &prog, &[], &RuntimeConfig::small());
        assert_eq!(
            out.result.reports.len(),
            expect_uaf as usize,
            "{}: {:?}",
            tool.name(),
            out.result.reports.first()
        );
    }
}

#[test]
fn global_objects_live_across_frames() {
    let mut b = ProgramBuilder::new("globals");
    let g = b.alloc_global(128);
    b.frame(|b| {
        b.store(g, 0i64, 8, 1i64);
    });
    b.frame(|b| {
        let v = b.load(g, 0i64, 8);
        b.store(g, 8i64, 8, Expr::var(v) + 1);
    });
    // Overflowing the global is still caught.
    b.store(g, 128i64, 8, 3i64);
    let prog = b.build();
    let out = run_tool(Tool::GiantSan, &prog, &[], &RuntimeConfig::small());
    assert_eq!(out.result.reports.len(), 1);
    assert_eq!(
        out.result.reports[0].kind,
        giantsan::runtime::ErrorKind::GlobalBufferOverflow
    );
}
