//! Property-based soundness tests for the core data structures: the O(1)
//! region checker against a byte-wise oracle, quasi-bound cache soundness,
//! and poisoning invariants — over randomized heap layouts.

use proptest::prelude::*;

use giantsan::core::{check_region, check_region_bytewise, encoding, poison, GiantSan};
use giantsan::runtime::{AccessKind, CacheSlot, Region, RuntimeConfig, Sanitizer};
use giantsan::shadow::{AddressSpace, ShadowMemory};

/// Builds a shadow holding several objects with redzones, returning their
/// (base, size) list.
fn layout(sizes: &[u64]) -> (ShadowMemory, Vec<(giantsan::shadow::Addr, u64)>) {
    let space = AddressSpace::new(0x1_0000, 1 << 18);
    let mut shadow = ShadowMemory::new(&space, encoding::UNALLOCATED);
    let mut objects = Vec::new();
    let mut cursor = space.lo() + 64;
    for &size in sizes {
        poison::poison_range(&mut shadow, cursor, 16, encoding::HEAP_LEFT_REDZONE);
        cursor += 16;
        poison::poison_object(&mut shadow, cursor, size);
        objects.push((cursor, size));
        let user = giantsan::shadow::align_up(size.max(1), 8);
        poison::poison_range(&mut shadow, cursor + user, 16, encoding::HEAP_RIGHT_REDZONE);
        cursor += user + 16;
    }
    (shadow, objects)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The O(1) checker and the byte-wise oracle agree on arbitrary regions
    /// over arbitrary multi-object layouts.
    #[test]
    fn region_check_matches_oracle(
        sizes in prop::collection::vec(1u64..600, 1..5),
        obj_idx in 0usize..5,
        lo_off in -24i64..640,
        len in 0i64..640,
    ) {
        let (shadow, objects) = layout(&sizes);
        let (base, _) = objects[obj_idx % objects.len()];
        let l = base.offset(lo_off);
        let r = l.offset(len);
        let fast = check_region(&shadow, l, r).is_ok();
        let oracle = check_region_bytewise(&shadow, l, r).is_ok();
        prop_assert_eq!(fast, oracle, "[{:?}, {:?})", l, r);
    }

    /// Folding degrees never claim memory beyond the object.
    #[test]
    fn folding_never_overclaims(size in 1u64..100_000) {
        let (shadow, objects) = layout(&[size]);
        let (base, _) = objects[0];
        let segs = size / 8;
        for j in 0..segs {
            let code = shadow.get(shadow.segment_of(base + j * 8));
            let claimed = encoding::addressable_bytes(code);
            prop_assert!(claimed > 0, "segment {j} not folded");
            prop_assert!(
                j * 8 + claimed <= segs * 8,
                "segment {j} claims past the object ({claimed} bytes)"
            );
            // And the claim is tight: more than half the remaining run.
            prop_assert!(2 * claimed > segs * 8 - j * 8);
        }
    }

    /// The quasi-bound cache never admits an out-of-bounds access and never
    /// rejects an in-bounds one, for any access pattern.
    #[test]
    fn quasi_bound_is_exact(
        size in 8u64..2048,
        offsets in prop::collection::vec(-64i64..2200, 1..40),
    ) {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(size, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        for off in offsets {
            let ok = san
                .cached_check(&mut slot, a.base, off, 4, AccessKind::Read)
                .is_ok();
            let valid = off >= 0 && (off + 4) as u64 <= size;
            prop_assert_eq!(ok, valid, "offset {} of object size {}", off, size);
        }
        // The final check still passes while the object is live.
        prop_assert!(san.loop_final_check(&slot, a.base, AccessKind::Read).is_ok());
    }

    /// Quasi-bound refresh count respects the paper's ⌈log2(n/8)⌉ bound for
    /// monotone forward walks.
    #[test]
    fn quasi_bound_update_bound(size_words in 1u64..4096) {
        let size = size_words * 8;
        let mut san = GiantSan::new(RuntimeConfig::default());
        let a = san.alloc(size, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        for off in (0..size).step_by(8) {
            san.cached_check(&mut slot, a.base, off as i64, 8, AccessKind::Read)
                .unwrap();
        }
        let bound = 64 - size_words.leading_zeros() + 1; // ⌈log2⌉ + slack
        prop_assert!(
            slot.updates <= bound,
            "{} updates for {} words (bound {})",
            slot.updates,
            size_words,
            bound
        );
    }

    /// ASan and GiantSan produce identical verdicts for single accesses at
    /// any offset (the encodings differ, the semantics must not).
    #[test]
    fn asan_giantsan_access_parity(
        size in 1u64..512,
        off in -32i64..600,
        width in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let mut gs = GiantSan::new(RuntimeConfig::small());
        let ga = gs.alloc(size, Region::Heap).unwrap();
        let mut asan = giantsan::baselines::Asan::new(RuntimeConfig::small());
        let aa = asan.alloc(size, Region::Heap).unwrap();
        let g = gs.check_access(ga.base.offset(off), width, AccessKind::Read).is_ok();
        let a = asan.check_access(aa.base.offset(off), width, AccessKind::Read).is_ok();
        prop_assert_eq!(g, a, "size={} off={} width={}", size, off, width);
    }
}
