//! Differential tests: every sanitizer must agree with native execution on
//! safe programs — same data results, zero reports — across random programs
//! exercising the full pipeline (builder → planner → interpreter → runtime).

use giantsan::workloads::fuzz;

use giantsan::harness::{run_tool, Tool};
use giantsan::runtime::RuntimeConfig;

const SEEDS: u64 = 60;

#[test]
fn no_false_positives_on_random_safe_programs() {
    for seed in 0..SEEDS {
        let sp = fuzz::safe_program(seed);
        for tool in Tool::ALL {
            let out = run_tool(tool, &sp.program, &sp.inputs, &RuntimeConfig::small());
            assert!(
                out.result.reports.is_empty(),
                "seed {seed}: {} reported {:?}",
                tool.name(),
                out.result.reports.first()
            );
            assert!(
                matches!(out.result.termination, giantsan::ir::Termination::Finished),
                "seed {seed}: {} ended {:?}",
                tool.name(),
                out.result.termination
            );
        }
    }
}

#[test]
fn checksums_agree_across_all_tools() {
    for seed in 0..SEEDS {
        let sp = fuzz::safe_program(seed);
        let reference = run_tool(
            Tool::Native,
            &sp.program,
            &sp.inputs,
            &RuntimeConfig::small(),
        );
        for tool in Tool::ALL {
            let out = run_tool(tool, &sp.program, &sp.inputs, &RuntimeConfig::small());
            assert_eq!(
                out.result.checksum,
                reference.result.checksum,
                "seed {seed}: {} diverged from native data flow",
                tool.name()
            );
        }
    }
}

#[test]
fn shadow_stays_consistent_through_random_programs() {
    // After any safe program, GiantSan's shadow must still satisfy every
    // encoding invariant w.r.t. the allocator state.
    use giantsan::analysis::{analyze, ToolProfile};
    use giantsan::core::{validate_shadow, GiantSan};
    use giantsan::ir::{run, ExecConfig};
    for seed in 0..SEEDS {
        let sp = fuzz::safe_program(seed);
        let plan = analyze(&sp.program, &ToolProfile::giantsan()).plan;
        let mut san = GiantSan::new(RuntimeConfig::small());
        let _ = run(
            &sp.program,
            &sp.inputs,
            &mut san,
            &plan,
            &ExecConfig::default(),
        );
        let issues = validate_shadow(&san);
        assert!(issues.is_empty(), "seed {seed}: {}", issues[0]);
    }
}

#[test]
fn giantsan_loads_no_more_shadow_than_asan() {
    // The whole point of segment folding: on safe programs GiantSan never
    // needs more metadata than ASan.
    let mut total_gs = 0u64;
    let mut total_asan = 0u64;
    for seed in 0..SEEDS {
        let sp = fuzz::safe_program(seed);
        let gs = run_tool(
            Tool::GiantSan,
            &sp.program,
            &sp.inputs,
            &RuntimeConfig::small(),
        );
        let asan = run_tool(Tool::Asan, &sp.program, &sp.inputs, &RuntimeConfig::small());
        total_gs += gs.counters.shadow_loads;
        total_asan += asan.counters.shadow_loads;
    }
    assert!(
        total_gs < total_asan / 2,
        "GiantSan {total_gs} loads vs ASan {total_asan}: folding is not paying off"
    );
}

#[test]
fn ablations_bracket_full_giantsan() {
    let mut gs = 0u64;
    let mut cache_only = 0u64;
    let mut elim_only = 0u64;
    for seed in 0..SEEDS {
        let sp = fuzz::safe_program(seed);
        gs += run_tool(
            Tool::GiantSan,
            &sp.program,
            &sp.inputs,
            &RuntimeConfig::small(),
        )
        .counters
        .shadow_loads;
        cache_only += run_tool(
            Tool::CacheOnly,
            &sp.program,
            &sp.inputs,
            &RuntimeConfig::small(),
        )
        .counters
        .shadow_loads;
        elim_only += run_tool(
            Tool::EliminationOnly,
            &sp.program,
            &sp.inputs,
            &RuntimeConfig::small(),
        )
        .counters
        .shadow_loads;
    }
    assert!(gs <= cache_only, "full {gs} vs cache-only {cache_only}");
    assert!(gs <= elim_only, "full {gs} vs elim-only {elim_only}");
}
