//! Smoke tests over the experiment reproducers: each table/figure builds and
//! exhibits the paper's qualitative claims at reduced scale.

use giantsan::harness::experiments::{fig10, fig11, table2, table3, table4, table5};
use giantsan::harness::Tool;
use giantsan::workloads::Pattern;

#[test]
fn table2_reproduces_the_headline_ordering() {
    let t = table2::table2(1);
    let col = |tool: Tool| {
        table2::COLUMNS
            .iter()
            .position(|c| *c == tool)
            .expect("column")
    };
    let gm = &t.geomeans;
    // Who wins: GiantSan; by roughly what factor: ASan carries ~2x overhead,
    // GiantSan well under ASan-- and LFP, ablations in between.
    assert!(gm[col(Tool::GiantSan)] < gm[col(Tool::Lfp)]);
    assert!(gm[col(Tool::Lfp)] < gm[col(Tool::Asan)]);
    assert!(gm[col(Tool::GiantSan)] < gm[col(Tool::AsanMinusMinus)]);
    assert!(gm[col(Tool::AsanMinusMinus)] < gm[col(Tool::Asan)]);
    assert!(
        gm[col(Tool::Asan)] > 180.0,
        "ASan ~2x: {}",
        gm[col(Tool::Asan)]
    );
    assert!(gm[col(Tool::GiantSan)] < 160.0);
    // Crossovers: LFP wins a handful of rows (the paper says 5 of 24).
    let lfp_wins = t
        .rows
        .iter()
        .filter(|r| r.ratios[col(Tool::Lfp)] < r.ratios[col(Tool::GiantSan)])
        .count();
    assert!(
        (2..=10).contains(&lfp_wins),
        "LFP should win on a few rows, got {lfp_wins}"
    );
}

#[test]
fn fig10_majority_of_checks_optimised() {
    let f = fig10::fig10(1);
    assert!(f.mean_optimised > 0.35 && f.mean_optimised < 0.95);
    // mcf/namd/lbm class kernels: roughly 80%+ optimised (paper §5.2 says
    // "more than 80% of the checks ... are eliminated or cached" there).
    for id in ["505.mcf_r", "508.namd_r", "519.lbm_r"] {
        let row = f.rows.iter().find(|r| r.id == id).unwrap();
        assert!(
            row.cached + row.eliminated >= 0.75,
            "{id}: {:.2}",
            row.cached + row.eliminated
        );
    }
}

#[test]
fn table3_rows_match_paper_at_full_family_shape() {
    let t = table3::table3(25);
    let lfp = 3usize;
    for r in &t.rows {
        // Location-based tools tie on every row.
        assert_eq!(r.detected[0], r.detected[1], "CWE-{}", r.cwe);
        assert_eq!(r.detected[1], r.detected[2], "CWE-{}", r.cwe);
        assert_eq!(r.false_positives.iter().sum::<u32>(), 0);
        match r.cwe {
            // LFP nearly blind on stack/heap overflow, partial on overread.
            121 | 122 => assert!(r.detected[lfp] * 4 < r.detected[0].max(1)),
            126 => assert!(r.detected[lfp] < r.detected[0]),
            124 | 127 | 416 | 476 | 761 => assert_eq!(r.detected[lfp], r.detected[0]),
            _ => {}
        }
    }
}

#[test]
fn table4_exact_match() {
    let t = table4::table4();
    assert!(t.missed_by(Tool::GiantSan).is_empty());
    assert!(t.missed_by(Tool::Asan).is_empty());
    assert_eq!(
        t.missed_by(Tool::Lfp),
        vec!["CVE-2017-12858", "CVE-2017-9165", "CVE-2017-14409"]
    );
}

#[test]
fn table5_php_gaps() {
    let t = table5::table5(25);
    let php = t.rows.iter().find(|r| r.project == "php").unwrap();
    // Columns: ASan--16, ASan--512, ASan16, ASan512, GiantSan16.
    assert!(php.detected[2] < php.detected[3]);
    assert!(php.detected[3] < php.detected[4]);
    assert_eq!(php.detected[0], php.detected[2]);
    // Projects with no bypass POCs tie across all configurations.
    let png = t.rows.iter().find(|r| r.project == "libpng").unwrap();
    assert!(png.detected.iter().all(|&d| d == png.detected[0]));
}

#[test]
fn fig11_signs() {
    let f = fig11::fig11(1);
    assert!(f.speedup_vs_asan(Pattern::Forward) > 1.0);
    assert!(f.speedup_vs_asan(Pattern::Random) > 1.0);
    assert!(f.speedup_vs_asan(Pattern::Reverse) < 1.0);
}
