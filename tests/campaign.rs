//! Campaign engine contracts: any shard partition merges back to the
//! monolithic records, a killed campaign resumes to the identical result,
//! spec drift fails loudly instead of mixing incompatible checkpoints, and
//! tampered blobs are rejected at the digest check.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use giantsan::harness::campaign::{self, Campaign, CampaignError, ShardSpec};
use giantsan::harness::{BatchRunner, Record, Study, StudyOpts, StudyRegistry};

/// A scratch campaign directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "giantsan-campaign-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study() -> &'static dyn Study {
    static REGISTRY: std::sync::OnceLock<StudyRegistry> = std::sync::OnceLock::new();
    REGISTRY
        .get_or_init(StudyRegistry::builtin)
        .get("table4")
        .expect("table4 is a builtin study")
}

fn monolithic(opts: &StudyOpts) -> Vec<Record> {
    Campaign::new(study(), opts.clone())
        .unwrap()
        .run_all(&BatchRunner::serial())
}

#[test]
fn every_partition_merges_to_the_monolithic_records() {
    let opts = StudyOpts::default();
    let baseline = monolithic(&opts);
    let cells = baseline.len();
    assert!(cells >= 2, "table4 must have a real matrix to shard");

    // Shard counts below, at, and above the cell count (trailing shards are
    // then empty and must still commit and merge cleanly).
    for count in [1usize, 2, 3, cells, cells + 2] {
        let dir = TempDir::new("partition");
        let campaign = Campaign::new(study(), opts.clone()).unwrap();
        for index in 0..count {
            let ran = campaign
                .run_shard(
                    dir.path(),
                    ShardSpec { index, count },
                    &BatchRunner::serial(),
                )
                .unwrap();
            assert!(ran, "shard {index}/{count} should not pre-exist");
        }
        let merged = campaign.load_records(dir.path()).unwrap();
        assert_eq!(merged, baseline, "{count} shards");

        // The rendered report — what `repro merge` prints — must match the
        // monolithic render byte for byte.
        let a = study().render(&opts, &baseline).unwrap();
        let b = study().render(&opts, &merged).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.json, b.json);
        assert_eq!(a.artifacts, b.artifacts);
    }
}

#[test]
fn kill_and_resume_matches_the_uninterrupted_run() {
    let opts = StudyOpts::default();
    let baseline = monolithic(&opts);

    for workers in [1usize, 2, 4] {
        let dir = TempDir::new("resume");
        let campaign = Campaign::new(study(), opts.clone()).unwrap();

        // "Kill" after the first of four shards: only shard 0 is committed.
        campaign
            .run_shard(
                dir.path(),
                ShardSpec { index: 0, count: 4 },
                &BatchRunner::serial(),
            )
            .unwrap();

        let runner = if workers == 1 {
            BatchRunner::serial()
        } else {
            BatchRunner::new(workers)
        };
        let (records, stats) = campaign.resume(dir.path(), &runner).unwrap();
        assert_eq!(records, baseline, "{workers} workers");
        assert_eq!(stats.reused, vec![0]);
        assert_eq!(stats.ran, vec![1, 2, 3]);

        // A second resume reuses everything and runs nothing.
        let (records, stats) = campaign.resume(dir.path(), &runner).unwrap();
        assert_eq!(records, baseline);
        assert_eq!(stats.reused, vec![0, 1, 2, 3]);
        assert!(stats.ran.is_empty());
    }
}

#[test]
fn rerunning_a_committed_shard_is_a_no_op() {
    let opts = StudyOpts::default();
    let dir = TempDir::new("noop");
    let campaign = Campaign::new(study(), opts).unwrap();
    let spec = ShardSpec { index: 0, count: 2 };
    assert!(campaign
        .run_shard(dir.path(), spec, &BatchRunner::serial())
        .unwrap());
    assert!(!campaign
        .run_shard(dir.path(), spec, &BatchRunner::serial())
        .unwrap());
}

#[test]
fn resume_against_a_changed_spec_fails_loudly() {
    let opts = StudyOpts::default();
    let dir = TempDir::new("drift");
    Campaign::new(study(), opts.clone())
        .unwrap()
        .run_shard(
            dir.path(),
            ShardSpec { index: 0, count: 2 },
            &BatchRunner::serial(),
        )
        .unwrap();

    let mut drifted = opts;
    drifted.seed = 0x99;
    let campaign = Campaign::new(study(), drifted).unwrap();
    let err = campaign
        .resume(dir.path(), &BatchRunner::serial())
        .unwrap_err();
    match err {
        CampaignError::SpecMismatch(msg) => {
            assert!(msg.contains("spec"), "{msg}");
            assert!(
                msg.contains("fresh"),
                "should tell the user what to do: {msg}"
            );
        }
        other => panic!("expected SpecMismatch, got: {other}"),
    }
}

#[test]
fn shard_denominator_drift_fails_loudly() {
    let opts = StudyOpts::default();
    let dir = TempDir::new("denominator");
    let campaign = Campaign::new(study(), opts).unwrap();
    campaign
        .run_shard(
            dir.path(),
            ShardSpec { index: 0, count: 2 },
            &BatchRunner::serial(),
        )
        .unwrap();
    let err = campaign
        .run_shard(
            dir.path(),
            ShardSpec { index: 0, count: 3 },
            &BatchRunner::serial(),
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("denominator"),
        "mixed --shard /n values must be rejected: {err}"
    );
}

#[test]
fn merging_an_incomplete_campaign_names_the_missing_shards() {
    let opts = StudyOpts::default();
    let dir = TempDir::new("incomplete");
    let campaign = Campaign::new(study(), opts).unwrap();
    campaign
        .run_shard(
            dir.path(),
            ShardSpec { index: 1, count: 3 },
            &BatchRunner::serial(),
        )
        .unwrap();
    let err = campaign.load_records(dir.path()).unwrap_err();
    match err {
        CampaignError::Incomplete { missing } => assert_eq!(missing, vec![0, 2]),
        other => panic!("expected Incomplete, got: {other}"),
    }
}

#[test]
fn tampered_blobs_are_rejected_at_the_digest_check() {
    let opts = StudyOpts::default();
    let dir = TempDir::new("tamper");
    let campaign = Campaign::new(study(), opts).unwrap();
    campaign
        .run_shard(
            dir.path(),
            ShardSpec { index: 0, count: 1 },
            &BatchRunner::serial(),
        )
        .unwrap();

    let blob = dir.path().join("shard-0000.jsonl");
    let mut text = std::fs::read_to_string(&blob).unwrap();
    text.push('\n');
    std::fs::write(&blob, text).unwrap();

    let err = campaign.load_records(dir.path()).unwrap_err();
    assert!(err.to_string().contains("digest"), "{err}");
}

#[test]
fn open_for_merge_rebuilds_the_study_from_the_header() {
    let opts = StudyOpts {
        seed: 0xfeed,
        div: 7,
        ..StudyOpts::default()
    };
    let dir = TempDir::new("merge");
    let campaign = Campaign::new(study(), opts.clone()).unwrap();
    for index in 0..2 {
        campaign
            .run_shard(
                dir.path(),
                ShardSpec { index, count: 2 },
                &BatchRunner::serial(),
            )
            .unwrap();
    }

    let registry = StudyRegistry::builtin();
    let reopened = campaign::open_for_merge(&registry, dir.path()).unwrap();
    assert_eq!(reopened.study().name(), "table4");
    assert_eq!(reopened.opts().seed, 0xfeed);
    assert_eq!(reopened.opts().div, 7);
    assert_eq!(reopened.spec_hash(), campaign.spec_hash());
    assert_eq!(
        reopened.load_records(dir.path()).unwrap(),
        monolithic(&opts)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant, fuzzed: for an arbitrary shard count and an
    /// arbitrary order of shard execution, the merged records equal the
    /// monolithic run's — the partition is never observable in the result.
    #[test]
    fn any_shard_partition_merges_to_the_monolithic_digest(
        count in 1usize..9,
        order_seed in 0u64..1024,
    ) {
        let opts = StudyOpts::default();
        let baseline = monolithic(&opts);
        let dir = TempDir::new("prop");
        let campaign = Campaign::new(study(), opts).unwrap();

        // Commit the shards in a pseudo-random order derived from the seed:
        // the manifest is append-only and order-independent.
        let mut order: Vec<usize> = (0..count).collect();
        let mut s = order_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        for index in order {
            campaign
                .run_shard(dir.path(), ShardSpec { index, count }, &BatchRunner::serial())
                .unwrap();
        }
        let merged = campaign.load_records(dir.path()).unwrap();
        prop_assert_eq!(merged, baseline);
    }
}
