//! Golden-file snapshots of emitted `CheckPlan`s.
//!
//! The pass-pipeline refactor of the planner is *behavior-locked*: for the
//! Figure-8 program and three representative SPEC-model workloads, across
//! every tool profile, the emitted plan must stay byte-identical. Each golden
//! file records an FNV-1a digest of the canonical plan rendering plus the
//! rendered fate table, so a drift fails with a readable diff, not just a
//! hash mismatch.
//!
//! To regenerate after an *intentional* plan change (requires justification
//! in review): `GOLDEN_REGEN=1 cargo test --test golden_plans`.

use std::fmt::Write as _;
use std::path::PathBuf;

use giantsan::analysis::{analyze, Analysis, ToolProfile};
use giantsan::ir::Program;
use giantsan::workloads::{figure8_program, spec_workload};

/// The profiles under snapshot: the four performance-study tools plus the
/// two ablation variants (Native plans nothing and is omitted).
fn profiles() -> Vec<ToolProfile> {
    vec![
        ToolProfile::giantsan(),
        ToolProfile::asan(),
        ToolProfile::asan_minus_minus(),
        ToolProfile::lfp(),
        ToolProfile::giantsan_cache_only(),
        ToolProfile::giantsan_elimination_only(),
    ]
}

/// The snapshotted programs: Figure 8 plus three SPEC-model workloads with
/// distinct planner behavior (stencil, pointer-chasing, byte-stream).
fn programs() -> Vec<(&'static str, Program)> {
    let mut v = vec![("figure8", figure8_program(100).0)];
    for id in ["519.lbm_r", "505.mcf_r", "557.xz_r"] {
        let w = spec_workload(id, 1).expect("known SPEC-model id");
        v.push((id, w.program));
    }
    v
}

/// FNV-1a over the canonical rendering (the same constants as the harness
/// matrix digests).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonical, exhaustive rendering of an analysis result: every site action
/// (with expressions), every loop plan sorted by id, the cache count, then
/// the human-readable fate table.
fn render_analysis(a: &Analysis) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "num_caches={}", a.plan.num_caches);
    for (i, act) in a.plan.sites.iter().enumerate() {
        let _ = writeln!(s, "s{i}: {act:?}");
    }
    let mut loops: Vec<_> = a.plan.loops.iter().collect();
    loops.sort_by_key(|(id, _)| **id);
    for (id, lp) in loops {
        let _ = writeln!(s, "loop {id:?}: {lp:?}");
    }
    s.push_str("-- fates --\n");
    s.push_str(&a.render());
    s
}

/// One golden document per program: a section per profile with the digest
/// line first, then the full rendering.
fn golden_document(program: &Program) -> String {
    let mut doc = String::new();
    for profile in profiles() {
        let a = analyze(program, &profile);
        let body = render_analysis(&a);
        let _ = writeln!(doc, "=== profile: {} ===", profile.name);
        let _ = writeln!(doc, "fnv1a: {:016x}", fnv1a(body.as_bytes()));
        doc.push_str(&body);
        doc.push('\n');
    }
    doc
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.plan.txt", name.replace('.', "_")))
}

#[test]
fn check_plans_match_golden_snapshots() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    let mut failures = Vec::new();
    for (name, program) in programs() {
        let doc = golden_document(&program);
        let path = golden_path(name);
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &doc).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        if want != doc {
            // Pin the first differing line for a readable failure.
            let diff = want
                .lines()
                .zip(doc.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .map(|(i, (a, b))| format!("line {}: golden `{a}` vs got `{b}`", i + 1))
                .unwrap_or_else(|| "document lengths differ".to_string());
            failures.push(format!("{name}: {diff}"));
        }
    }
    assert!(
        failures.is_empty(),
        "CheckPlan drift against golden snapshots (regenerate only if the \
         plan change is intentional: GOLDEN_REGEN=1):\n{}",
        failures.join("\n")
    );
}

/// The digests alone, pinned in-source as a second tripwire: catches a
/// wholesale (accidental) regeneration of the golden files.
#[test]
fn figure8_giantsan_digest_is_pinned() {
    let (prog, _) = figure8_program(100);
    let a = analyze(&prog, &ToolProfile::giantsan());
    let body = render_analysis(&a);
    assert_eq!(
        format!("{:016x}", fnv1a(body.as_bytes())),
        PINNED_FIGURE8_GIANTSAN_DIGEST,
        "Figure-8 GiantSan plan changed — this digest is the paper's worked \
         example and must only move with an intentional planner change"
    );
}

/// Captured from the pre-refactor (monolithic-planner) implementation.
const PINNED_FIGURE8_GIANTSAN_DIGEST: &str = "fa8b05841e41f9a6";
