//! End-to-end fault-tolerance tests: the `repro faults` campaign is
//! thread-invariant and panic-free, recover mode contains what it reports,
//! quarantine exhaustion degrades to a documented miss (never a crash), and
//! error reports compose with `std::error::Error` consumers.

use proptest::prelude::*;

use giantsan::harness::experiments::fault_study::{
    fault_matrix, fault_study_with, FaultStudy, Verdict,
};
use giantsan::harness::{BatchRunner, FaultKind, FaultPlan, Tool};
use giantsan::ir::Termination;
use giantsan::runtime::{RecoveryPolicy, RuntimeConfig};
use giantsan::workloads::fuzz::InjectedBug;

fn recover_config() -> RuntimeConfig {
    RuntimeConfig::small()
        .to_builder()
        .recovery(RecoveryPolicy::recover())
        .build()
}

/// The CI campaign's fixed-seed digest is identical at 1, 2, and 8 workers,
/// with zero harness panics — the batch engine's isolation plus the plan
/// derivation's schedule-independence, observed end to end.
#[test]
fn fault_campaign_digest_is_thread_invariant() {
    let studies: Vec<FaultStudy> = [1usize, 2, 8]
        .iter()
        .map(|&t| fault_study_with(&BatchRunner::new(t), 0x9aa2_c0de, 1))
        .collect();
    for s in &studies {
        assert_eq!(s.harness_panics, 0, "no cell may panic the harness");
        assert_eq!(s.outcomes.len(), studies[0].outcomes.len());
    }
    assert_eq!(studies[0].digest(), studies[1].digest());
    assert_eq!(studies[0].digest(), studies[2].digest());
}

/// The full CI matrix holds at least 1000 injected-fault cells.
#[test]
fn full_matrix_meets_the_campaign_floor() {
    assert!(fault_matrix(5).len() >= 1000);
}

/// Under recover mode, a metadata bit flip on GiantSan is contained: the
/// run reports (fails closed) or finishes clean, but never aborts the
/// interpreter and never panics.
#[test]
fn bit_flips_are_contained_not_fatal() {
    for seed in 0..8 {
        let plan = FaultPlan::new(seed).with_event(
            FaultKind::ShadowBitFlip {
                byte_offset: seed % 48,
                bit: (seed % 8) as u8,
            },
            seed % 3,
        );
        let fp = giantsan::workloads::fuzz::safe_program(seed);
        let out = Tool::GiantSan
            .builder()
            .config(recover_config())
            .faults(plan)
            .spec()
            .run(&fp.program, &fp.inputs);
        assert!(
            matches!(out.result.termination, Termination::Finished),
            "seed {seed}: {:?}",
            out.result.termination
        );
        // Containment accounting: anything reported was also recovered.
        assert_eq!(
            out.result.reports.len() as u64,
            out.counters.errors_recovered,
            "seed {seed}"
        );
    }
}

/// An [`giantsan::runtime::ErrorReport`] flows through `std::error::Error`
/// consumers (boxing, `source()`, `Display`).
#[test]
fn error_report_is_a_std_error() {
    let fp = giantsan::workloads::fuzz::buggy_program(0, InjectedBug::OverflowNear);
    let out = Tool::GiantSan
        .builder()
        .config(RuntimeConfig::small())
        .spec()
        .run(&fp.program, &fp.inputs);
    let report = out
        .result
        .reports
        .first()
        .expect("overflow detected")
        .clone();
    let boxed: Box<dyn std::error::Error> = Box::new(report);
    assert!(!boxed.to_string().is_empty());
    assert!(boxed.source().is_none(), "reports are root causes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quarantine exhaustion under recover mode: a use-after-free is flagged
    /// while the freed block is still quarantined; once churn evicts and
    /// recycles it the miss is *documented* (the run completes, reports may
    /// be empty) — but no cap, however small, may panic or crash the run.
    #[test]
    fn quarantine_exhaustion_degrades_to_documented_miss(
        seed in 0u64..64,
        cap in 0u64..200_000,
    ) {
        let plan = FaultPlan::new(seed)
            .with_event(FaultKind::QuarantineExhaustion { cap }, 0);
        let fp = giantsan::workloads::fuzz::buggy_program(seed, InjectedBug::UseAfterFree);
        let out = Tool::GiantSan
            .builder()
            .config(recover_config())
            .faults(plan)
            .spec()
            .run(&fp.program, &fp.inputs);
        // Never a crash: the access is contained or the block was recycled.
        prop_assert!(
            matches!(out.result.termination, Termination::Finished),
            "cap {cap}: {:?}", out.result.termination
        );
        // A roomy quarantine always keeps the stale block poisoned long
        // enough to flag the dangling read.
        if cap >= 100_000 {
            prop_assert!(
                !out.result.reports.is_empty(),
                "cap {cap} seed {seed}: UAF must be flagged while quarantined"
            );
        }
    }

}

/// Whatever fault is armed, the campaign verdicts partition cleanly: every
/// cell lands in exactly one bucket and safe workloads never produce
/// `Missed` (that verdict is reserved for masked bugs).
#[test]
fn verdicts_partition_the_matrix() {
    for campaign_seed in [0u64, 3, 11] {
        let s = fault_study_with(&BatchRunner::new(4), campaign_seed, 1);
        assert_eq!(s.harness_panics, 0);
        for o in &s.outcomes {
            if o.label.contains("fuzz-safe") {
                assert!(
                    o.verdict != Verdict::Missed,
                    "{}: safe cells cannot miss",
                    o.label
                );
            }
        }
    }
}
