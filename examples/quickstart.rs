//! Quickstart: allocate, check, overflow, and read the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the GiantSan public API directly (no mini-IR): allocation
//! with folded-segment poisoning, O(1) region checks, the quasi-bound cache,
//! and error reporting.

use giantsan::core::GiantSan;
use giantsan::runtime::{AccessKind, CacheSlot, Region, RuntimeConfig, Sanitizer};

fn main() {
    let mut san = GiantSan::new(RuntimeConfig::default());

    // 1 KiB heap buffer: the paper's motivating example.
    let buf = san.alloc(1024, Region::Heap).expect("allocation");
    println!("allocated 1 KiB at {}", buf.base);

    // One O(1) check protects the whole 1 KiB operation. ASan would load
    // 128 shadow bytes here; GiantSan's folded prefix answers in one.
    san.check_region(buf.base, buf.base + 1024, AccessKind::Write)
        .expect("in-bounds region");
    println!(
        "whole-buffer check: {} shadow load(s), {} fast / {} slow checks",
        san.counters().shadow_loads,
        san.counters().fast_checks,
        san.counters().slow_checks
    );

    // History caching: an unbounded loop over the buffer converges to the
    // object bound in at most ⌈log2(1024/8)⌉ = 7 quasi-bound refreshes.
    let mut slot = CacheSlot::new();
    for off in (0..1024).step_by(8) {
        san.cached_check(&mut slot, buf.base, off, 8, AccessKind::Read)
            .expect("in-bounds loop access");
    }
    println!(
        "loop of 128 accesses: {} cache hits, {} quasi-bound updates",
        san.counters().cache_hits,
        san.counters().cache_updates
    );

    // Now the bug: one byte past the end. The anchored check reports a
    // heap-buffer-overflow, rendered ASan-style with the shadow window.
    match san.check_anchored(
        buf.base,
        buf.base + 1024,
        buf.base + 1025,
        AccessKind::Write,
    ) {
        Ok(()) => unreachable!("the overflow must be reported"),
        Err(report) => println!("\n{}", giantsan::core::render_report(&san, &report)),
    }

    // Temporal errors: free, then touch.
    san.free(buf.base).expect("valid free");
    match san.check_region(buf.base, buf.base + 8, AccessKind::Read) {
        Ok(()) => unreachable!("the quarantine keeps the region poisoned"),
        Err(report) => println!("caught: {report}"),
    }

    println!("\nfinal counters: {}", san.counters());
}
