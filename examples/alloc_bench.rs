//! The allocation layer side by side: the legacy free-list heap versus the
//! Immix-style block/line heap, with per-object versus block-granular
//! poisoning.
//!
//! ```sh
//! cargo run --release --example alloc_bench
//! ```
//!
//! A churn workload — fill, free half at random, refill — runs under three
//! configurations. The interesting outputs are the sanitizer counters:
//! `shadow_stores` (poisoning work done byte-run by byte-run) versus
//! `bulk_poison_runs` (whole-block writes handed to the kernel layer), and
//! the block heap's own statistics (blocks mapped to size classes, slot
//! holes recycled by hole-finding, whole-block spans). The full-scale
//! version of this comparison is the `repro alloc` study, whose artifact is
//! committed as `BENCH_PR8.json`.

use std::time::Instant;

use giantsan::core::GiantSan;
use giantsan::runtime::{HeapBackend, Region, RuntimeConfig, Sanitizer};

/// Live objects at steady state. Small so the example runs in well under a
/// second; `repro alloc` pushes the same shape to a million live objects.
const LIVE: usize = 100_000;

/// Object sizes cycled through the fill: three line classes and one
/// medium class of the block/line heap.
const SIZES: [u64; 4] = [16, 48, 160, 1000];

fn churn(san: &mut GiantSan) -> u64 {
    let mut live = Vec::with_capacity(LIVE);
    for i in 0..LIVE {
        let a = san.alloc(SIZES[i % SIZES.len()], Region::Heap).unwrap();
        live.push(a.base);
    }
    // Free every other object, then refill the holes: this is where the
    // free-list scans linearly and the block/line heap pops a hole.
    let mut i = 0;
    live.retain(|&base| {
        i += 1;
        if i % 2 == 0 {
            san.free(base).unwrap();
            false
        } else {
            true
        }
    });
    for i in 0..LIVE / 2 {
        let a = san.alloc(SIZES[i % SIZES.len()], Region::Heap).unwrap();
        live.push(a.base);
    }
    let peak = live.len() as u64;
    for base in live {
        san.free(base).unwrap();
    }
    peak
}

fn run(label: &str, backend: HeapBackend, granular: bool) {
    let cfg = RuntimeConfig::builder()
        .heap_size(256 << 20)
        .heap_backend(backend)
        .build();
    let mut san = GiantSan::builder()
        .config(cfg)
        .block_granular_poison(granular)
        .build();
    let start = Instant::now();
    let peak = churn(&mut san);
    let wall = start.elapsed();
    let c = *san.counters();
    println!("{label}");
    println!("  {peak} live at peak, {:.1} ms", wall.as_secs_f64() * 1e3);
    println!(
        "  shadow_stores {:>9}   bulk_poison_runs {:>6}",
        c.shadow_stores, c.bulk_poison_runs
    );
    if let Some(h) = san.world().heap().as_block() {
        let s = h.stats();
        println!(
            "  blocks mapped {:>6}  freed {:>6}  holes recycled {:>8}  spans {}",
            s.blocks_mapped, s.blocks_freed, s.holes_recycled, s.large_spans
        );
    }
    println!();
}

fn main() {
    run(
        "free-list heap, per-object poisoning (the pre-PR-8 configuration)",
        HeapBackend::FreeList,
        false,
    );
    run(
        "block/line heap, per-object poisoning",
        HeapBackend::BlockLine,
        false,
    );
    run(
        "block/line heap, block-granular poisoning",
        HeapBackend::BlockLine,
        true,
    );
}
