//! Operation-level protection: reproduce the paper's Figure 8 end to end.
//!
//! ```sh
//! cargo run --example operation_level_checks
//! ```
//!
//! Builds Figure 8a's kernel in the mini-IR, shows the check plan each
//! tool's "compiler pass" produces (Figure 8b vs 8c), then executes and
//! compares how much metadata each configuration loaded.

use giantsan::analysis::{analyze, ToolProfile};
use giantsan::harness::{run_tool, Tool};
use giantsan::ir::{Expr, Program, ProgramBuilder};
use giantsan::runtime::RuntimeConfig;

/// Figure 8a:
/// ```c
/// for (i = 0; i < N; i++) { j = x[i]; y[j] = i; }
/// memset(x, 0, N * sizeof(int));
/// ```
fn figure8(n: i64) -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("figure8");
    let count = b.input(0);
    let x = b.alloc_heap(Expr::input(0) * 4);
    let y = b.alloc_heap(Expr::input(0) * 4);
    // Fill x with in-range indexes so y[j] stays in bounds.
    b.for_loop(0i64, count.clone(), |b, i| {
        b.store(x, Expr::var(i) * 4, 4, Expr::var(i));
    });
    b.for_loop(0i64, count.clone(), |b, i| {
        let j = b.load(x, Expr::var(i) * 4, 4); // promotable: affine
        b.store(y, Expr::var(j) * 4, 4, Expr::var(i)); // cacheable: data-dep
    });
    b.memset(x, 0i64, count * 4, 0i64);
    b.free(x);
    b.free(y);
    (b.build(), vec![n])
}

fn main() {
    let n = 4096;
    let (prog, inputs) = figure8(n);

    for profile in [
        ToolProfile::asan(),
        ToolProfile::asan_minus_minus(),
        ToolProfile::giantsan(),
    ] {
        let a = analyze(&prog, &profile);
        println!("— plan for {} —", profile.name);
        for line in a.render().lines() {
            println!("  {line}");
        }
    }

    println!("\n— execution over N = {n} —");
    let cfg = RuntimeConfig::default();
    for tool in [Tool::Asan, Tool::AsanMinusMinus, Tool::GiantSan] {
        let out = run_tool(tool, &prog, &inputs, &cfg);
        let c = &out.counters;
        println!(
            "{:<10} shadow loads {:>8}   checks: fast {:>6} slow {:>4} cached {:>6}",
            tool.name(),
            c.shadow_loads,
            c.fast_checks,
            c.slow_checks,
            c.cache_hits + c.cache_updates,
        );
    }
    println!(
        "\nGiantSan turns 2 + 3N instruction checks into 2 promoted CIs,\n\
         N cached checks, and an O(1) memset guardian (Figure 8c)."
    );
}
