//! Bug hunting: run one buggy program under all four sanitizers and compare
//! what each one sees — the paper's detection studies in miniature.
//!
//! ```sh
//! cargo run --example bug_hunting
//! ```
//!
//! The program is a CWE-122-style parser bug: a header's length field is
//! trusted, so a `memcpy` writes a few bytes past a 100-byte heap buffer.
//! The overflow stays inside LFP's 128-byte size-class slot, demonstrating
//! the rounded-up-bound blind spot (paper §2.1); the location-based tools
//! see the redzone.

use giantsan::analysis::{analyze, ToolProfile};
use giantsan::baselines::{Asan, AsanMinusMinus, Lfp};
use giantsan::core::GiantSan;
use giantsan::ir::{run, ExecConfig, Expr, Program, ProgramBuilder};
use giantsan::runtime::{RuntimeConfig, Sanitizer};

/// Builds the buggy "parser": copies `claimed` bytes into a 100-byte field.
fn buggy_parser() -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("trusting-parser");
    let field_size = b.input(0);
    let claimed = b.input(1);
    let field = b.alloc_heap(field_size);
    let packet = b.alloc_heap(256);
    // memcpy(field, packet, claimed) — claimed comes from the wire.
    b.memcpy(field, 0i64, packet, 0i64, claimed.clone());
    // ... followed by normal field accesses.
    b.for_loop(0i64, Expr::input(0), |b, i| {
        b.load_discard(field, Expr::var(i), 1);
    });
    b.free(packet);
    b.free(field);
    (b.build(), vec![100, 104]) // 4 bytes past the field
}

fn hunt(name: &str, san: &mut dyn Sanitizer, profile: &ToolProfile) {
    let (prog, inputs) = buggy_parser();
    let plan = analyze(&prog, profile).plan;
    let result = run(&prog, &inputs, san, &plan, &ExecConfig::default());
    match result.reports.first() {
        Some(r) => println!("{name:<10} DETECTED  {r}"),
        None => println!("{name:<10} missed    (overflow hides in the rounding slack)"),
    }
}

fn main() {
    println!("104-byte copy into a 100-byte heap field:\n");
    let cfg = RuntimeConfig::default;

    let mut gs = GiantSan::new(cfg());
    hunt("GiantSan", &mut gs, &ToolProfile::giantsan());

    let mut asan = Asan::new(cfg());
    hunt("ASan", &mut asan, &ToolProfile::asan());

    let mut mm = AsanMinusMinus::new(cfg());
    hunt("ASan--", &mut mm, &ToolProfile::asan_minus_minus());

    let mut lfp = Lfp::new(cfg());
    hunt("LFP", &mut lfp, &ToolProfile::lfp());

    println!(
        "\nLFP rounds the 100-byte allocation up to its {}‑byte size class,\n\
         so a 4-byte overflow never leaves the slot (paper §2.1, Table 3).",
        giantsan::baselines::lfp::class_for(100)
    );
}
