//! Figure 11 in miniature: where history caching wins and where it loses.
//!
//! ```sh
//! cargo run --release --example traversal_patterns
//! ```
//!
//! Runs forward, random, and reverse traversals of a 16 KiB buffer under
//! Native, GiantSan, and ASan, printing metadata loads and wall time. The
//! paper's §5.4 asymmetry is visible directly: the quasi-bound summarises
//! *higher* addresses from lower ones, so reverse traversals anchored at the
//! buffer end pay a dedicated underflow check per access.

use giantsan::harness::{run_tool, Tool};
use giantsan::runtime::RuntimeConfig;
use giantsan::workloads::{traversal_program, Pattern};

fn main() {
    let size = 16 * 1024;
    let rounds = 8;
    let cfg = RuntimeConfig::default();

    println!("{size} byte buffer, {rounds} rounds per pattern\n");
    println!(
        "{:<9} {:<9} {:>13} {:>11} {:>11} {:>10}",
        "pattern", "tool", "shadow loads", "cache hits", "underflow", "wall (us)"
    );
    for pattern in Pattern::ALL {
        let (prog, inputs) = traversal_program(pattern, size, rounds);
        for tool in [Tool::Native, Tool::GiantSan, Tool::Asan] {
            let out = run_tool(tool, &prog, &inputs, &cfg);
            assert!(out.result.reports.is_empty());
            let c = &out.counters;
            println!(
                "{:<9} {:<9} {:>13} {:>11} {:>11} {:>10.0}",
                pattern.name(),
                tool.name(),
                c.shadow_loads,
                c.cache_hits,
                c.underflow_checks,
                out.wall.as_secs_f64() * 1e6,
            );
        }
        println!();
    }
    println!(
        "forward/random: a handful of quasi-bound refreshes, then register\n\
         compares only. reverse: no quasi-lower-bound exists, so every access\n\
         runs an underflow CI — the paper's 1.39x slowdown case."
    );
}
