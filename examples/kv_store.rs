//! A complete application under sanitization: an open-addressing hash table
//! built in the mini-IR, grown with `realloc`, instrumented by the planner,
//! and executed under GiantSan with full statistics.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```
//!
//! This is the "downstream adoption" walkthrough: write a program against
//! the IR builder, let `analyze` produce the check plan, run it under the
//! sanitizer of your choice, and read the counters — the same pipeline the
//! paper's evaluation drives at scale.

use giantsan::analysis::{analyze, SiteFate, ToolProfile};
use giantsan::harness::{run_tool, Tool};
use giantsan::ir::{Expr, Program, ProgramBuilder};
use giantsan::runtime::RuntimeConfig;

/// Builds the store: a table of (key, value) slots probed linearly, plus a
/// log buffer that doubles via `realloc` when it fills.
///
/// Inputs: `in0` = number of operations; `in1..` = a tape of keys.
fn kv_store(ops: i64, capacity: i64) -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("kv-store");
    let n_ops = b.input(0);
    // Table of `capacity` slots, 16 bytes each: [key, value].
    let table = b.alloc_heap(capacity * 16);
    // Append-only log, deliberately undersized; grown by realloc below.
    let log = b.alloc_heap((ops / 2).max(8) * 8);
    b.for_loop_opaque(0i64, n_ops.clone(), |b, i| {
        // Probe: slot = hash(key) (the tape already stores slot indexes).
        let key = b.let_(Expr::input_at(Expr::var(i) + 1));
        // Linear probe of up to 3 slots through the stable table pointer
        // (data-dependent offsets: history-cached under GiantSan).
        let k0 = b.load(table, Expr::var(key) * 16, 8);
        b.if_else(
            Expr::var(k0),
            |b| {
                // Occupied: bump the value.
                let v = b.load(table, Expr::var(key) * 16 + 8, 8);
                b.store(table, Expr::var(key) * 16 + 8, 8, Expr::var(v) + 1);
            },
            |b| {
                // Empty: claim the slot.
                b.store(table, Expr::var(key) * 16, 8, Expr::var(key) + 1);
                b.store(table, Expr::var(key) * 16 + 8, 8, 1i64);
            },
        );
        // Log the op.
        b.store(log, Expr::var(i) * 8 - Expr::var(i) * 8, 8, Expr::var(key));
    });
    // The log was undersized for the full run: grow it, then write the tail
    // region a smaller buffer could not hold.
    b.realloc(log, ops * 8 + 64);
    b.for_loop(0i64, n_ops, |b, i| {
        b.store(log, Expr::var(i) * 8, 8, Expr::input_at(Expr::var(i) + 1));
    });
    b.free(log);
    b.free(table);

    let mut inputs = vec![ops];
    // Key tape: pseudo-random slots within capacity.
    let mut x = 0x2545_f491u64;
    for _ in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        inputs.push((x % capacity as u64) as i64);
    }
    (b.build(), inputs)
}

fn main() {
    let (prog, inputs) = kv_store(4000, 512);

    // What the "compiler pass" decided.
    let analysis = analyze(&prog, &ToolProfile::giantsan());
    let counts = analysis.fate_counts();
    println!("static plan (GiantSan):");
    for (fate, n) in [
        (SiteFate::Promoted, "promoted to pre-header CI"),
        (SiteFate::Cached, "history-cached"),
        (SiteFate::MergeLeader, "merge leader"),
        (SiteFate::MergedAway, "merged away"),
        (SiteFate::Anchored, "anchored per access"),
        (SiteFate::Direct, "direct per access"),
    ] {
        if let Some(c) = counts.get(&fate) {
            println!("  {c:>2} site(s) {n}");
        }
    }

    println!("\nexecution (4000 ops over a 512-slot table):");
    println!(
        "{:<10} {:>13} {:>11} {:>9} {:>9} {:>10}",
        "tool", "shadow loads", "cache hits", "fast", "slow", "wall (us)"
    );
    for tool in [
        Tool::Native,
        Tool::GiantSan,
        Tool::Asan,
        Tool::AsanMinusMinus,
        Tool::Lfp,
    ] {
        let out = run_tool(tool, &prog, &inputs, &RuntimeConfig::default());
        assert!(
            out.result.reports.is_empty(),
            "{}: unexpected report {:?}",
            tool.name(),
            out.result.reports.first()
        );
        let c = &out.counters;
        println!(
            "{:<10} {:>13} {:>11} {:>9} {:>9} {:>10.0}",
            tool.name(),
            c.shadow_loads,
            c.cache_hits,
            c.fast_checks,
            c.slow_checks,
            out.wall.as_secs_f64() * 1e6
        );
    }
    println!(
        "\nthe probe loop's data-dependent slots ride the quasi-bound cache;\n\
         the post-realloc log rewrite is one promoted CI; ASan pays a shadow\n\
         load on every single access."
    );
}
