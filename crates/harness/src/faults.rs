//! Deterministic fault injection: seeded fault plans and the injecting
//! sanitizer wrapper.
//!
//! A [`FaultPlan`] is pure data attached to a [`crate::SessionSpec`]: it
//! names which faults to inject (shadow bit flips, folded-code downgrades,
//! allocator OOM, quarantine exhaustion, interpreter step budgets) and at
//! which allocation events. Because the plan travels with the spec and every
//! batch worker rebuilds its session from the spec, a given `(seed, cell)`
//! pair injects the identical fault schedule at any `--threads N` — the
//! property the `repro faults` campaign's digest check locks down.
//!
//! Injection happens in [`FaultySanitizer`], a generic wrapper that keeps
//! the interpreter monomorphized: wrapping a concrete tool instantiates the
//! whole interpreter loop at `FaultySanitizer<Tool>`, so clean-run dispatch
//! is untouched.

use giantsan_runtime::{
    AccessKind, Allocation, CacheSlot, CheckResult, Counters, ErrorReport, HeapError,
    MetadataFault, Region, Sanitizer, World,
};
use giantsan_shadow::Addr;

/// One fault to inject, triggered by an allocation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip `bit` of the shadow byte covering `base + byte_offset` of the
    /// triggering allocation (models metadata corruption).
    ShadowBitFlip {
        /// Offset into the triggering allocation whose covering shadow byte
        /// is corrupted.
        byte_offset: u64,
        /// Bit index to flip, `0..8`.
        bit: u8,
    },
    /// Downgrade the folded code covering `base + byte_offset` to its
    /// unfolded form (GiantSan loses folding performance but stays sound;
    /// flat-encoding tools have nothing to downgrade).
    FoldDowngrade {
        /// Offset into the triggering allocation whose covering code is
        /// downgraded.
        byte_offset: u64,
    },
    /// Fail the triggering allocation with out-of-memory.
    AllocOom,
    /// Run the whole session with the quarantine capped at `cap` bytes,
    /// forcing early recycling (temporal-detection pressure).
    QuarantineExhaustion {
        /// Quarantine byte capacity forced on the session.
        cap: u64,
    },
    /// Run the interpreter with at most `max_steps` statements.
    StepBudget {
        /// Statement budget forced on the execution.
        max_steps: u64,
    },
}

/// A [`FaultKind`] armed at the `alloc_index`-th allocation of the run
/// (0-based, counting every `alloc` the program performs).
///
/// Session-wide kinds ([`FaultKind::QuarantineExhaustion`],
/// [`FaultKind::StepBudget`]) ignore the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// Allocation ordinal that triggers it.
    pub alloc_index: u64,
}

/// A deterministic, seedable schedule of faults for one session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (recorded for reproducibility).
    pub seed: u64,
    /// The armed faults, in arming order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan carrying `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one armed fault.
    pub fn with_event(mut self, kind: FaultKind, alloc_index: u64) -> Self {
        self.events.push(FaultEvent { kind, alloc_index });
        self
    }

    /// The step budget this plan imposes, if any (smallest wins).
    pub fn step_budget(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::StepBudget { max_steps } => Some(max_steps),
                _ => None,
            })
            .min()
    }

    /// The quarantine cap this plan forces, if any (smallest wins).
    pub fn quarantine_cap(&self) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::QuarantineExhaustion { cap } => Some(cap),
                _ => None,
            })
            .min()
    }
}

/// `splitmix64`: the tiny, high-quality PRNG step used to derive fault
/// schedules from seeds. Advances `state` and returns the next value.
///
/// Deterministic by construction — the same seed always unfolds into the
/// same schedule, independent of thread count or platform.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A sanitizer wrapper that injects the faults of a [`FaultPlan`] while
/// delegating every real operation to the wrapped tool.
///
/// Allocation-triggered faults fire when the matching allocation ordinal is
/// reached: OOM replaces the allocation's result, metadata faults corrupt
/// the tool's shadow right after the allocation succeeds (via
/// [`Sanitizer::inject_metadata_fault`]). Session-wide faults (quarantine
/// cap, step budget) are applied by [`crate::SessionSpec`] at session/exec
/// construction instead.
#[derive(Debug)]
pub struct FaultySanitizer<S> {
    inner: S,
    events: Vec<FaultEvent>,
    allocs_seen: u64,
    injected: u64,
}

impl<S: Sanitizer> FaultySanitizer<S> {
    /// Wraps `inner`, arming the allocation-triggered events of `plan`.
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        FaultySanitizer {
            inner,
            events: plan.events.clone(),
            allocs_seen: 0,
            injected: 0,
        }
    }

    /// Number of faults that actually fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped tool.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Sanitizer> Sanitizer for FaultySanitizer<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn world(&self) -> &World {
        self.inner.world()
    }

    fn world_mut(&mut self) -> &mut World {
        self.inner.world_mut()
    }

    fn counters(&self) -> &Counters {
        self.inner.counters()
    }

    fn counters_mut(&mut self) -> &mut Counters {
        self.inner.counters_mut()
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        let ordinal = self.allocs_seen;
        self.allocs_seen += 1;
        if self
            .events
            .iter()
            .any(|e| e.alloc_index == ordinal && matches!(e.kind, FaultKind::AllocOom))
        {
            self.injected += 1;
            return Err(HeapError::OutOfMemory { requested: size });
        }
        let a = self.inner.alloc(size, region)?;
        for i in 0..self.events.len() {
            let e = self.events[i];
            if e.alloc_index != ordinal {
                continue;
            }
            let fired = match e.kind {
                FaultKind::ShadowBitFlip { byte_offset, bit } => self
                    .inner
                    .inject_metadata_fault(a.base + byte_offset, MetadataFault::BitFlip { bit }),
                FaultKind::FoldDowngrade { byte_offset } => self
                    .inner
                    .inject_metadata_fault(a.base + byte_offset, MetadataFault::FoldDowngrade),
                _ => false,
            };
            self.injected += fired as u64;
        }
        Ok(a)
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.inner.free(base)
    }

    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, ErrorReport> {
        self.allocs_seen += 1;
        self.inner.realloc(base, new_size)
    }

    fn push_frame(&mut self) {
        self.inner.push_frame();
    }

    fn pop_frame(&mut self) {
        self.inner.pop_frame();
    }

    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult {
        self.inner.check_access(addr, width, kind)
    }

    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        self.inner.check_region(lo, hi, kind)
    }

    fn check_anchored(
        &mut self,
        anchor: Addr,
        access_lo: Addr,
        access_hi: Addr,
        kind: AccessKind,
    ) -> CheckResult {
        self.inner
            .check_anchored(anchor, access_lo, access_hi, kind)
    }

    fn cached_check(
        &mut self,
        slot: &mut CacheSlot,
        base: Addr,
        offset: i64,
        width: u32,
        kind: AccessKind,
    ) -> CheckResult {
        self.inner.cached_check(slot, base, offset, width, kind)
    }

    fn loop_final_check(&mut self, slot: &CacheSlot, base: Addr, kind: AccessKind) -> CheckResult {
        self.inner.loop_final_check(slot, base, kind)
    }

    fn supports_caching(&self) -> bool {
        self.inner.supports_caching()
    }

    fn note_stack_alloc(&mut self) {
        self.inner.note_stack_alloc();
    }

    fn contain(&mut self, report: &ErrorReport) {
        self.inner.contain(report);
    }

    fn inject_metadata_fault(&mut self, addr: Addr, fault: MetadataFault) -> bool {
        self.inner.inject_metadata_fault(addr, fault)
    }

    fn shadow_probe(&self, addr: Addr) -> Option<u8> {
        self.inner.shadow_probe(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_core::GiantSan;
    use giantsan_runtime::RuntimeConfig;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn oom_fires_at_the_armed_ordinal() {
        let plan = FaultPlan::new(1).with_event(FaultKind::AllocOom, 1);
        let mut f = FaultySanitizer::new(GiantSan::new(RuntimeConfig::small()), &plan);
        assert!(f.alloc(8, Region::Heap).is_ok());
        assert!(f.alloc(8, Region::Heap).is_err());
        assert!(f.alloc(8, Region::Heap).is_ok());
        assert_eq!(f.injected(), 1);
        // The failed allocation never reached the tool's counters.
        assert_eq!(f.counters().allocs, 2);
    }

    #[test]
    fn bit_flip_corrupts_and_check_fails_closed() {
        let plan = FaultPlan::new(2).with_event(
            FaultKind::ShadowBitFlip {
                byte_offset: 0,
                bit: 3,
            },
            0,
        );
        let mut f = FaultySanitizer::new(GiantSan::new(RuntimeConfig::small()), &plan);
        let a = f.alloc(64, Region::Heap).unwrap();
        assert_eq!(f.injected(), 1);
        // The flipped code makes the first segment claim less (or garbage);
        // a full-object check must not pass silently *and* must not panic.
        let _ = f.check_region(a.base, a.base + 64, AccessKind::Read);
    }

    #[test]
    fn fold_downgrade_is_sound() {
        let plan = FaultPlan::new(3).with_event(FaultKind::FoldDowngrade { byte_offset: 0 }, 0);
        let mut f = FaultySanitizer::new(GiantSan::new(RuntimeConfig::small()), &plan);
        let a = f.alloc(256, Region::Heap).unwrap();
        assert_eq!(f.injected(), 1);
        // Losing a fold never admits an invalid access (sound direction)...
        assert!(f
            .check_region(a.base, a.base + 257, AccessKind::Read)
            .is_err());
        // ...and the segment still admits accesses it genuinely covers: the
        // downgraded code claims exactly its own 8 bytes.
        assert!(f.check_access(a.base, 8, AccessKind::Read).is_ok());
    }

    #[test]
    fn plan_level_overrides_pick_smallest() {
        let plan = FaultPlan::new(4)
            .with_event(FaultKind::StepBudget { max_steps: 500 }, 0)
            .with_event(FaultKind::StepBudget { max_steps: 100 }, 0)
            .with_event(FaultKind::QuarantineExhaustion { cap: 64 }, 0);
        assert_eq!(plan.step_budget(), Some(100));
        assert_eq!(plan.quarantine_cap(), Some(64));
        assert_eq!(FaultPlan::new(0).step_budget(), None);
    }
}
