//! The unified `Study` API: every experiment behind one trait.
//!
//! Historically each table/figure had its own ad-hoc entry point in the
//! `repro` binary. This module replaces those with a single object-safe
//! [`Study`] trait — a study names itself, enumerates its *cells* (the
//! independent units of work the batch engine shards), runs one cell to a
//! self-describing [`Json`] payload, and renders a list of completed
//! [`Record`]s back into the human-readable report, machine-readable JSON,
//! and CSV artifacts the repo has always produced.
//!
//! The payload-per-cell discipline is what makes campaigns durable (see
//! [`crate::campaign`]): a cell's payload round-trips through
//! [`Json::render_compact`] / [`Json::parse`], so a shard written to disk by
//! one process can be re-read by another and rendered into a report that is
//! byte-identical to a monolithic in-memory run.
//!
//! [`StudyRegistry::builtin`] lists every study; `repro` dispatches by name.

use std::ops::Range;

use crate::batch::{BatchRunner, BatchTrace};
use crate::json::Json;
use crate::tool::Tool;

/// The shared experiment parameters every `repro` subcommand accepts.
///
/// Scheduling knobs (`threads`) and presentation knobs (`wall`) deliberately
/// do **not** enter [`StudyOpts::params`]: two campaigns that differ only in
/// those produce identical cell payloads, so they share a spec hash and can
/// resume each other's checkpoints.
#[derive(Debug, Clone)]
pub struct StudyOpts {
    /// Workload scale factor (`--scale`).
    pub scale: u64,
    /// Detection-corpus subsampling divisor (`--div`).
    pub div: u32,
    /// Traversal repeat count (`--rounds`).
    pub rounds: u64,
    /// Campaign seed (`--seed`).
    pub seed: u64,
    /// Trace workload id (`--workload`).
    pub workload: String,
    /// Trace tool (`--tool`).
    pub tool: Tool,
    /// Worker-pool size (`--threads`); excluded from the spec hash.
    pub threads: usize,
    /// Render the wall-clock variant too (`--wall`); excluded from the spec
    /// hash.
    pub wall: bool,
}

impl Default for StudyOpts {
    fn default() -> Self {
        StudyOpts {
            scale: 1,
            div: 10,
            rounds: 4,
            seed: 0,
            workload: "figure8".to_string(),
            tool: Tool::GiantSan,
            threads: BatchRunner::available_parallelism(),
            wall: false,
        }
    }
}

impl StudyOpts {
    /// The deterministic parameter list that enters a campaign's spec hash
    /// and its `campaign.json` header, as `(key, value)` pairs.
    pub fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("scale", self.scale.to_string()),
            ("div", self.div.to_string()),
            ("rounds", self.rounds.to_string()),
            ("seed", format!("{:#x}", self.seed)),
            ("workload", self.workload.clone()),
            ("tool", self.tool.name().to_string()),
        ]
    }

    /// Rebuilds opts from [`StudyOpts::params`] pairs (the inverse used by
    /// `repro merge`, which reconstructs a study from a campaign header).
    ///
    /// Unknown keys are rejected — a header written by a newer binary with
    /// more parameters must not silently lose them.
    pub fn from_params(pairs: &[(String, String)]) -> Result<StudyOpts, String> {
        let mut opts = StudyOpts::default();
        for (k, v) in pairs {
            match k.as_str() {
                "scale" => opts.scale = v.parse().map_err(|e| format!("bad scale `{v}`: {e}"))?,
                "div" => opts.div = v.parse().map_err(|e| format!("bad div `{v}`: {e}"))?,
                "rounds" => {
                    opts.rounds = v.parse().map_err(|e| format!("bad rounds `{v}`: {e}"))?
                }
                "seed" => {
                    let hex = v.strip_prefix("0x").ok_or(format!("bad seed `{v}`"))?;
                    opts.seed =
                        u64::from_str_radix(hex, 16).map_err(|e| format!("bad seed `{v}`: {e}"))?;
                }
                "workload" => opts.workload = v.clone(),
                "tool" => opts.tool = Tool::parse(v).ok_or(format!("unknown tool `{v}`"))?,
                other => return Err(format!("unknown campaign parameter `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// One completed cell: its index in the study's cell list, its stable
/// label, and the payload its run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Index into [`Study::cells`].
    pub index: usize,
    /// The cell's label (verified against [`Study::cells`] on reload).
    pub label: String,
    /// The cell's self-describing result.
    pub payload: Json,
}

/// What a render pass produces.
#[derive(Debug, Clone, Default)]
pub struct StudyOutput {
    /// The human-readable report (printed to stdout in text mode).
    pub report: String,
    /// The machine-readable document, for studies that define one
    /// (printed instead of `report` under `--format json`).
    pub json: Option<String>,
    /// `(name, content)` files written only when an output directory was
    /// given (the CSV exports).
    pub artifacts: Vec<(String, String)>,
    /// `(name, content)` files written to the output directory *or* the
    /// current directory (the bench JSONs and trace exports, which always
    /// land somewhere).
    pub main_artifacts: Vec<(String, String)>,
}

/// An experiment: a named, shardable cell matrix plus a renderer.
///
/// Implementations must keep [`Study::run_cell`] a pure function of
/// `(opts, index)` over the *modelled* fields of its payload — wall-clock
/// values may vary run to run, but everything a study digests or exports as
/// CSV (for the thread-invariance CI jobs) must be deterministic, so any
/// partition of the cell range merges back into the monolithic result.
pub trait Study: Send + Sync {
    /// The study's registry/CLI name.
    fn name(&self) -> &'static str;

    /// The cell labels, in matrix order. `Err` for invalid opts (e.g. an
    /// unknown trace workload).
    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String>;

    /// Runs one cell to its payload. Must be independent of every other
    /// cell — this is the contract that makes sharding sound.
    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json;

    /// Renders completed records (all cells, in index order) into the
    /// study's report and artifacts.
    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String>;

    /// Runs a contiguous index range under `runner`.
    ///
    /// The default shards the range cell-by-cell with panic isolation;
    /// studies with expensive shared setup (suites, plan caches) override
    /// this to hoist it per range while producing the same payloads.
    fn run_range(&self, opts: &StudyOpts, range: Range<usize>, runner: &BatchRunner) -> Vec<Json> {
        let indices: Vec<usize> = range.collect();
        let batch = runner.try_map(&indices, |_, &i| self.run_cell(opts, i));
        batch
            .results
            .into_iter()
            .zip(&indices)
            .map(|(r, &i)| {
                r.or_else(|| self.placeholder(opts, i)).unwrap_or_else(|| {
                    panic!(
                        "study {}: cell {i} panicked and has no placeholder",
                        self.name()
                    )
                })
            })
            .collect()
    }

    /// The payload to record when a cell panics and is quarantined by the
    /// batch engine. `None` (the default) re-raises the panic; the fault
    /// campaign overrides this to record a synthetic crashed outcome.
    fn placeholder(&self, _opts: &StudyOpts, _index: usize) -> Option<Json> {
        None
    }

    /// Presentation-plane artifacts that need the live scheduling trace
    /// (wall-clock spans; never digested, never part of a checkpoint).
    fn presentation(
        &self,
        _opts: &StudyOpts,
        _records: &[Record],
        _schedule: &BatchTrace,
    ) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// The study registry `repro` dispatches over.
pub struct StudyRegistry {
    studies: Vec<Box<dyn Study>>,
}

impl std::fmt::Debug for StudyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudyRegistry")
            .field("studies", &self.names())
            .finish()
    }
}

impl StudyRegistry {
    /// Every built-in study, in the order `repro`'s usage string lists them.
    pub fn builtin() -> StudyRegistry {
        use crate::experiments::*;
        StudyRegistry {
            studies: vec![
                Box::new(table2::Table2Entry),
                Box::new(fig10::Fig10Entry),
                Box::new(table3::Table3Entry),
                Box::new(table4::Table4Entry),
                Box::new(table5::Table5Entry),
                Box::new(fig11::Fig11Entry),
                Box::new(ablation::AblationEntry),
                Box::new(plan::PlanEntry),
                Box::new(memory::MemoryEntry),
                Box::new(density::DensityEntry),
                Box::new(alloc::AllocEntry),
                Box::new(echo::EchoEntry),
                Box::new(BenchEntry),
                Box::new(fault_study::FaultsEntry),
                Box::new(trace::TraceEntry),
            ],
        }
    }

    /// Looks a study up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Study> {
        self.studies
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// All registered names, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.studies.iter().map(|s| s.name()).collect()
    }
}

/// The generic machine-readable fallback for studies without a dedicated
/// JSON form: the study name plus every record verbatim.
pub fn records_json(name: &str, records: &[Record]) -> String {
    let cells: Vec<Json> = records
        .iter()
        .map(|r| {
            Json::obj()
                .field("cell", r.index)
                .field("label", r.label.as_str())
                .field("payload", r.payload.clone())
        })
        .collect();
    Json::obj()
        .field("study", name)
        .field("cells", cells)
        .render()
}

// ---------------------------------------------------------------------------
// Payload codec helpers shared by the per-study `Study` impls. Payload
// decoding failures are programming errors (campaign blobs are digest-
// verified before they reach a renderer), so these panic with context
// rather than threading `Result`s through every row rebuild.
// ---------------------------------------------------------------------------

/// Fetches a required field, panicking with the key on absence.
pub fn req<'a>(payload: &'a Json, key: &str) -> &'a Json {
    payload
        .get(key)
        .unwrap_or_else(|| panic!("payload missing field `{key}`: {payload:?}"))
}

/// A required `u64` field.
pub fn req_u64(payload: &Json, key: &str) -> u64 {
    req(payload, key)
        .as_u64()
        .unwrap_or_else(|| panic!("field `{key}` is not a u64"))
}

/// A required `f64` field (accepts integers).
pub fn req_f64(payload: &Json, key: &str) -> f64 {
    req(payload, key)
        .as_f64()
        .unwrap_or_else(|| panic!("field `{key}` is not a number"))
}

/// A required string field.
pub fn req_str<'a>(payload: &'a Json, key: &str) -> &'a str {
    req(payload, key)
        .as_str()
        .unwrap_or_else(|| panic!("field `{key}` is not a string"))
}

/// A required `0x`-hex digest field.
pub fn req_hex(payload: &Json, key: &str) -> u64 {
    req(payload, key)
        .as_hex()
        .unwrap_or_else(|| panic!("field `{key}` is not a hex digest"))
}

/// A required array field.
pub fn req_array<'a>(payload: &'a Json, key: &str) -> &'a [Json] {
    req(payload, key)
        .as_array()
        .unwrap_or_else(|| panic!("field `{key}` is not an array"))
}

/// Encodes a float slice.
pub fn f64s(values: &[f64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::F64(v)).collect())
}

/// Decodes a float array field.
pub fn req_f64s(payload: &Json, key: &str) -> Vec<f64> {
    req_array(payload, key)
        .iter()
        .map(|v| {
            v.as_f64()
                .unwrap_or_else(|| panic!("non-number in `{key}`"))
        })
        .collect()
}

/// Encodes a u64 slice.
pub fn u64s(values: &[u64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::U64(v)).collect())
}

/// Decodes a u64 array field.
pub fn req_u64s(payload: &Json, key: &str) -> Vec<u64> {
    req_array(payload, key)
        .iter()
        .map(|v| v.as_u64().unwrap_or_else(|| panic!("non-u64 in `{key}`")))
        .collect()
}

/// Encodes a bool slice.
pub fn bools(values: &[bool]) -> Json {
    Json::Array(values.iter().map(|&v| Json::Bool(v)).collect())
}

/// Decodes a bool array field.
pub fn req_bools(payload: &Json, key: &str) -> Vec<bool> {
    req_array(payload, key)
        .iter()
        .map(|v| v.as_bool().unwrap_or_else(|| panic!("non-bool in `{key}`")))
        .collect()
}

// ---------------------------------------------------------------------------
// The bench study: five fixed cells, one per benchmark report.
// ---------------------------------------------------------------------------

/// `repro bench` as a study: one cell per `BENCH_PR*.json` report.
#[derive(Debug, Clone, Copy)]
pub struct BenchEntry;

const BENCH_CELLS: [(&str, &str, &str); 6] = [
    (
        "pr1",
        "== Hot-path before/after (word-wide scanning + monomorphized dispatch) ==",
        "BENCH_PR1.json",
    ),
    (
        "pr2",
        "== Batch engine: serial vs {threads} workers ==",
        "BENCH_PR2.json",
    ),
    (
        "pr4",
        "== Recover-mode overhead on clean runs (halt vs recover) ==",
        "BENCH_PR4.json",
    ),
    (
        "pr5",
        "== Telemetry overhead (noop vs traced recorder) ==",
        "BENCH_PR5.json",
    ),
    (
        "pr6",
        "== Shadow-kernel backends (scalar vs swar vs simd) ==",
        "BENCH_PR6.json",
    ),
    (
        "pr9",
        "== Sanitizer service at and past saturation (throughput + shed) ==",
        "BENCH_PR9.json",
    ),
];

impl Study for BenchEntry {
    fn name(&self) -> &'static str {
        "bench"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(BENCH_CELLS.iter().map(|(id, ..)| id.to_string()).collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let (id, banner, artifact) = BENCH_CELLS[index];
        let (report, json) = match id {
            "pr1" => {
                let r = crate::bench_pr1::run_bench();
                (r.render(), r.to_json())
            }
            "pr2" => {
                let r = crate::bench_pr2::run_bench(opts.threads);
                (r.render(), r.to_json())
            }
            "pr4" => {
                let r = crate::bench_pr4::run_bench();
                (r.render(), r.to_json())
            }
            "pr5" => {
                let r = crate::bench_pr5::run_bench();
                (r.render(), r.to_json())
            }
            "pr6" => {
                let r = crate::bench_pr6::run_bench();
                (r.render(), r.to_json())
            }
            "pr9" => {
                let r = crate::bench_pr9::run_bench();
                (r.render(), r.to_json())
            }
            other => unreachable!("unknown bench cell {other}"),
        };
        Json::obj()
            .field("name", id)
            .field(
                "banner",
                banner.replace("{threads}", &opts.threads.to_string()),
            )
            .field("report", report)
            .field("artifact", artifact)
            .field("artifact_json", json)
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut out = StudyOutput::default();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.report.push('\n');
            }
            out.report.push_str(req_str(&r.payload, "banner"));
            out.report.push_str("\n\n");
            out.report.push_str(req_str(&r.payload, "report"));
            out.report.push('\n');
            out.main_artifacts.push((
                req_str(&r.payload, "artifact").to_string(),
                req_str(&r.payload, "artifact_json").to_string(),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip() {
        let mut opts = StudyOpts {
            scale: 3,
            div: 7,
            rounds: 9,
            seed: 0xdead_beef,
            workload: "519.lbm_r".to_string(),
            tool: Tool::Asan,
            ..StudyOpts::default()
        };
        let pairs: Vec<(String, String)> = opts
            .params()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let back = StudyOpts::from_params(&pairs).unwrap();
        // threads/wall are not part of params: normalise before comparing.
        opts.threads = back.threads;
        opts.wall = back.wall;
        assert_eq!(format!("{opts:?}"), format!("{back:?}"));
        assert!(StudyOpts::from_params(&[("nope".into(), "1".into())]).is_err());
    }

    #[test]
    fn registry_names_are_unique_and_cover_the_cli() {
        let reg = StudyRegistry::builtin();
        let names = reg.names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        for n in ["table2", "faults", "trace", "bench", "plan", "all"] {
            if n == "all" {
                assert!(reg.get(n).is_none(), "`all` is a meta-command, not a study");
            } else {
                assert!(reg.get(n).is_some(), "{n} missing from the registry");
            }
        }
    }

    #[test]
    fn codec_helpers_round_trip() {
        let p = Json::obj()
            .field("f", f64s(&[1.5, -2.0]))
            .field("u", u64s(&[1, 2]))
            .field("b", bools(&[true, false]))
            .field("h", Json::hex(0xabc))
            .field("s", "x");
        let p = Json::parse(&p.render_compact()).unwrap();
        assert_eq!(req_f64s(&p, "f"), vec![1.5, -2.0]);
        assert_eq!(req_u64s(&p, "u"), vec![1, 2]);
        assert_eq!(req_bools(&p, "b"), vec![true, false]);
        assert_eq!(req_hex(&p, "h"), 0xabc);
        assert_eq!(req_str(&p, "s"), "x");
    }
}
