//! The session/config API: how tool instances are described and built.
//!
//! The batch-execution engine ([`crate::BatchRunner`]) hands the same
//! experiment cell description to whichever worker steals it, and that
//! worker builds its own private sanitizer session. [`SessionSpec`] is that
//! description: a cheap, `Send + Sync`, cloneable value carrying the tool
//! identity, the [`RuntimeConfig`], and the [`GiantSanOptions`] — everything
//! needed to construct a session from scratch. [`ToolBuilder`] is the fluent
//! front door that replaces the old ad-hoc `match`-construction scattered
//! through `tool.rs`.
//!
//! ```text
//! Tool::GiantSan.builder()          // ToolBuilder
//!     .config(...)                  //   fluent overrides
//!     .options(...)
//!     .spec()                       // SessionSpec (shareable across workers)
//!     .run_planned(&prog, &plan, &inputs)   // fresh session per run
//! ```
//!
//! Runs stay **monomorphized**: [`SessionSpec::run_planned`] dispatches on
//! the tool once, outside the interpreter, so each arm instantiates
//! [`giantsan_ir::run`] at a concrete sanitizer type and the per-access
//! check calls inline (PR 1's dispatch optimisation, preserved).

use std::time::Instant;

use giantsan_analysis::{analyze, ToolProfile};
use giantsan_baselines::{Asan, AsanMinusMinus, Lfp};
use giantsan_core::{GiantSan, GiantSanOptions};
use giantsan_ir::{run, CheckPlan, ExecConfig, ExecResult, Program};
use giantsan_runtime::{NullSanitizer, RuntimeConfig, Sanitizer};

use crate::tool::{RunOutcome, Tool};

/// Fluent builder for a [`SessionSpec`].
///
/// Obtained from [`Tool::builder`]; defaults to [`RuntimeConfig::default`]
/// and [`GiantSanOptions::default`].
///
/// # Example
///
/// ```
/// use giantsan_harness::Tool;
/// use giantsan_runtime::RuntimeConfig;
///
/// let spec = Tool::Asan.builder().config(RuntimeConfig::small()).spec();
/// assert_eq!(spec.tool(), Tool::Asan);
/// ```
#[derive(Debug, Clone)]
pub struct ToolBuilder {
    tool: Tool,
    config: RuntimeConfig,
    options: GiantSanOptions,
}

impl ToolBuilder {
    pub(crate) fn new(tool: Tool) -> Self {
        ToolBuilder {
            tool,
            config: RuntimeConfig::default(),
            options: GiantSanOptions::default(),
        }
    }

    /// Sets the runtime configuration for every session built from the spec.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides only the redzone size, keeping the rest of the config
    /// (Table 5 varies exactly this).
    pub fn redzone(mut self, bytes: u64) -> Self {
        self.config.redzone = bytes;
        self
    }

    /// Sets the GiantSan option block (ignored by non-GiantSan tools).
    pub fn options(mut self, options: GiantSanOptions) -> Self {
        self.options = options;
        self
    }

    /// Finishes the description.
    pub fn spec(self) -> SessionSpec {
        SessionSpec {
            tool: self.tool,
            config: self.config,
            options: self.options,
        }
    }
}

/// A complete, thread-shareable description of one sanitizer configuration.
///
/// A spec never holds runtime state: every [`SessionSpec::session`] or
/// [`SessionSpec::run_planned`] call constructs a fresh world, which is what
/// lets the batch engine run the same spec on many workers at once and what
/// keeps serial and parallel results identical (no state leaks between
/// cells).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    tool: Tool,
    config: RuntimeConfig,
    options: GiantSanOptions,
}

impl SessionSpec {
    /// The tool this spec describes.
    pub fn tool(&self) -> Tool {
        self.tool
    }

    /// The runtime configuration sessions are built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The GiantSan option block (meaningful for the GiantSan family only).
    pub fn options(&self) -> &GiantSanOptions {
        &self.options
    }

    /// The instrumentation capabilities of this tool's compiler pass.
    pub fn profile(&self) -> ToolProfile {
        match self.tool {
            Tool::Native => ToolProfile::native(),
            Tool::GiantSan => ToolProfile::giantsan(),
            Tool::Asan => ToolProfile::asan(),
            Tool::AsanMinusMinus => ToolProfile::asan_minus_minus(),
            Tool::Lfp => ToolProfile::lfp(),
            Tool::CacheOnly => ToolProfile::giantsan_cache_only(),
            Tool::EliminationOnly => ToolProfile::giantsan_elimination_only(),
        }
    }

    /// Computes the instrumentation plan for `program`.
    pub fn plan(&self, program: &Program) -> CheckPlan {
        match self.tool {
            Tool::Native => CheckPlan::none(program),
            _ => analyze(program, &self.profile()).plan,
        }
    }

    /// Builds a fresh boxed session (for callers that need to hold the
    /// sanitizer across calls, e.g. the memory study and microbenches).
    pub fn session(&self) -> Box<dyn Sanitizer> {
        match self.tool {
            Tool::Native => Box::new(NullSanitizer::new(self.config.clone())),
            Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => Box::new(
                GiantSan::with_options(self.config.clone(), self.options.clone()),
            ),
            Tool::Asan => Box::new(Asan::new(self.config.clone())),
            Tool::AsanMinusMinus => Box::new(AsanMinusMinus::new(self.config.clone())),
            Tool::Lfp => Box::new(Lfp::new(self.config.clone())),
        }
    }

    /// The interpreter policy sessions run under.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            halt_on_error: self.config.halt_on_error,
            ..ExecConfig::default()
        }
    }

    /// Runs `program` in a fresh session with a pre-computed plan.
    ///
    /// Dispatches on the tool *here*, outside the interpreter, so each arm
    /// instantiates [`run`] at a concrete sanitizer type: the per-access
    /// check calls inline instead of costing a vtable hop per load/store.
    pub fn run_planned(&self, program: &Program, plan: &CheckPlan, inputs: &[i64]) -> RunOutcome {
        let exec = self.exec_config();
        match self.tool {
            Tool::Native => timed_run(
                &mut NullSanitizer::new(self.config.clone()),
                program,
                plan,
                inputs,
                &exec,
            ),
            Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => timed_run(
                &mut GiantSan::with_options(self.config.clone(), self.options.clone()),
                program,
                plan,
                inputs,
                &exec,
            ),
            Tool::Asan => timed_run(
                &mut Asan::new(self.config.clone()),
                program,
                plan,
                inputs,
                &exec,
            ),
            Tool::AsanMinusMinus => timed_run(
                &mut AsanMinusMinus::new(self.config.clone()),
                program,
                plan,
                inputs,
                &exec,
            ),
            Tool::Lfp => timed_run(
                &mut Lfp::new(self.config.clone()),
                program,
                plan,
                inputs,
                &exec,
            ),
        }
    }

    /// Plans and runs in one step.
    pub fn run(&self, program: &Program, inputs: &[i64]) -> RunOutcome {
        let plan = self.plan(program);
        self.run_planned(program, &plan, inputs)
    }
}

fn timed_run<S: Sanitizer>(
    san: &mut S,
    program: &Program,
    plan: &CheckPlan,
    inputs: &[i64],
    exec: &ExecConfig,
) -> RunOutcome {
    let start = Instant::now();
    let result: ExecResult = run(program, inputs, san, plan, exec);
    let wall = start.elapsed();
    RunOutcome {
        result,
        counters: *san.counters(),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::ProgramBuilder;

    fn tiny() -> (Program, Vec<i64>) {
        let mut b = ProgramBuilder::new("tiny");
        let p = b.alloc_heap(64);
        b.store(p, 0i64, 8, 7i64);
        b.free(p);
        (b.build(), vec![])
    }

    #[test]
    fn spec_is_sendable_and_buildable_per_worker() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionSpec>();
        let (prog, inputs) = tiny();
        let spec = Tool::GiantSan.builder().spec();
        let plan = spec.plan(&prog);
        let outcomes = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| spec.run_planned(&prog, &plan, &inputs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for o in &outcomes {
            assert!(!o.detected());
            assert_eq!(o.counters, outcomes[0].counters, "sessions are isolated");
            assert_eq!(o.result.checksum, outcomes[0].result.checksum);
        }
    }

    #[test]
    fn builder_overrides_flow_into_sessions() {
        let spec = Tool::GiantSan
            .builder()
            .config(RuntimeConfig::small())
            .redzone(1)
            .options(GiantSanOptions::default().with_reverse_mitigation(true))
            .spec();
        assert_eq!(spec.config().redzone, 1);
        assert!(spec.options().reverse_mitigation);
        let mut session = spec.session();
        assert_eq!(session.name(), "GiantSan");
        assert_eq!(session.world().config().redzone, 1);
        let a = session
            .alloc(32, giantsan_runtime::Region::Heap)
            .expect("alloc");
        assert!(session
            .check_access(a.base, 8, giantsan_runtime::AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn halt_on_error_reaches_the_interpreter_policy() {
        let cfg = RuntimeConfig::builder().halt_on_error(true).build();
        let spec = Tool::Asan.builder().config(cfg).spec();
        assert!(spec.exec_config().halt_on_error);
        assert!(!Tool::Asan.builder().spec().exec_config().halt_on_error);
    }
}
