//! The session/config API: how tool instances are described and built.
//!
//! The batch-execution engine ([`crate::BatchRunner`]) hands the same
//! experiment cell description to whichever worker steals it, and that
//! worker builds its own private sanitizer session. [`SessionSpec`] is that
//! description: a cheap, `Send + Sync`, cloneable value carrying the tool
//! identity, the [`RuntimeConfig`], and the [`GiantSanOptions`] — everything
//! needed to construct a session from scratch. [`ToolBuilder`] is the fluent
//! front door that replaces the old ad-hoc `match`-construction scattered
//! through `tool.rs`.
//!
//! ```text
//! Tool::GiantSan.builder()          // ToolBuilder
//!     .config(...)                  //   fluent overrides
//!     .options(...)
//!     .spec()                       // SessionSpec (shareable across workers)
//!     .run_planned(&prog, &plan, &inputs)   // fresh session per run
//! ```
//!
//! Runs stay **monomorphized**: [`SessionSpec::run_planned`] dispatches on
//! the tool once, outside the interpreter, so each arm instantiates
//! [`giantsan_ir::run`] at a concrete sanitizer type and the per-access
//! check calls inline (PR 1's dispatch optimisation, preserved).

use std::time::Instant;

use giantsan_analysis::{analyze, ToolProfile};
use giantsan_baselines::{Asan, AsanMinusMinus, Lfp};
use giantsan_core::{GiantSan, GiantSanOptions};
use giantsan_ir::{run_with, CheckPlan, ExecConfig, ExecResult, Program};
use giantsan_runtime::{NullSanitizer, RuntimeConfig, Sanitizer};
use giantsan_telemetry::{NoopRecorder, Recorder};

use crate::faults::{FaultPlan, FaultySanitizer};
use crate::tool::{RunOutcome, Tool};

/// Fluent builder for a [`SessionSpec`].
///
/// Obtained from [`Tool::builder`]; defaults to [`RuntimeConfig::default`]
/// and [`GiantSanOptions::default`].
///
/// # Example
///
/// ```
/// use giantsan_harness::Tool;
/// use giantsan_runtime::RuntimeConfig;
///
/// let spec = Tool::Asan.builder().config(RuntimeConfig::small()).spec();
/// assert_eq!(spec.tool(), Tool::Asan);
/// ```
#[derive(Debug, Clone)]
pub struct ToolBuilder {
    tool: Tool,
    config: RuntimeConfig,
    options: GiantSanOptions,
    faults: Option<FaultPlan>,
}

impl ToolBuilder {
    pub(crate) fn new(tool: Tool) -> Self {
        ToolBuilder {
            tool,
            config: RuntimeConfig::default(),
            options: GiantSanOptions::default(),
            faults: None,
        }
    }

    /// Sets the runtime configuration for every session built from the spec.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides only the redzone size, keeping the rest of the config
    /// (Table 5 varies exactly this).
    pub fn redzone(mut self, bytes: u64) -> Self {
        self.config.redzone = bytes;
        self
    }

    /// Sets the GiantSan option block (ignored by non-GiantSan tools).
    pub fn options(mut self, options: GiantSanOptions) -> Self {
        self.options = options;
        self
    }

    /// Arms a deterministic fault plan: every session built from the spec
    /// injects the plan's faults (see [`crate::faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Finishes the description.
    pub fn spec(self) -> SessionSpec {
        SessionSpec {
            tool: self.tool,
            config: self.config,
            options: self.options,
            faults: self.faults,
        }
    }
}

/// A complete, thread-shareable description of one sanitizer configuration.
///
/// A spec never holds runtime state: every [`SessionSpec::session`] or
/// [`SessionSpec::run_planned`] call constructs a fresh world, which is what
/// lets the batch engine run the same spec on many workers at once and what
/// keeps serial and parallel results identical (no state leaks between
/// cells).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    tool: Tool,
    config: RuntimeConfig,
    options: GiantSanOptions,
    faults: Option<FaultPlan>,
}

impl SessionSpec {
    /// The tool this spec describes.
    pub fn tool(&self) -> Tool {
        self.tool
    }

    /// The runtime configuration sessions are built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The GiantSan option block (meaningful for the GiantSan family only).
    pub fn options(&self) -> &GiantSanOptions {
        &self.options
    }

    /// The armed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The runtime config sessions are actually built with: the declared
    /// config plus any session-wide fault overrides (quarantine exhaustion).
    fn session_config(&self) -> RuntimeConfig {
        match self.faults.as_ref().and_then(FaultPlan::quarantine_cap) {
            Some(cap) => self.config.to_builder().quarantine_cap(cap).build(),
            None => self.config.clone(),
        }
    }

    /// The instrumentation capabilities of this tool's compiler pass.
    pub fn profile(&self) -> ToolProfile {
        match self.tool {
            Tool::Native => ToolProfile::native(),
            Tool::GiantSan => ToolProfile::giantsan(),
            Tool::Asan => ToolProfile::asan(),
            Tool::AsanMinusMinus => ToolProfile::asan_minus_minus(),
            Tool::Lfp => ToolProfile::lfp(),
            Tool::CacheOnly => ToolProfile::giantsan_cache_only(),
            Tool::EliminationOnly => ToolProfile::giantsan_elimination_only(),
        }
    }

    /// Computes the instrumentation plan for `program`.
    pub fn plan(&self, program: &Program) -> CheckPlan {
        match self.tool {
            Tool::Native => CheckPlan::none(program),
            _ => analyze(program, &self.profile()).plan,
        }
    }

    /// Builds a fresh boxed session (for callers that need to hold the
    /// sanitizer across calls, e.g. the memory study and microbenches).
    pub fn session(&self) -> Box<dyn Sanitizer> {
        fn boxed<S: Sanitizer + 'static>(san: S, faults: Option<&FaultPlan>) -> Box<dyn Sanitizer> {
            match faults {
                Some(plan) => Box::new(FaultySanitizer::new(san, plan)),
                None => Box::new(san),
            }
        }
        let cfg = self.session_config();
        let faults = self.faults.as_ref();
        match self.tool {
            Tool::Native => boxed(NullSanitizer::new(cfg), faults),
            Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => {
                boxed(GiantSan::with_options(cfg, self.options.clone()), faults)
            }
            Tool::Asan => boxed(Asan::new(cfg), faults),
            Tool::AsanMinusMinus => boxed(AsanMinusMinus::new(cfg), faults),
            Tool::Lfp => boxed(Lfp::new(cfg), faults),
        }
    }

    /// The interpreter policy sessions run under: the config's recovery
    /// policy, with the fault plan's step budget (if any) capping
    /// `max_steps`.
    pub fn exec_config(&self) -> ExecConfig {
        let mut exec = ExecConfig {
            recovery: self.config.recovery,
            ..ExecConfig::default()
        };
        if let Some(budget) = self.faults.as_ref().and_then(FaultPlan::step_budget) {
            exec.max_steps = exec.max_steps.min(budget);
        }
        exec
    }

    /// Runs `program` in a fresh session with a pre-computed plan.
    ///
    /// Dispatches on the tool *here*, outside the interpreter, so each arm
    /// instantiates [`giantsan_ir::run`] at a concrete sanitizer type: the
    /// per-access
    /// check calls inline instead of costing a vtable hop per load/store.
    pub fn run_planned(&self, program: &Program, plan: &CheckPlan, inputs: &[i64]) -> RunOutcome {
        self.run_planned_recorded(program, plan, inputs, &mut NoopRecorder)
    }

    /// [`SessionSpec::run_planned`] with a telemetry [`Recorder`] attached.
    ///
    /// With [`NoopRecorder`] (what [`SessionSpec::run_planned`] passes) the
    /// recorder compiles out and this is exactly the untraced path. With a
    /// [`TraceRecorder`] the interpreter emits structured events for every
    /// check, quasi-bound refresh, allocator operation, and containment (see
    /// [`giantsan_ir::run_with`]).
    ///
    /// [`TraceRecorder`]: giantsan_telemetry::TraceRecorder
    pub fn run_planned_recorded<R: Recorder>(
        &self,
        program: &Program,
        plan: &CheckPlan,
        inputs: &[i64],
        rec: &mut R,
    ) -> RunOutcome {
        let exec = self.exec_config();
        let cfg = self.session_config();
        // Each arm stays monomorphized; the faulty variant instantiates the
        // interpreter at `FaultySanitizer<Tool>`, the clean one at `Tool`.
        fn dispatch<S: Sanitizer, R: Recorder>(
            san: S,
            faults: Option<&FaultPlan>,
            program: &Program,
            plan: &CheckPlan,
            inputs: &[i64],
            exec: &ExecConfig,
            rec: &mut R,
        ) -> RunOutcome {
            match faults {
                Some(fp) => {
                    let mut san = FaultySanitizer::new(san, fp);
                    timed_run(&mut san, program, plan, inputs, exec, rec)
                }
                None => {
                    let mut san = san;
                    timed_run(&mut san, program, plan, inputs, exec, rec)
                }
            }
        }
        let faults = self.faults.as_ref();
        match self.tool {
            Tool::Native => dispatch(
                NullSanitizer::new(cfg),
                faults,
                program,
                plan,
                inputs,
                &exec,
                rec,
            ),
            Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => dispatch(
                GiantSan::with_options(cfg, self.options.clone()),
                faults,
                program,
                plan,
                inputs,
                &exec,
                rec,
            ),
            Tool::Asan => dispatch(Asan::new(cfg), faults, program, plan, inputs, &exec, rec),
            Tool::AsanMinusMinus => dispatch(
                AsanMinusMinus::new(cfg),
                faults,
                program,
                plan,
                inputs,
                &exec,
                rec,
            ),
            Tool::Lfp => dispatch(Lfp::new(cfg), faults, program, plan, inputs, &exec, rec),
        }
    }

    /// Plans and runs in one step.
    pub fn run(&self, program: &Program, inputs: &[i64]) -> RunOutcome {
        let plan = self.plan(program);
        self.run_planned(program, &plan, inputs)
    }
}

fn timed_run<S: Sanitizer, R: Recorder>(
    san: &mut S,
    program: &Program,
    plan: &CheckPlan,
    inputs: &[i64],
    exec: &ExecConfig,
    rec: &mut R,
) -> RunOutcome {
    let start = Instant::now();
    let result: ExecResult = run_with(program, inputs, san, plan, exec, rec);
    let wall = start.elapsed();
    RunOutcome {
        result,
        counters: *san.counters(),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::ProgramBuilder;

    fn tiny() -> (Program, Vec<i64>) {
        let mut b = ProgramBuilder::new("tiny");
        let p = b.alloc_heap(64);
        b.store(p, 0i64, 8, 7i64);
        b.free(p);
        (b.build(), vec![])
    }

    #[test]
    fn spec_is_sendable_and_buildable_per_worker() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionSpec>();
        let (prog, inputs) = tiny();
        let spec = Tool::GiantSan.builder().spec();
        let plan = spec.plan(&prog);
        let outcomes = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| spec.run_planned(&prog, &plan, &inputs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for o in &outcomes {
            assert!(!o.detected());
            assert_eq!(o.counters, outcomes[0].counters, "sessions are isolated");
            assert_eq!(o.result.checksum, outcomes[0].result.checksum);
        }
    }

    #[test]
    fn builder_overrides_flow_into_sessions() {
        let spec = Tool::GiantSan
            .builder()
            .config(RuntimeConfig::small())
            .redzone(1)
            .options(GiantSanOptions::default().with_reverse_mitigation(true))
            .spec();
        assert_eq!(spec.config().redzone, 1);
        assert!(spec.options().reverse_mitigation);
        let mut session = spec.session();
        assert_eq!(session.name(), "GiantSan");
        assert_eq!(session.world().config().redzone, 1);
        let a = session
            .alloc(32, giantsan_runtime::Region::Heap)
            .expect("alloc");
        assert!(session
            .check_access(a.base, 8, giantsan_runtime::AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn recovery_policy_reaches_the_interpreter_policy() {
        use giantsan_runtime::RecoveryPolicy;
        let cfg = RuntimeConfig::builder().halt_on_error(true).build();
        let spec = Tool::Asan.builder().config(cfg).spec();
        assert!(spec.exec_config().recovery.halts());
        assert_eq!(
            Tool::Asan.builder().spec().exec_config().recovery,
            RecoveryPolicy::Continue
        );
        let cfg = RuntimeConfig::builder()
            .recovery(RecoveryPolicy::recover())
            .build();
        let spec = Tool::Asan.builder().config(cfg).spec();
        assert!(spec.exec_config().recovery.contains_faults());
    }
}
