//! Service saturation benchmark: the sanitizer front-end at and past its
//! admission capacity.
//!
//! `repro bench` runs the PR 9 half of the benchmark suite: an in-process
//! [`crate::serve::Server`] hammered over real sockets, emitted to
//! `BENCH_PR9.json` in two phases:
//!
//! 1. **At saturation** — exactly as many closed-loop clients as job
//!    workers, each submitting an echo job and waiting for it to complete
//!    before the next. This keeps the pool ~100% utilised without queue
//!    growth and measures the sustained job throughput and the submit
//!    latency distribution under full load.
//! 2. **Past saturation** — an open-loop burst several times the queue
//!    capacity, fired from more clients than workers without waiting. The
//!    interesting numbers are what graceful degradation looks like: every
//!    excess submission is shed with `429` in O(1) (the submit p99 stays
//!    flat instead of growing with the backlog), nothing is lost, and the
//!    server never answers 5xx.
//!
//! Wall-clock fields vary run to run and host to host; the digest, shed
//! accounting (`accepted + shed == offered`), and `errors_5xx == 0` are
//! deterministic and asserted by the tests.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::batch::BatchRunner;
use crate::campaign::{records_digest, Campaign};
use crate::serve::{ServeConfig, Server};
use crate::study::{StudyOpts, StudyRegistry};

/// Closed-loop jobs per client in the saturation phase.
pub const JOBS_PER_CLIENT: usize = 8;
/// Open-loop submissions in the overload phase.
pub const BURST: usize = 96;
/// Workers (and closed-loop clients) the benchmark server runs.
pub const WORKERS: usize = 2;
/// Admission queue capacity — deliberately small so the burst overflows it.
pub const QUEUE_CAP: usize = 16;

/// The study parameters the closed-loop (saturation) jobs run.
fn job_opts() -> StudyOpts {
    StudyOpts {
        scale: 4,
        rounds: 1,
        seed: 0xbe9c,
        ..StudyOpts::default()
    }
}

/// The study parameters the open-loop burst runs: heavy enough that the
/// pool cannot drain them as fast as four clients can submit, so the queue
/// genuinely overflows and the shed path is the one being measured.
fn burst_opts() -> StudyOpts {
    StudyOpts {
        scale: 64,
        rounds: 8,
        seed: 0xbe9c,
        ..StudyOpts::default()
    }
}

/// The `BENCH_PR9.json` payload.
#[derive(Debug, Clone)]
pub struct BenchPr9Report {
    /// Job worker threads in the benchmark server.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Closed-loop jobs completed in the saturation phase.
    pub saturated_jobs: usize,
    /// Sustained completed jobs/second at saturation.
    pub saturated_jobs_per_sec: f64,
    /// Submit latency p50 at saturation (microseconds).
    pub saturated_p50_us: u64,
    /// Submit latency p99 at saturation (microseconds).
    pub saturated_p99_us: u64,
    /// Open-loop submissions offered past saturation.
    pub burst_offered: usize,
    /// Burst submissions accepted (`202`).
    pub burst_accepted: u64,
    /// Burst submissions shed (`429 + Retry-After`).
    pub burst_shed_429: u64,
    /// Submit latency p50 past saturation (microseconds).
    pub burst_p50_us: u64,
    /// Submit latency p99 past saturation (microseconds) — stays flat
    /// because shedding is O(1), not queue-depth-proportional.
    pub burst_p99_us: u64,
    /// 5xx responses over the whole benchmark (must be 0).
    pub errors_5xx: u64,
    /// Records digest of one completed benchmark job.
    pub digest: u64,
    /// The same study run serially in-process (must equal `digest`).
    pub digest_serial: u64,
}

impl BenchPr9Report {
    /// Every burst submission was either accepted or shed — none vanished.
    pub fn accounted(&self) -> bool {
        self.burst_accepted + self.burst_shed_429 == self.burst_offered as u64
    }

    /// The service stayed correct under overload.
    pub fn graceful(&self) -> bool {
        self.errors_5xx == 0 && self.digest == self.digest_serial
    }

    /// Renders the artefact as JSON (hand-rolled: numbers and ASCII only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR9\",\n");
        let _ = writeln!(
            s,
            "  \"workers\": {},\n  \"queue_capacity\": {},",
            self.workers, self.queue_capacity
        );
        let _ = writeln!(
            s,
            "  \"saturated_jobs\": {},\n  \"saturated_jobs_per_sec\": {:.1},",
            self.saturated_jobs, self.saturated_jobs_per_sec
        );
        let _ = writeln!(
            s,
            "  \"saturated_p50_us\": {},\n  \"saturated_p99_us\": {},",
            self.saturated_p50_us, self.saturated_p99_us
        );
        let _ = writeln!(
            s,
            "  \"burst_offered\": {},\n  \"burst_accepted\": {},\n  \"burst_shed_429\": {},",
            self.burst_offered, self.burst_accepted, self.burst_shed_429
        );
        let _ = writeln!(
            s,
            "  \"burst_p50_us\": {},\n  \"burst_p99_us\": {},",
            self.burst_p50_us, self.burst_p99_us
        );
        let _ = writeln!(s, "  \"errors_5xx\": {},", self.errors_5xx);
        let _ = writeln!(
            s,
            "  \"digest\": \"{:016x}\",\n  \"digest_serial\": \"{:016x}\",",
            self.digest, self.digest_serial
        );
        let _ = writeln!(
            s,
            "  \"accounted\": {},\n  \"graceful\": {}",
            self.accounted(),
            self.graceful()
        );
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "server: {} worker(s), queue capacity {}",
            self.workers, self.queue_capacity
        );
        let _ = writeln!(
            s,
            "at saturation:   {} job(s), {:.1} jobs/s, submit p50 {} us / p99 {} us",
            self.saturated_jobs,
            self.saturated_jobs_per_sec,
            self.saturated_p50_us,
            self.saturated_p99_us
        );
        let _ = writeln!(
            s,
            "past saturation: {} offered -> {} accepted + {} shed (429), submit p50 {} us / \
             p99 {} us",
            self.burst_offered,
            self.burst_accepted,
            self.burst_shed_429,
            self.burst_p50_us,
            self.burst_p99_us
        );
        let _ = writeln!(
            s,
            "integrity: 5xx {}, digest {:016x} vs serial {:016x} -> {}",
            self.errors_5xx,
            self.digest,
            self.digest_serial,
            if self.graceful() {
                "graceful"
            } else {
                "BROKEN"
            }
        );
        s
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// One raw HTTP/1.1 request; returns `(status, body)`.
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to benchmark server");
    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
    s.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: SocketAddr, client: &str, opts: &StudyOpts) -> (u16, String) {
    let body = format!(
        r#"{{"study":"echo","params":{{"scale":{},"rounds":{},"seed":"{:#x}"}},"shards":1}}"#,
        opts.scale, opts.rounds, opts.seed
    );
    http(
        addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: b\r\nX-Client: {client}\r\nContent-Length: \
             {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn job_state(addr: SocketAddr, id: &str) -> (String, String) {
    let (_, body) = http(
        addr,
        &format!("GET /v1/jobs/{id} HTTP/1.1\r\nHost: b\r\n\r\n"),
    );
    let v = crate::json::Json::parse(&body).unwrap_or(crate::json::Json::Null);
    let state = v
        .get("state")
        .and_then(crate::json::Json::as_str)
        .unwrap_or("")
        .to_string();
    let digest = v
        .get("digest")
        .and_then(crate::json::Json::as_str)
        .unwrap_or("")
        .to_string();
    (state, digest)
}

fn wait_terminal(addr: SocketAddr, id: &str) -> (String, String) {
    let t0 = Instant::now();
    loop {
        let (state, digest) = job_state(addr, id);
        if matches!(state.as_str(), "completed" | "failed" | "timed-out") {
            return (state, digest);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "benchmark job {id} never reached a terminal state"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn metric(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs the service saturation benchmark.
pub fn run_bench() -> BenchPr9Report {
    let data = std::env::temp_dir().join(format!("giantsan-bench-pr9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data.clone(),
        queue_capacity: QUEUE_CAP,
        workers: WORKERS,
        threads_per_job: 1,
        ..ServeConfig::default()
    })
    .expect("start benchmark server");
    let addr = server.addr();

    // Phase 1 — at saturation: one closed loop per worker.
    let t0 = Instant::now();
    let mut submit_us: Vec<u64> = Vec::new();
    let mut first_digest = String::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|c| {
                scope.spawn(move || {
                    let client = format!("closed-{c}");
                    let mut lat = Vec::with_capacity(JOBS_PER_CLIENT);
                    let mut digest = String::new();
                    for _ in 0..JOBS_PER_CLIENT {
                        let t = Instant::now();
                        let (st, body) = submit(addr, &client, &job_opts());
                        lat.push(t.elapsed().as_micros() as u64);
                        assert_eq!(st, 202, "closed-loop submit must admit: {body}");
                        let id = crate::json::Json::parse(&body)
                            .unwrap()
                            .get("id")
                            .and_then(crate::json::Json::as_str)
                            .unwrap()
                            .to_string();
                        let (state, d) = wait_terminal(addr, &id);
                        assert_eq!(state, "completed", "benchmark job failed");
                        digest = d;
                    }
                    (lat, digest)
                })
            })
            .collect();
        for h in handles {
            let (lat, digest) = h.join().expect("closed-loop client");
            submit_us.extend(lat);
            first_digest = digest;
        }
    });
    let saturated_jobs = WORKERS * JOBS_PER_CLIENT;
    let saturated_jobs_per_sec = saturated_jobs as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    submit_us.sort_unstable();
    let saturated_p50_us = percentile(&submit_us, 0.50);
    let saturated_p99_us = percentile(&submit_us, 0.99);

    // Phase 2 — past saturation: an open-loop burst from twice as many
    // clients as workers, no waiting. The queue fills and everything else
    // sheds with 429.
    let clients = WORKERS * 2;
    let mut burst_us: Vec<u64> = Vec::new();
    let mut burst_accepted = 0u64;
    let mut burst_shed_429 = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let client = format!("open-{c}");
                    let mut lat = Vec::new();
                    let mut accepted = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..BURST / clients {
                        let t = Instant::now();
                        let (st, body) = submit(addr, &client, &burst_opts());
                        lat.push(t.elapsed().as_micros() as u64);
                        match st {
                            202 => accepted += 1,
                            429 => shed += 1,
                            other => panic!("burst submit got {other}: {body}"),
                        }
                    }
                    (lat, accepted, shed)
                })
            })
            .collect();
        for h in handles {
            let (lat, accepted, shed) = h.join().expect("open-loop client");
            burst_us.extend(lat);
            burst_accepted += accepted;
            burst_shed_429 += shed;
        }
    });
    let burst_offered = (BURST / clients) * clients;
    burst_us.sort_unstable();
    let burst_p50_us = percentile(&burst_us, 0.50);
    let burst_p99_us = percentile(&burst_us, 0.99);

    // Let the accepted backlog drain, then read the integrity counters.
    let t0 = Instant::now();
    loop {
        let (_, exposition) = http(addr, "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n");
        let terminal = metric(&exposition, "giantsan_serve_jobs_completed_total")
            + metric(&exposition, "giantsan_serve_jobs_failed_total")
            + metric(&exposition, "giantsan_serve_jobs_timed_out_total");
        if terminal == saturated_jobs as u64 + burst_accepted {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "benchmark backlog never drained"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (_, exposition) = http(addr, "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n");
    let errors_5xx = metric(&exposition, "giantsan_serve_responses_total_5xx");

    server.stop();
    server.join();
    let _ = std::fs::remove_dir_all(&data);

    // The determinism anchor: one benchmark job's digest vs the same study
    // run serially in-process.
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").expect("echo study");
    let records = Campaign::new(study, job_opts())
        .expect("benchmark campaign")
        .run_all(&BatchRunner::serial());
    let digest_serial = records_digest(&records);
    let digest = u64::from_str_radix(first_digest.trim_start_matches("0x"), 16).unwrap_or(0);

    BenchPr9Report {
        workers: WORKERS,
        queue_capacity: QUEUE_CAP,
        saturated_jobs,
        saturated_jobs_per_sec,
        saturated_p50_us,
        saturated_p99_us,
        burst_offered,
        burst_accepted,
        burst_shed_429,
        burst_p50_us,
        burst_p99_us,
        errors_5xx,
        digest,
        digest_serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchPr9Report {
            workers: 2,
            queue_capacity: 16,
            saturated_jobs: 16,
            saturated_jobs_per_sec: 123.4,
            saturated_p50_us: 800,
            saturated_p99_us: 2000,
            burst_offered: 96,
            burst_accepted: 40,
            burst_shed_429: 56,
            burst_p50_us: 300,
            burst_p99_us: 900,
            errors_5xx: 0,
            digest: 0xbeef,
            digest_serial: 0xbeef,
        };
        let j = r.to_json();
        assert!(j.contains("\"graceful\": true"), "{j}");
        assert!(j.contains("\"accounted\": true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn service_degrades_gracefully_past_saturation() {
        let r = run_bench();
        assert!(r.accounted(), "{}", r.render());
        assert!(r.graceful(), "{}", r.render());
        assert!(r.saturated_jobs_per_sec > 0.0);
        // Overload must actually have happened for the shed numbers to mean
        // anything: the burst exceeds queue capacity by construction.
        assert!(r.burst_offered > r.queue_capacity);
    }
}
