//! `repro perfgate` — the perf-regression observatory over the committed
//! benchmark trajectory.
//!
//! Every milestone commits a `BENCH_PR*.json` snapshot at the repository
//! root. This module parses those snapshots, checks the **invariants** each
//! one pins (determinism digests agree, the service shed no 5xx, the
//! granular poisoner still beats per-object, hot-path speedups hold above a
//! noise floor), and — given a baseline directory — renders a per-metric
//! **trend table** with noise bands so CI flags a regression instead of a
//! human eyeballing tables.
//!
//! The gate separates two failure classes:
//!
//! * **Invariant violations** are correctness facts (digest mismatches,
//!   `deterministic: false`, shed errors). They fail the gate at any noise
//!   setting: wall-clock jitter cannot explain them.
//! * **Metric regressions** are numeric deltas against the baseline that
//!   exceed the noise band (`--noise`, percent, default
//!   [`DEFAULT_NOISE_PCT`]). Ratio-like metrics compare relatively;
//!   percent-point metrics (`*_pct`) compare by absolute points, because a
//!   relative delta against a near-zero overhead is meaningless.
//!
//! Absent files are reported, not failed: the trajectory grows a snapshot
//! per milestone and old checkouts legitimately miss newer files. Exit
//! codes follow the `repro` contract: `--check` (the CI mode) exits 1 when
//! the gate fails; without it the observatory prints the same report and
//! exits 0 so a human can read a red table without killing a pipeline.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::table::TextTable;

/// Flag grammar, shown by `repro` usage output.
pub const FLAG_USAGE: &str = "[--check] [--dir DIR] [--against DIR] [--noise PCT]";

/// Default noise band, in percent. Wide enough that the committed
/// trajectory (whose slowest hot-path case sits at 0.98×) passes, tight
/// enough that a genuine 2× regression cannot hide in it.
pub const DEFAULT_NOISE_PCT: f64 = 10.0;

/// The benchmark snapshots the gate knows how to read, in report order.
/// (There is no PR3/PR7 snapshot; those milestones shipped no bench file.)
pub const BENCH_FILES: [&str; 7] = [
    "BENCH_PR1.json",
    "BENCH_PR2.json",
    "BENCH_PR4.json",
    "BENCH_PR5.json",
    "BENCH_PR6.json",
    "BENCH_PR8.json",
    "BENCH_PR9.json",
];

/// Parsed `repro perfgate` invocation.
#[derive(Debug, Clone)]
pub struct PerfGateConfig {
    /// Directory holding the current `BENCH_PR*.json` set (default `.`).
    pub dir: PathBuf,
    /// Baseline directory for the trend comparison, if any.
    pub against: Option<PathBuf>,
    /// Noise band in percent.
    pub noise_pct: f64,
    /// CI mode: exit non-zero when the gate fails.
    pub check: bool,
}

impl PerfGateConfig {
    /// Parses the `perfgate` flag grammar.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut config = PerfGateConfig {
            dir: PathBuf::from("."),
            against: None,
            noise_pct: DEFAULT_NOISE_PCT,
            check: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--check" => config.check = true,
                "--dir" => config.dir = PathBuf::from(value("--dir")?),
                "--against" => config.against = Some(PathBuf::from(value("--against")?)),
                "--noise" => {
                    let v = value("--noise")?;
                    config.noise_pct = v
                        .parse::<f64>()
                        .ok()
                        .filter(|n| n.is_finite() && *n >= 0.0)
                        .ok_or_else(|| {
                            format!("--noise needs a non-negative percent, got `{v}`")
                        })?;
                }
                other => return Err(format!("unknown perfgate flag `{other}`")),
            }
        }
        Ok(config)
    }
}

/// Which direction is good for a numeric metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Bigger is better (speedups, throughput).
    Higher,
    /// Smaller is better (latencies, overhead percentages).
    Lower,
}

/// One numeric metric extracted from a benchmark snapshot.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Dotted name, e.g. `pr9.saturated_jobs_per_sec`.
    pub name: String,
    /// Current value.
    pub value: f64,
    /// Good direction.
    pub better: Better,
    /// `true` for `*_pct` metrics, compared by absolute percent points
    /// rather than relative delta.
    pub points: bool,
}

/// Everything one gate evaluation produced.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Rendered report (trend table + invariant verdicts + absences).
    pub report: String,
    /// Invariant violations (always gate failures).
    pub violations: Vec<String>,
    /// Baseline deltas outside the noise band.
    pub regressions: Vec<String>,
    /// Snapshots listed in [`BENCH_FILES`] but not present.
    pub absent: Vec<String>,
}

impl GateReport {
    /// `true` when nothing violated an invariant or regressed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.regressions.is_empty()
    }
}

fn f(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

fn flag_is(j: &Json, key: &str, want: bool) -> bool {
    j.get(key).and_then(Json::as_bool) == Some(want)
}

fn strings_match(j: &Json, a: &str, b: &str) -> bool {
    match (
        j.get(a).and_then(Json::as_str),
        j.get(b).and_then(Json::as_str),
    ) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// The numeric trend metrics a snapshot exposes.
fn metrics_of(tag: &str, j: &Json) -> Vec<Metric> {
    let mut m = Vec::new();
    let mut push = |name: String, value: Option<f64>, better: Better| {
        if let Some(value) = value {
            let points = name.ends_with("_pct");
            m.push(Metric {
                name,
                value,
                better,
                points,
            });
        }
    };
    match tag {
        "pr1" => {
            for case in j.get("cases").and_then(Json::as_array).unwrap_or(&[]) {
                if let Some(name) = case.get("name").and_then(Json::as_str) {
                    push(
                        format!("pr1.{name}.speedup"),
                        f(case, "speedup"),
                        Better::Higher,
                    );
                }
            }
        }
        "pr2" => push("pr2.speedup".into(), f(j, "speedup"), Better::Higher),
        "pr4" => push(
            "pr4.overhead_pct".into(),
            f(j, "overhead_pct"),
            Better::Lower,
        ),
        "pr5" => {
            push(
                "pr5.ns_per_event".into(),
                f(j, "ns_per_event"),
                Better::Lower,
            );
            push(
                "pr5.trace_overhead_pct".into(),
                f(j, "trace_overhead_pct"),
                Better::Lower,
            );
        }
        "pr8" => {
            push(
                "pr8.granular_speedup".into(),
                f(j, "granular_speedup"),
                Better::Higher,
            );
            push(
                "pr8.blockline_fill_mops".into(),
                f(j, "blockline_fill_mops"),
                Better::Higher,
            );
        }
        "pr9" => {
            push(
                "pr9.saturated_jobs_per_sec".into(),
                f(j, "saturated_jobs_per_sec"),
                Better::Higher,
            );
            push(
                "pr9.saturated_p99_us".into(),
                f(j, "saturated_p99_us"),
                Better::Lower,
            );
            push(
                "pr9.burst_p99_us".into(),
                f(j, "burst_p99_us"),
                Better::Lower,
            );
        }
        _ => {}
    }
    m
}

/// The snapshot's pinned correctness facts; returns the violations.
fn invariants_of(tag: &str, j: &Json, noise_pct: f64) -> Vec<String> {
    let mut bad = Vec::new();
    let floor = 1.0 - noise_pct / 100.0;
    match tag {
        "pr1" => {
            for case in j.get("cases").and_then(Json::as_array).unwrap_or(&[]) {
                let name = case.get("name").and_then(Json::as_str).unwrap_or("?");
                match f(case, "speedup") {
                    Some(s) if s >= floor => {}
                    Some(s) => bad.push(format!(
                        "pr1: case `{name}` speedup {s:.2} fell below the {floor:.2} noise floor"
                    )),
                    None => bad.push(format!("pr1: case `{name}` has no speedup field")),
                }
            }
        }
        "pr2" => {
            if !strings_match(j, "digest_serial", "digest_parallel") {
                bad.push("pr2: serial and parallel digests differ".into());
            }
            if !flag_is(j, "deterministic", true) {
                bad.push("pr2: deterministic flag is not true".into());
            }
            if !flag_is(j, "table2_csv_identical", true) {
                bad.push("pr2: sharded Table 2 CSV is not byte-identical".into());
            }
        }
        "pr4" => {
            if !strings_match(j, "digest_halt", "digest_recover") {
                bad.push("pr4: halt and recover digests differ".into());
            }
            if !flag_is(j, "deterministic", true) {
                bad.push("pr4: deterministic flag is not true".into());
            }
        }
        "pr5" => {
            if !strings_match(j, "digest_noop", "digest_traced") {
                bad.push("pr5: noop and traced digests differ".into());
            }
            if !flag_is(j, "deterministic", true) {
                bad.push("pr5: deterministic flag is not true".into());
            }
        }
        "pr8" => {
            if !flag_is(j, "granular_beats_per_object", true) {
                bad.push("pr8: granular poisoning no longer beats per-object".into());
            }
            match f(j, "granular_speedup") {
                Some(s) if s >= floor => {}
                Some(s) => bad.push(format!(
                    "pr8: granular_speedup {s:.2} fell below the {floor:.2} noise floor"
                )),
                None => bad.push("pr8: no granular_speedup field".into()),
            }
        }
        "pr9" => {
            if f(j, "errors_5xx") != Some(0.0) {
                bad.push("pr9: the saturated service shed 5xx errors".into());
            }
            if !flag_is(j, "accounted", true) {
                bad.push("pr9: not every admitted job was accounted for".into());
            }
            if !flag_is(j, "graceful", true) {
                bad.push("pr9: shutdown was not graceful".into());
            }
            if !strings_match(j, "digest", "digest_serial") {
                bad.push("pr9: loaded-service digest diverged from the serial run".into());
            }
        }
        _ => {}
    }
    bad
}

/// `BENCH_PR1.json` → `pr1`.
fn tag_of(file: &str) -> String {
    format!(
        "pr{}",
        file.trim_start_matches("BENCH_PR")
            .trim_end_matches(".json")
    )
}

/// Loads every known snapshot under `dir`. Unreadable or unparseable files
/// become violations (a tampered snapshot must fail the gate, not crash
/// it); files that simply do not exist are reported as absent.
pub fn load_dir(dir: &Path) -> (Vec<(String, Json)>, Vec<String>, Vec<String>) {
    let mut loaded = Vec::new();
    let mut absent = Vec::new();
    let mut violations = Vec::new();
    for file in BENCH_FILES {
        let path = dir.join(file);
        if !path.exists() {
            absent.push(file.to_string());
            continue;
        }
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text))
        {
            Ok(json) => loaded.push((file.to_string(), json)),
            Err(e) => violations.push(format!("{file}: unreadable snapshot: {e}")),
        }
    }
    (loaded, absent, violations)
}

fn verdict_for(m: &Metric, base: Option<f64>, noise_pct: f64) -> (String, Option<String>) {
    let Some(base) = base else {
        return ("-".into(), None);
    };
    let (delta_text, regressed) = if m.points {
        // Percent-point metric: compare by absolute points.
        let delta = m.value - base;
        let bad = match m.better {
            Better::Higher => -delta,
            Better::Lower => delta,
        };
        (format!("{delta:+.2}pt"), bad > noise_pct)
    } else if base.abs() < f64::EPSILON {
        (String::from("n/a"), false)
    } else {
        let delta = (m.value - base) / base * 100.0;
        let bad = match m.better {
            Better::Higher => -delta,
            Better::Lower => delta,
        };
        (format!("{delta:+.1}%"), bad > noise_pct)
    };
    if regressed {
        let why = format!(
            "{}: {} → {} ({delta_text}) exceeds the {noise_pct}% noise band",
            m.name, base, m.value
        );
        (format!("REGRESSED {delta_text}"), Some(why))
    } else {
        (format!("ok {delta_text}"), None)
    }
}

/// Evaluates the gate over parsed snapshots. Pure — the I/O lives in
/// [`load_dir`] / [`run`] so tests can gate synthetic trajectories.
pub fn gate(
    current: &[(String, Json)],
    baseline: Option<&[(String, Json)]>,
    noise_pct: f64,
) -> GateReport {
    let mut rep = GateReport::default();
    let mut table = TextTable::new(
        ["metric", "current", "baseline", "verdict"]
            .map(String::from)
            .to_vec(),
    );
    for (file, json) in current {
        let tag = tag_of(file);
        rep.violations.extend(invariants_of(&tag, json, noise_pct));
        let base_json = baseline.and_then(|b| {
            b.iter()
                .find(|(name, _)| name == file)
                .map(|(_, json)| json)
        });
        let base_metrics: Vec<Metric> = base_json.map(|j| metrics_of(&tag, j)).unwrap_or_default();
        for m in metrics_of(&tag, json) {
            let base = base_metrics
                .iter()
                .find(|b| b.name == m.name)
                .map(|b| b.value);
            let (verdict, regression) = verdict_for(&m, base, noise_pct);
            if let Some(why) = regression {
                rep.regressions.push(why);
            }
            table.row(vec![
                m.name.clone(),
                format!("{:.3}", m.value),
                base.map(|b| format!("{b:.3}"))
                    .unwrap_or_else(|| "-".into()),
                verdict,
            ]);
        }
    }

    let mut out = format!(
        "== perfgate: {} snapshot(s), noise band {noise_pct}% ==\n\n{}",
        current.len(),
        table.render()
    );
    if !rep.absent.is_empty() || !rep.violations.is_empty() {
        out.push('\n');
    }
    for a in &rep.absent {
        out.push_str(&format!("absent: {a} (not part of this trajectory yet)\n"));
    }
    for v in &rep.violations {
        out.push_str(&format!("VIOLATION: {v}\n"));
    }
    for r in &rep.regressions {
        out.push_str(&format!("REGRESSION: {r}\n"));
    }
    out.push_str(&format!(
        "\nperfgate: {}\n",
        if rep.violations.is_empty() && rep.regressions.is_empty() {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    rep.report = out;
    rep
}

/// Loads, gates, and prints. `Err` is a usage problem (missing directory);
/// `Ok(report)` carries the pass/fail verdict for the exit code.
pub fn run(config: &PerfGateConfig) -> Result<GateReport, String> {
    if !config.dir.is_dir() {
        return Err(format!("--dir {}: not a directory", config.dir.display()));
    }
    let (current, absent, mut violations) = load_dir(&config.dir);
    if current.is_empty() && violations.is_empty() {
        return Err(format!(
            "no BENCH_PR*.json snapshots under {}",
            config.dir.display()
        ));
    }
    let baseline = match &config.against {
        Some(dir) => {
            if !dir.is_dir() {
                return Err(format!("--against {}: not a directory", dir.display()));
            }
            let (base, _, base_violations) = load_dir(dir);
            violations.extend(base_violations.into_iter().map(|v| format!("baseline {v}")));
            Some(base)
        }
        None => None,
    };
    let mut rep = gate(&current, baseline.as_deref(), config.noise_pct);
    rep.absent = absent;
    rep.violations.extend(violations);
    // Late-arriving violations (unreadable files) must show in the text too.
    if !rep.passed() && !rep.report.contains("FAIL") {
        rep.report.push_str("perfgate: FAIL\n");
    }
    print!("{}", rep.report);
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed() -> Vec<(String, Json)> {
        // The crate lives two levels below the repo root where the
        // committed trajectory sits.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let (loaded, _, violations) = load_dir(&root);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(!loaded.is_empty(), "committed BENCH snapshots exist");
        loaded
    }

    #[test]
    fn committed_trajectory_passes_the_gate() {
        let current = committed();
        let rep = gate(&current, None, DEFAULT_NOISE_PCT);
        assert!(rep.passed(), "{}", rep.report);
        assert!(rep.report.contains("perfgate: PASS"));
        assert!(rep.report.contains("pr9.saturated_jobs_per_sec"));
    }

    #[test]
    fn committed_trajectory_is_its_own_baseline() {
        let current = committed();
        let rep = gate(&current, Some(&current), DEFAULT_NOISE_PCT);
        assert!(rep.passed(), "{}", rep.report);
        // Every compared metric renders an in-band verdict.
        assert!(rep.report.contains("ok +0.0%"), "{}", rep.report);
        assert!(!rep.report.contains("REGRESSED"));
    }

    #[test]
    fn tampered_determinism_and_sunk_speedup_fail() {
        let tampered: Vec<(String, Json)> = committed()
            .into_iter()
            .map(|(name, json)| {
                let text = json.render();
                let text = match name.as_str() {
                    "BENCH_PR2.json" => {
                        text.replace("\"deterministic\": true", "\"deterministic\": false")
                    }
                    _ => text,
                };
                (name, Json::parse(&text).unwrap())
            })
            .collect();
        let rep = gate(&tampered, None, DEFAULT_NOISE_PCT);
        assert!(!rep.passed());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.contains("pr2: deterministic")));
    }

    #[test]
    fn regressions_against_a_baseline_trip_the_noise_band() {
        let base = vec![(
            "BENCH_PR9.json".to_string(),
            Json::parse(
                r#"{"bench":"BENCH_PR9","errors_5xx":0,"accounted":true,"graceful":true,
                    "digest":"ab","digest_serial":"ab",
                    "saturated_jobs_per_sec":100.0,"saturated_p99_us":1000,"burst_p99_us":1000}"#,
            )
            .unwrap(),
        )];
        // Throughput halved, p99 doubled: both outside a 10% band.
        let cur = vec![(
            "BENCH_PR9.json".to_string(),
            Json::parse(
                r#"{"bench":"BENCH_PR9","errors_5xx":0,"accounted":true,"graceful":true,
                    "digest":"ab","digest_serial":"ab",
                    "saturated_jobs_per_sec":50.0,"saturated_p99_us":2000,"burst_p99_us":1000}"#,
            )
            .unwrap(),
        )];
        let rep = gate(&cur, Some(&base), DEFAULT_NOISE_PCT);
        assert_eq!(rep.regressions.len(), 2, "{}", rep.report);
        assert!(rep.report.contains("REGRESSED"));
        // The same numbers inside a huge band pass.
        let loose = gate(&cur, Some(&base), 200.0);
        assert!(loose.passed(), "{}", loose.report);
    }

    #[test]
    fn percent_point_metrics_compare_by_points_not_ratio() {
        let base = vec![(
            "BENCH_PR4.json".to_string(),
            Json::parse(
                r#"{"bench":"BENCH_PR4","overhead_pct":-0.5,
                    "digest_halt":"x","digest_recover":"x","deterministic":true}"#,
            )
            .unwrap(),
        )];
        // −0.5% → +5%: a 5.5-point worsening. Relative delta against a
        // near-zero base would be nonsense; points catch it cleanly.
        let cur = vec![(
            "BENCH_PR4.json".to_string(),
            Json::parse(
                r#"{"bench":"BENCH_PR4","overhead_pct":5.0,
                    "digest_halt":"x","digest_recover":"x","deterministic":true}"#,
            )
            .unwrap(),
        )];
        assert!(gate(&cur, Some(&base), 10.0).passed());
        let tight = gate(&cur, Some(&base), 5.0);
        assert!(!tight.passed(), "{}", tight.report);
        assert!(tight.regressions[0].contains("pr4.overhead_pct"));
    }

    #[test]
    fn flags_parse_and_reject_garbage() {
        let ok = PerfGateConfig::parse(&[
            "--check".into(),
            "--dir".into(),
            "a".into(),
            "--against".into(),
            "b".into(),
            "--noise".into(),
            "5".into(),
        ])
        .unwrap();
        assert!(ok.check);
        assert_eq!(ok.dir, PathBuf::from("a"));
        assert_eq!(ok.against, Some(PathBuf::from("b")));
        assert_eq!(ok.noise_pct, 5.0);
        assert!(PerfGateConfig::parse(&["--bogus".into()]).is_err());
        assert!(PerfGateConfig::parse(&["--noise".into()]).is_err());
        assert!(PerfGateConfig::parse(&["--noise".into(), "-3".into()]).is_err());
    }

    #[test]
    fn absent_snapshots_report_without_failing() {
        let dir = std::env::temp_dir().join(format!("giantsan-perfgate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_PR2.json"),
            r#"{"bench":"BENCH_PR2","speedup":1.0,"digest_serial":"a",
                "digest_parallel":"a","deterministic":true,"table2_csv_identical":true}"#,
        )
        .unwrap();
        let (loaded, absent, violations) = load_dir(&dir);
        assert_eq!(loaded.len(), 1);
        assert!(absent.contains(&"BENCH_PR1.json".to_string()));
        assert!(violations.is_empty());
        // An unparseable snapshot is a violation, not a crash.
        std::fs::write(dir.join("BENCH_PR5.json"), "{not json").unwrap();
        let (_, _, violations) = load_dir(&dir);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("BENCH_PR5.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
