//! Table 3: detection capability on the Juliet-like suite.

use std::collections::HashMap;

use giantsan_ir::CheckPlan;
use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::juliet::{juliet_suite_scaled, paper_totals, JulietSuite};

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_planned, Tool};

/// Detection tools of Table 3, in column order.
pub const COLUMNS: [Tool; 4] = [Tool::GiantSan, Tool::Asan, Tool::AsanMinusMinus, Tool::Lfp];

/// One CWE row of the table.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// CWE number.
    pub cwe: u32,
    /// Detected cases per column tool.
    pub detected: Vec<u32>,
    /// False positives on the safe twins per column tool (the paper reports
    /// none; this column validates that).
    pub false_positives: Vec<u32>,
    /// Total buggy cases.
    pub total: u32,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Per-CWE rows, ascending.
    pub rows: Vec<Table3Row>,
    /// Scaling divisor used (1 = the paper's full counts).
    pub divisor: u32,
}

/// Runs the detection study. `divisor = 1` reproduces the full Table 3
/// counts; larger values subsample each family.
pub fn table3(divisor: u32) -> Table3 {
    table3_with(&BatchRunner::default(), divisor)
}

/// [`table3`] on an explicit runner (one cell per Juliet case; each cell
/// runs the buggy and safe twins under every column tool).
pub fn table3_with(runner: &BatchRunner, divisor: u32) -> Table3 {
    let suite = juliet_suite_scaled(divisor);
    let cfg = RuntimeConfig::small();
    // One plan per (template, tool): templates are shared across thousands
    // of cases, and the map is shared read-only across workers.
    let plans: Vec<HashMap<usize, CheckPlan>> = COLUMNS
        .iter()
        .map(|tool| {
            suite
                .templates
                .iter()
                .enumerate()
                .map(|(i, p)| (i, tool.plan(p)))
                .collect()
        })
        .collect();

    // Per-case verdicts: (detected, false positive) per column tool.
    let verdicts = runner.map(&suite.cases, |_, case| {
        COLUMNS
            .iter()
            .enumerate()
            .map(|(t, tool)| {
                let plan = &plans[t][&case.template];
                let program = &suite.templates[case.template];
                let buggy = run_planned(*tool, program, plan, &case.buggy_inputs, &cfg);
                let safe = run_planned(*tool, program, plan, &case.safe_inputs, &cfg);
                (buggy.detected(), safe.detected())
            })
            .collect::<Vec<_>>()
    });

    let mut rows: Vec<Table3Row> = paper_totals()
        .iter()
        .map(|&(cwe, _)| Table3Row {
            cwe,
            detected: vec![0; COLUMNS.len()],
            false_positives: vec![0; COLUMNS.len()],
            total: 0,
        })
        .collect();

    for (case, verdict) in suite.cases.iter().zip(&verdicts) {
        let row = rows
            .iter_mut()
            .find(|r| r.cwe == case.cwe)
            .expect("unknown CWE family");
        row.total += 1;
        for (t, &(buggy, safe_fp)) in verdict.iter().enumerate() {
            if buggy {
                row.detected[t] += 1;
            }
            if safe_fp {
                row.false_positives[t] += 1;
            }
        }
    }
    Table3 { rows, divisor }
}

/// Human-readable CWE titles (the paper's row labels).
pub fn cwe_title(cwe: u32) -> &'static str {
    match cwe {
        121 => "Stack Buffer Overflow",
        122 => "Heap Buffer Overflow",
        124 => "Buffer Underwrite",
        126 => "Buffer Overread",
        127 => "Buffer Underread",
        416 => "Use After Free",
        476 => "NULL Pointer Dereference",
        761 => "Free Pointer Not at Start of Buffer",
        _ => "Unknown",
    }
}

impl Table3 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut headers = vec!["CWE ID & Type".to_string()];
        headers.extend(COLUMNS.iter().map(|t| t.name().to_string()));
        headers.push("Total".to_string());
        let mut t = TextTable::new(headers);
        let mut sums = vec![0u32; COLUMNS.len()];
        let mut total = 0u32;
        for r in &self.rows {
            let mut cells = vec![format!("{}: {}", r.cwe, cwe_title(r.cwe))];
            for (i, d) in r.detected.iter().enumerate() {
                cells.push(d.to_string());
                sums[i] += d;
            }
            cells.push(r.total.to_string());
            total += r.total;
            t.row(cells);
        }
        t.separator();
        let mut cells = vec!["Total".to_string()];
        cells.extend(sums.iter().map(|s| s.to_string()));
        cells.push(total.to_string());
        t.row(cells);
        let mut s = t.render();
        let fps: u32 = self
            .rows
            .iter()
            .flat_map(|r| r.false_positives.iter())
            .sum();
        s.push_str(&format!(
            "\nFalse positives on non-buggy twins: {fps} (paper: all tools pass all non-buggy tests)\n"
        ));
        if self.divisor > 1 {
            s.push_str(&format!(
                "(subsampled 1/{}; run with --div 1 for the paper's full counts)\n",
                self.divisor
            ));
        }
        s
    }
}

/// Access to the underlying suite for integration tests.
pub fn suite(divisor: u32) -> JulietSuite {
    juliet_suite_scaled(divisor)
}

/// The payload of one Juliet case: its CWE plus per-tool verdicts on the
/// buggy and safe twins.
fn case_payload(cwe: u32, verdicts: &[(bool, bool)]) -> Json {
    let buggy: Vec<bool> = verdicts.iter().map(|v| v.0).collect();
    let safe: Vec<bool> = verdicts.iter().map(|v| v.1).collect();
    Json::obj()
        .field("cwe", cwe)
        .field("buggy", study::bools(&buggy))
        .field("safe", study::bools(&safe))
}

/// `repro table3` as a [`Study`]: one cell per Juliet case.
#[derive(Debug, Clone, Copy)]
pub struct Table3Entry;

impl Study for Table3Entry {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(juliet_suite_scaled(opts.div)
            .cases
            .iter()
            .enumerate()
            .map(|(i, c)| format!("cwe{}/case{i}", c.cwe))
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let suite = juliet_suite_scaled(opts.div);
        let cfg = RuntimeConfig::small();
        let case = &suite.cases[index];
        let program = &suite.templates[case.template];
        let verdicts: Vec<(bool, bool)> = COLUMNS
            .iter()
            .map(|tool| {
                let plan = tool.plan(program);
                let buggy = run_planned(*tool, program, &plan, &case.buggy_inputs, &cfg);
                let safe = run_planned(*tool, program, &plan, &case.safe_inputs, &cfg);
                (buggy.detected(), safe.detected())
            })
            .collect();
        case_payload(case.cwe, &verdicts)
    }

    /// Hoists the suite and the per-(template, tool) plan cache once per
    /// range — templates are shared across thousands of cases — while
    /// producing exactly the payloads [`Study::run_cell`] would.
    fn run_range(
        &self,
        opts: &StudyOpts,
        range: std::ops::Range<usize>,
        runner: &BatchRunner,
    ) -> Vec<Json> {
        let suite = juliet_suite_scaled(opts.div);
        let cfg = RuntimeConfig::small();
        let plans: Vec<HashMap<usize, CheckPlan>> = COLUMNS
            .iter()
            .map(|tool| {
                suite
                    .templates
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, tool.plan(p)))
                    .collect()
            })
            .collect();
        let indices: Vec<usize> = range.collect();
        runner.map(&indices, |_, &i| {
            let case = &suite.cases[i];
            let program = &suite.templates[case.template];
            let verdicts: Vec<(bool, bool)> = COLUMNS
                .iter()
                .enumerate()
                .map(|(t, tool)| {
                    let plan = &plans[t][&case.template];
                    let buggy = run_planned(*tool, program, plan, &case.buggy_inputs, &cfg);
                    let safe = run_planned(*tool, program, plan, &case.safe_inputs, &cfg);
                    (buggy.detected(), safe.detected())
                })
                .collect();
            case_payload(case.cwe, &verdicts)
        })
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut rows: Vec<Table3Row> = paper_totals()
            .iter()
            .map(|&(cwe, _)| Table3Row {
                cwe,
                detected: vec![0; COLUMNS.len()],
                false_positives: vec![0; COLUMNS.len()],
                total: 0,
            })
            .collect();
        for r in records {
            let cwe = study::req_u64(&r.payload, "cwe") as u32;
            let buggy = study::req_bools(&r.payload, "buggy");
            let safe = study::req_bools(&r.payload, "safe");
            let row = rows
                .iter_mut()
                .find(|row| row.cwe == cwe)
                .ok_or_else(|| format!("unknown CWE family {cwe}"))?;
            row.total += 1;
            for (t, (&b, &s)) in buggy.iter().zip(&safe).enumerate() {
                if b {
                    row.detected[t] += 1;
                }
                if s {
                    row.false_positives[t] += 1;
                }
            }
        }
        let t = Table3 {
            rows,
            divisor: opts.div,
        };
        Ok(StudyOutput {
            report: format!("== Table 3: Juliet-like detection ==\n\n{}\n", t.render()),
            artifacts: vec![("table3.csv".to_string(), crate::csv::table3_csv(&t))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsampled_table_has_paper_shape() {
        let t = table3(30);
        // Column indexes.
        let (gs, asan, asanmm, lfp) = (0, 1, 2, 3);
        for r in &t.rows {
            // Location-based tools agree with each other everywhere.
            assert_eq!(r.detected[gs], r.detected[asan], "CWE-{}", r.cwe);
            assert_eq!(r.detected[asan], r.detected[asanmm], "CWE-{}", r.cwe);
            // No tool reports on safe twins.
            assert_eq!(r.false_positives.iter().sum::<u32>(), 0, "CWE-{}", r.cwe);
            match r.cwe {
                121 => assert!(r.detected[lfp] < r.detected[gs] / 4),
                122 => assert!(r.detected[lfp] < r.detected[gs] / 4),
                126 => assert!(r.detected[lfp] < r.detected[gs]),
                124 | 127 | 416 | 476 | 761 => {
                    assert_eq!(r.detected[lfp], r.detected[gs], "CWE-{}", r.cwe)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn render_includes_titles() {
        let t = table3(120);
        let s = t.render();
        assert!(s.contains("Use After Free"));
        assert!(s.contains("False positives"));
    }
}
