//! Table 5: redzone sensitivity on the Magma-like corpus.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::magma::{magma_cases, magma_templates, PROJECTS};

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::session::SessionSpec;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::Tool;

/// One detection configuration: a tool at a redzone size.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// The sanitizer.
    pub tool: Tool,
    /// Redzone size in bytes.
    pub redzone: u64,
}

/// The five configurations of Table 5, in the paper's column order.
pub const CONFIGS: [Config; 5] = [
    Config {
        tool: Tool::AsanMinusMinus,
        redzone: 16,
    },
    Config {
        tool: Tool::AsanMinusMinus,
        redzone: 512,
    },
    Config {
        tool: Tool::Asan,
        redzone: 16,
    },
    Config {
        tool: Tool::Asan,
        redzone: 512,
    },
    Config {
        tool: Tool::GiantSan,
        redzone: 16,
    },
];

/// One project row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Project name.
    pub project: &'static str,
    /// Lines-of-code label from the paper.
    pub loc: &'static str,
    /// Detected POCs per configuration.
    pub detected: Vec<u32>,
    /// Total cases for the project.
    pub total: u32,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Per-project rows.
    pub rows: Vec<Table5Row>,
    /// Subsampling divisor (1 = full 58,969-case corpus).
    pub divisor: u32,
}

/// Runs the redzone study. `divisor = 1` reproduces the paper's counts.
pub fn table5(divisor: u32) -> Table5 {
    table5_with(&BatchRunner::default(), divisor)
}

/// [`table5`] on an explicit runner (one cell per Magma case; each cell
/// runs every redzone configuration).
pub fn table5_with(runner: &BatchRunner, divisor: u32) -> Table5 {
    let templates = magma_templates();
    let cases = magma_cases(divisor);
    // One spec and one plan set per configuration, shared across workers.
    let specs: Vec<SessionSpec> = CONFIGS
        .iter()
        .map(|c| {
            c.tool
                .builder()
                .config(RuntimeConfig::small())
                .redzone(c.redzone)
                .spec()
        })
        .collect();
    let plans: Vec<Vec<giantsan_ir::CheckPlan>> = specs
        .iter()
        .map(|s| templates.iter().map(|p| s.plan(p)).collect())
        .collect();

    // Per-case verdicts per configuration.
    let verdicts = runner.map(&cases, |_, case| {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                spec.run_planned(
                    &templates[case.template],
                    &plans[i][case.template],
                    &case.inputs,
                )
                .detected()
            })
            .collect::<Vec<_>>()
    });

    let mut rows: Vec<Table5Row> = PROJECTS
        .iter()
        .map(|&(project, loc, ..)| Table5Row {
            project,
            loc,
            detected: vec![0; CONFIGS.len()],
            total: 0,
        })
        .collect();
    for (case, verdict) in cases.iter().zip(&verdicts) {
        let row = rows
            .iter_mut()
            .find(|r| r.project == case.project)
            .expect("unknown project");
        row.total += 1;
        for (i, &detected) in verdict.iter().enumerate() {
            if detected {
                row.detected[i] += 1;
            }
        }
    }
    Table5 { rows, divisor }
}

impl Table5 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut headers = vec!["Project (LoC)".to_string()];
        headers.extend(
            CONFIGS
                .iter()
                .map(|c| format!("{} (rz={})", c.tool.name(), c.redzone)),
        );
        headers.push("Total".to_string());
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut cells = vec![format!("{} ({})", r.project, r.loc)];
            cells.extend(r.detected.iter().map(|d| d.to_string()));
            cells.push(r.total.to_string());
            t.row(cells);
        }
        let mut s = t.render();
        if self.divisor > 1 {
            s.push_str(&format!(
                "(subsampled 1/{}; run with --div 1 for the paper's full counts)\n",
                self.divisor
            ));
        }
        s
    }
}

/// Builds the five per-configuration session specs.
fn config_specs() -> Vec<SessionSpec> {
    CONFIGS
        .iter()
        .map(|c| {
            c.tool
                .builder()
                .config(RuntimeConfig::small())
                .redzone(c.redzone)
                .spec()
        })
        .collect()
}

/// `repro table5` as a [`Study`]: one cell per Magma case.
#[derive(Debug, Clone, Copy)]
pub struct Table5Entry;

impl Study for Table5Entry {
    fn name(&self) -> &'static str {
        "table5"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(magma_cases(opts.div)
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{}/case{i}", c.project))
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let templates = magma_templates();
        let cases = magma_cases(opts.div);
        let case = &cases[index];
        let detected: Vec<bool> = config_specs()
            .iter()
            .map(|spec| {
                let plan = spec.plan(&templates[case.template]);
                spec.run_planned(&templates[case.template], &plan, &case.inputs)
                    .detected()
            })
            .collect();
        Json::obj()
            .field("project", case.project)
            .field("detected", study::bools(&detected))
    }

    /// Hoists the templates and the per-configuration plan sets once per
    /// range, like [`table5_with`], while producing [`Study::run_cell`]'s
    /// payloads.
    fn run_range(
        &self,
        opts: &StudyOpts,
        range: std::ops::Range<usize>,
        runner: &BatchRunner,
    ) -> Vec<Json> {
        let templates = magma_templates();
        let cases = magma_cases(opts.div);
        let specs = config_specs();
        let plans: Vec<Vec<giantsan_ir::CheckPlan>> = specs
            .iter()
            .map(|s| templates.iter().map(|p| s.plan(p)).collect())
            .collect();
        let indices: Vec<usize> = range.collect();
        runner.map(&indices, |_, &i| {
            let case = &cases[i];
            let detected: Vec<bool> = specs
                .iter()
                .enumerate()
                .map(|(c, spec)| {
                    spec.run_planned(
                        &templates[case.template],
                        &plans[c][case.template],
                        &case.inputs,
                    )
                    .detected()
                })
                .collect();
            Json::obj()
                .field("project", case.project)
                .field("detected", study::bools(&detected))
        })
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut rows: Vec<Table5Row> = PROJECTS
            .iter()
            .map(|&(project, loc, ..)| Table5Row {
                project,
                loc,
                detected: vec![0; CONFIGS.len()],
                total: 0,
            })
            .collect();
        for r in records {
            let project = study::req_str(&r.payload, "project");
            let detected = study::req_bools(&r.payload, "detected");
            let row = rows
                .iter_mut()
                .find(|row| row.project == project)
                .ok_or_else(|| format!("unknown project `{project}`"))?;
            row.total += 1;
            for (i, &d) in detected.iter().enumerate() {
                if d {
                    row.detected[i] += 1;
                }
            }
        }
        let t = Table5 {
            rows,
            divisor: opts.div,
        };
        Ok(StudyOutput {
            report: format!(
                "== Table 5: Magma-like redzone study ==\n\n{}\n",
                t.render()
            ),
            artifacts: vec![("table5.csv".to_string(), crate::csv::table5_csv(&t))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_shows_the_redzone_bypass_gap() {
        let t = table5(40);
        let php = t.rows.iter().find(|r| r.project == "php").unwrap();
        let (mm16, mm512, a16, a512, gs) = (
            php.detected[0],
            php.detected[1],
            php.detected[2],
            php.detected[3],
            php.detected[4],
        );
        // ASan and ASan-- agree at the same redzone.
        assert_eq!(mm16, a16);
        assert_eq!(mm512, a512);
        // Bigger redzones catch more; the anchor catches the most.
        assert!(a16 < a512, "rz=512 must beat rz=16 ({a16} vs {a512})");
        assert!(a512 < gs, "GiantSan must beat rz=512 ({a512} vs {gs})");
        assert!(gs < php.total, "non-memory POCs stay undetected");
    }

    #[test]
    fn projects_without_bypass_cases_tie() {
        let t = table5(40);
        for r in t.rows.iter().filter(|r| r.project == "libpng") {
            let first = r.detected[0];
            assert!(r.detected.iter().all(|&d| d == first), "{:?}", r.detected);
        }
    }
}
