//! Table 2: runtime overhead on the SPEC-like suite, with ablation columns.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::spec_suite;

use crate::batch::BatchRunner;
use crate::cost::{geomean, CostModel};
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::{pct, TextTable};
use crate::tool::{run_tool, RunOutcome, Tool};

/// Tool columns in the paper's order (plus the two ablations).
pub const COLUMNS: [Tool; 6] = [
    Tool::GiantSan,
    Tool::Asan,
    Tool::AsanMinusMinus,
    Tool::Lfp,
    Tool::CacheOnly,
    Tool::EliminationOnly,
];

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark id (`"519.lbm_r"`).
    pub id: String,
    /// Native modelled time units.
    pub native_units: f64,
    /// Native wall-clock microseconds.
    pub native_wall_us: f64,
    /// Modelled ratio percentage per column tool.
    pub ratios: Vec<f64>,
    /// Wall-clock ratio percentage per column tool.
    pub wall_ratios: Vec<f64>,
}

/// The full reproduced table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-benchmark rows.
    pub rows: Vec<Table2Row>,
    /// Geometric means of the modelled ratios, per column.
    pub geomeans: Vec<f64>,
    /// Geometric means of the wall-clock ratios, per column.
    pub wall_geomeans: Vec<f64>,
}

/// Runs the performance study at `scale` (1 = quick, larger = steadier
/// wall-clock numbers) on the default runner.
pub fn table2(scale: u64) -> Table2 {
    table2_with(&BatchRunner::default(), scale)
}

/// [`table2`] on an explicit runner.
///
/// The cell matrix is (workload × tool incl. native), fine-grained enough
/// that one slow benchmark never serialises a whole row. The fold below
/// consumes outcomes in cell order, so rows and geomeans are identical for
/// every thread count (the wall-clock *columns* still vary run to run; the
/// modelled columns and the CSV do not).
pub fn table2_with(runner: &BatchRunner, scale: u64) -> Table2 {
    let model = CostModel::default();
    let cfg = RuntimeConfig::default();
    let suite = spec_suite(scale);
    let mut cells: Vec<(usize, Tool)> = Vec::new();
    for wi in 0..suite.len() {
        cells.push((wi, Tool::Native));
        for tool in COLUMNS {
            cells.push((wi, tool));
        }
    }
    let outcomes = runner.map(&cells, |_, &(wi, tool)| {
        let w = &suite[wi];
        run_tool(tool, &w.program, &w.inputs, &cfg)
    });

    let mut rows = Vec::new();
    let stride = 1 + COLUMNS.len();
    for (wi, w) in suite.iter().enumerate() {
        let native = &outcomes[wi * stride];
        let mut ratios = Vec::new();
        let mut wall_ratios = Vec::new();
        for (ti, tool) in COLUMNS.iter().enumerate() {
            let out = &outcomes[wi * stride + 1 + ti];
            debug_assert!(
                out.result.reports.is_empty(),
                "{}: {} raised reports",
                w.id,
                tool.name()
            );
            ratios.push(model.ratio_percent(*tool, native, out));
            wall_ratios.push(wall_ratio(native, out));
        }
        rows.push(Table2Row {
            id: w.id.clone(),
            native_units: model.native_units(native),
            native_wall_us: native.wall.as_secs_f64() * 1e6,
            ratios,
            wall_ratios,
        });
    }
    let geomeans = (0..COLUMNS.len())
        .map(|i| geomean(&rows.iter().map(|r| r.ratios[i]).collect::<Vec<_>>()))
        .collect();
    let wall_geomeans = (0..COLUMNS.len())
        .map(|i| geomean(&rows.iter().map(|r| r.wall_ratios[i]).collect::<Vec<_>>()))
        .collect();
    Table2 {
        rows,
        geomeans,
        wall_geomeans,
    }
}

fn wall_ratio(native: &RunOutcome, run: &RunOutcome) -> f64 {
    let n = native.wall.as_secs_f64().max(1e-9);
    100.0 * run.wall.as_secs_f64() / n
}

impl Table2 {
    /// Renders the table in the paper's layout (modelled ratios).
    pub fn render(&self) -> String {
        let mut headers = vec!["Programs".to_string(), "Native(u)".to_string()];
        headers.extend(COLUMNS.iter().map(|t| format!("{} R", t.name())));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut cells = vec![r.id.clone(), format!("{:.0}", r.native_units)];
            cells.extend(r.ratios.iter().map(|v| pct(*v)));
            t.row(cells);
        }
        t.separator();
        let mut cells = vec!["Geometric Means.".to_string(), String::new()];
        cells.extend(self.geomeans.iter().map(|v| pct(*v)));
        t.row(cells);
        t.render()
    }

    /// Renders the wall-clock variant of the table.
    pub fn render_wall(&self) -> String {
        let mut headers = vec!["Programs".to_string(), "Native(us)".to_string()];
        headers.extend(COLUMNS.iter().map(|t| format!("{} wall", t.name())));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut cells = vec![r.id.clone(), format!("{:.0}", r.native_wall_us)];
            cells.extend(r.wall_ratios.iter().map(|v| pct(*v)));
            t.row(cells);
        }
        t.separator();
        let mut cells = vec!["Geometric Means.".to_string(), String::new()];
        cells.extend(self.wall_geomeans.iter().map(|v| pct(*v)));
        t.row(cells);
        t.render()
    }
}

/// `repro table2` as a [`Study`]: one cell per SPEC-like workload, each
/// running the native baseline plus every column tool.
#[derive(Debug, Clone, Copy)]
pub struct Table2Entry;

impl Study for Table2Entry {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(spec_suite(opts.scale)
            .iter()
            .map(|w| w.id.clone())
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let model = CostModel::default();
        let cfg = RuntimeConfig::default();
        let suite = spec_suite(opts.scale);
        let w = &suite[index];
        let native = run_tool(Tool::Native, &w.program, &w.inputs, &cfg);
        let mut ratios = Vec::new();
        let mut wall_ratios = Vec::new();
        for tool in COLUMNS {
            let out = run_tool(tool, &w.program, &w.inputs, &cfg);
            debug_assert!(
                out.result.reports.is_empty(),
                "{}: {} raised reports",
                w.id,
                tool.name()
            );
            ratios.push(model.ratio_percent(tool, &native, &out));
            wall_ratios.push(wall_ratio(&native, &out));
        }
        Json::obj()
            .field("id", w.id.as_str())
            .field("native_units", model.native_units(&native))
            .field("native_wall_us", native.wall.as_secs_f64() * 1e6)
            .field("ratios", study::f64s(&ratios))
            .field("wall_ratios", study::f64s(&wall_ratios))
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let rows: Vec<Table2Row> = records
            .iter()
            .map(|r| Table2Row {
                id: study::req_str(&r.payload, "id").to_string(),
                native_units: study::req_f64(&r.payload, "native_units"),
                native_wall_us: study::req_f64(&r.payload, "native_wall_us"),
                ratios: study::req_f64s(&r.payload, "ratios"),
                wall_ratios: study::req_f64s(&r.payload, "wall_ratios"),
            })
            .collect();
        let geomeans = (0..COLUMNS.len())
            .map(|i| geomean(&rows.iter().map(|r| r.ratios[i]).collect::<Vec<_>>()))
            .collect();
        let wall_geomeans = (0..COLUMNS.len())
            .map(|i| geomean(&rows.iter().map(|r| r.wall_ratios[i]).collect::<Vec<_>>()))
            .collect();
        let t = Table2 {
            rows,
            geomeans,
            wall_geomeans,
        };
        let mut report = format!(
            "== Table 2: runtime overhead on the SPEC-like suite ==\n\
             (paper geomeans: GiantSan 146.04%, ASan 212.58%, ASan-- 174.89%, LFP 161.76%,\n \
             CacheOnly 175.63%, EliminationOnly 170.24%)\n\n{}\n",
            t.render()
        );
        if opts.wall {
            report.push_str(&format!(
                "\n-- wall-clock variant --\n{}\n",
                t.render_wall()
            ));
        }
        Ok(StudyOutput {
            report,
            artifacts: vec![("table2.csv".to_string(), crate::csv::table2_csv(&t))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let t = table2(1);
        assert_eq!(t.rows.len(), 24);
        let gm: std::collections::HashMap<&str, f64> = COLUMNS
            .iter()
            .zip(t.geomeans.iter())
            .map(|(tool, g)| (tool.name(), *g))
            .collect();
        // The paper's headline ordering: GiantSan < LFP, ASan-- < ASan, all
        // above native.
        assert!(gm["GiantSan"] < gm["ASan--"], "{gm:?}");
        assert!(gm["ASan--"] < gm["ASan"], "{gm:?}");
        assert!(gm["GiantSan"] < gm["LFP"], "{gm:?}");
        assert!(gm["GiantSan"] > 100.0);
        // Ablations fall between full GiantSan and ASan.
        assert!(gm["CacheOnly"] > gm["GiantSan"]);
        assert!(gm["EliminationOnly"] > gm["GiantSan"]);
        assert!(gm["CacheOnly"] < gm["ASan"]);
        assert!(gm["EliminationOnly"] < gm["ASan"]);
    }

    #[test]
    fn modelled_columns_are_thread_count_invariant() {
        let serial = table2_with(&BatchRunner::serial(), 1);
        let parallel = table2_with(&BatchRunner::new(4), 1);
        assert_eq!(
            crate::csv::table2_csv(&serial),
            crate::csv::table2_csv(&parallel),
            "modelled CSV must not depend on the thread count"
        );
        assert_eq!(serial.geomeans, parallel.geomeans);
    }

    #[test]
    fn render_contains_every_row() {
        let t = table2(1);
        let s = t.render();
        assert!(s.contains("500.perlbench_r"));
        assert!(s.contains("657.xz_s"));
        assert!(s.contains("Geometric Means."));
    }
}
