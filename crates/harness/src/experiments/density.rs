//! Supporting study: protection density.
//!
//! The paper's framing concept (§1, §2.3): *protection density* is the
//! number of bytes safeguarded by one piece of metadata. ASan's flat
//! encoding caps it at 8 bytes per shadow load; segment folding raises it to
//! `8·2^x`. This study measures the *achieved* density over the SPEC-like
//! suite — bytes of memory traffic validated per shadow byte actually
//! loaded — and the resulting metadata-traffic reduction.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::spec_suite;

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_tool, Tool};

/// One benchmark's density numbers.
#[derive(Debug, Clone)]
pub struct DensityRow {
    /// Benchmark id.
    pub id: String,
    /// Bytes of validated memory traffic (accesses + memop bytes).
    pub traffic_bytes: u64,
    /// Shadow bytes loaded by GiantSan.
    pub giantsan_loads: u64,
    /// Shadow bytes loaded by ASan.
    pub asan_loads: u64,
}

impl DensityRow {
    /// Achieved density (bytes validated per shadow load) for GiantSan.
    pub fn giantsan_density(&self) -> f64 {
        self.traffic_bytes as f64 / self.giantsan_loads.max(1) as f64
    }

    /// Achieved density for ASan (bounded by 8 from the encoding).
    pub fn asan_density(&self) -> f64 {
        self.traffic_bytes as f64 / self.asan_loads.max(1) as f64
    }

    /// Metadata-traffic reduction factor (ASan loads / GiantSan loads).
    pub fn reduction(&self) -> f64 {
        self.asan_loads as f64 / self.giantsan_loads.max(1) as f64
    }
}

/// The study's result.
#[derive(Debug, Clone)]
pub struct DensityStudy {
    /// Per-benchmark rows.
    pub rows: Vec<DensityRow>,
}

/// Measures achieved protection density over the SPEC-like suite.
pub fn density_study(scale: u64) -> DensityStudy {
    density_study_with(&BatchRunner::default(), scale)
}

/// [`density_study`] on an explicit runner (one cell per workload).
pub fn density_study_with(runner: &BatchRunner, scale: u64) -> DensityStudy {
    let cfg = RuntimeConfig::default();
    let suite = spec_suite(scale);
    let rows = runner.map(&suite, |_, w| {
        let gs = run_tool(Tool::GiantSan, &w.program, &w.inputs, &cfg);
        let asan = run_tool(Tool::Asan, &w.program, &w.inputs, &cfg);
        DensityRow {
            id: w.id.clone(),
            // native_work counts accesses and 8-byte memop units.
            traffic_bytes: gs.result.native_work * 8,
            giantsan_loads: gs.counters.shadow_loads,
            asan_loads: asan.counters.shadow_loads,
        }
    });
    DensityStudy { rows }
}

impl DensityStudy {
    /// Median metadata-traffic reduction across benchmarks.
    pub fn median_reduction(&self) -> f64 {
        let mut r: Vec<f64> = self.rows.iter().map(|x| x.reduction()).collect();
        r.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        r[r.len() / 2]
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Programs".into(),
            "traffic (B)".into(),
            "GiantSan loads".into(),
            "ASan loads".into(),
            "GiantSan B/load".into(),
            "ASan B/load".into(),
            "reduction".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.id.clone(),
                r.traffic_bytes.to_string(),
                r.giantsan_loads.to_string(),
                r.asan_loads.to_string(),
                format!("{:.1}", r.giantsan_density()),
                format!("{:.1}", r.asan_density()),
                format!("{:.1}x", r.reduction()),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nMedian metadata-traffic reduction: {:.1}x. ASan's density is capped at 8\n\
             bytes per load by the flat encoding; folding lifts the cap to 8*2^x.\n",
            self.median_reduction()
        ));
        s
    }
}

/// `repro density` as a [`Study`]: one cell per SPEC-like workload.
#[derive(Debug, Clone, Copy)]
pub struct DensityEntry;

impl Study for DensityEntry {
    fn name(&self) -> &'static str {
        "density"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(spec_suite(opts.scale)
            .iter()
            .map(|w| w.id.clone())
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let cfg = RuntimeConfig::default();
        let suite = spec_suite(opts.scale);
        let w = &suite[index];
        let gs = run_tool(Tool::GiantSan, &w.program, &w.inputs, &cfg);
        let asan = run_tool(Tool::Asan, &w.program, &w.inputs, &cfg);
        Json::obj()
            .field("id", w.id.as_str())
            .field("traffic_bytes", gs.result.native_work * 8)
            .field("giantsan_loads", gs.counters.shadow_loads)
            .field("asan_loads", asan.counters.shadow_loads)
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let rows: Vec<DensityRow> = records
            .iter()
            .map(|r| DensityRow {
                id: study::req_str(&r.payload, "id").to_string(),
                traffic_bytes: study::req_u64(&r.payload, "traffic_bytes"),
                giantsan_loads: study::req_u64(&r.payload, "giantsan_loads"),
                asan_loads: study::req_u64(&r.payload, "asan_loads"),
            })
            .collect();
        Ok(StudyOutput {
            report: format!(
                "== Supporting study: achieved protection density ==\n\n{}\n",
                DensityStudy { rows }.render()
            ),
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_exceeds_the_flat_cap() {
        let d = density_study(1);
        assert_eq!(d.rows.len(), 24);
        for r in &d.rows {
            assert!(
                r.asan_density() <= 8.0 + 1e-9,
                "{}: flat encoding cannot beat 8 B/load",
                r.id
            );
            assert!(
                r.giantsan_density() > r.asan_density(),
                "{}: folding must raise achieved density",
                r.id
            );
        }
        assert!(d.median_reduction() > 4.0, "{}", d.median_reduction());
    }
}
