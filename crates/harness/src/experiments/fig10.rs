//! Figure 10: proportion of memory instructions per optimisation category.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::spec_suite;

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_tool, Tool};

/// The dynamic check breakdown of one benchmark under GiantSan.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark id.
    pub id: String,
    /// Fraction of memory instructions that needed fast + slow checks.
    pub full_check: f64,
    /// Fraction where the fast check alone sufficed.
    pub fast_only: f64,
    /// Fraction admitted by the history cache.
    pub cached: f64,
    /// Fraction whose checks were eliminated (merged or promoted away).
    pub eliminated: f64,
}

/// The figure's data: one row per benchmark.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig10Row>,
    /// Mean fraction optimised (cached + eliminated), the paper's 52.56%.
    pub mean_optimised: f64,
}

/// Computes the breakdown by running every SPEC-like workload under full
/// GiantSan and attributing each dynamic memory instruction to the check
/// path that admitted it.
pub fn fig10(scale: u64) -> Fig10 {
    fig10_with(&BatchRunner::default(), scale)
}

/// [`fig10`] on an explicit runner (one cell per workload).
pub fn fig10_with(runner: &BatchRunner, scale: u64) -> Fig10 {
    let cfg = RuntimeConfig::default();
    let suite = spec_suite(scale);
    let rows = runner.map(&suite, |_, w| {
        let out = run_tool(Tool::GiantSan, &w.program, &w.inputs, &cfg);
        let c = &out.counters;
        // Dynamic memory instructions: accesses plus memop segments (the
        // same units ASan would have to check one by one).
        let m = out.result.native_work.max(1) as f64;
        let cached = (c.cache_hits + c.cache_updates) as f64;
        let fast = c.fast_checks as f64;
        let full = c.slow_checks as f64;
        let eliminated = (m - cached - fast - full).max(0.0);
        Fig10Row {
            id: w.id.clone(),
            full_check: full / m,
            fast_only: fast / m,
            cached: cached / m,
            eliminated: eliminated / m,
        }
    });
    let mean_optimised =
        rows.iter().map(|r| r.cached + r.eliminated).sum::<f64>() / rows.len().max(1) as f64;
    Fig10 {
        rows,
        mean_optimised,
    }
}

impl Fig10 {
    /// Renders the figure's data as a table plus a text bar chart.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Programs".into(),
            "FullCheck".into(),
            "FastOnly".into(),
            "Cached".into(),
            "Eliminated".into(),
            "bar (E=eliminated C=cached f=fast F=full)".into(),
        ]);
        for r in &self.rows {
            let bar = render_bar(r, 32);
            t.row(vec![
                r.id.clone(),
                format!("{:.1}%", r.full_check * 100.0),
                format!("{:.1}%", r.fast_only * 100.0),
                format!("{:.1}%", r.cached * 100.0),
                format!("{:.1}%", r.eliminated * 100.0),
                bar,
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nMean optimised (eliminated + cached): {:.2}% (paper: 52.56%)\n",
            self.mean_optimised * 100.0
        ));
        s
    }
}

#[allow(clippy::redundant_closure_call)]
fn render_bar(r: &Fig10Row, width: usize) -> String {
    let mut bar = String::new();
    let mut push = (|| {
        let mut emitted = 0usize;
        move |frac: f64, ch: char, bar: &mut String| {
            let n = ((frac * width as f64).round() as usize).min(width - emitted.min(width));
            for _ in 0..n {
                bar.push(ch);
            }
            emitted += n;
        }
    })();
    push(r.eliminated, 'E', &mut bar);
    push(r.cached, 'C', &mut bar);
    push(r.fast_only, 'f', &mut bar);
    push(r.full_check, 'F', &mut bar);
    bar
}

/// `repro fig10` as a [`Study`]: one cell per SPEC-like workload.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Entry;

impl Study for Fig10Entry {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(spec_suite(opts.scale)
            .iter()
            .map(|w| w.id.clone())
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let cfg = RuntimeConfig::default();
        let suite = spec_suite(opts.scale);
        let w = &suite[index];
        let out = run_tool(Tool::GiantSan, &w.program, &w.inputs, &cfg);
        let c = &out.counters;
        let m = out.result.native_work.max(1) as f64;
        let cached = (c.cache_hits + c.cache_updates) as f64;
        let fast = c.fast_checks as f64;
        let full = c.slow_checks as f64;
        let eliminated = (m - cached - fast - full).max(0.0);
        Json::obj()
            .field("id", w.id.as_str())
            .field("full_check", full / m)
            .field("fast_only", fast / m)
            .field("cached", cached / m)
            .field("eliminated", eliminated / m)
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let rows: Vec<Fig10Row> = records
            .iter()
            .map(|r| Fig10Row {
                id: study::req_str(&r.payload, "id").to_string(),
                full_check: study::req_f64(&r.payload, "full_check"),
                fast_only: study::req_f64(&r.payload, "fast_only"),
                cached: study::req_f64(&r.payload, "cached"),
                eliminated: study::req_f64(&r.payload, "eliminated"),
            })
            .collect();
        let mean_optimised =
            rows.iter().map(|r| r.cached + r.eliminated).sum::<f64>() / rows.len().max(1) as f64;
        let f = Fig10 {
            rows,
            mean_optimised,
        };
        Ok(StudyOutput {
            report: format!(
                "== Figure 10: checks per optimisation category (GiantSan) ==\n\n{}\n",
                f.render()
            ),
            artifacts: vec![("fig10.csv".to_string(), crate::csv::fig10_csv(&f))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_normalised() {
        let f = fig10(1);
        assert_eq!(f.rows.len(), 24);
        for r in &f.rows {
            let sum = r.full_check + r.fast_only + r.cached + r.eliminated;
            assert!(
                (0.9..=1.01).contains(&sum),
                "{}: fractions sum to {sum}",
                r.id
            );
        }
    }

    #[test]
    fn a_majority_of_checks_is_optimised() {
        // The paper reports 52.56% eliminated+cached on average.
        let f = fig10(1);
        assert!(
            f.mean_optimised > 0.35,
            "only {:.1}% optimised",
            f.mean_optimised * 100.0
        );
    }

    #[test]
    fn stencil_kernels_are_mostly_eliminated() {
        // lbm's checks live in bounded affine loops: like the paper's lbm,
        // the overwhelming majority should be eliminated or cached.
        let f = fig10(1);
        let lbm = f.rows.iter().find(|r| r.id == "519.lbm_r").unwrap();
        assert!(
            lbm.eliminated + lbm.cached > 0.8,
            "lbm optimised fraction {:.2}",
            lbm.eliminated + lbm.cached
        );
    }

    #[test]
    fn render_shows_bars() {
        let f = fig10(1);
        let s = f.render();
        assert!(s.contains("Mean optimised"));
        assert!(s.contains('E') || s.contains('C'));
    }
}
