//! Plan provenance study: what the planner decided, per pass and per site.
//!
//! Not a figure from the paper but an observability surface over its
//! compilation phase (§4.4): for each (workload × tool) cell this runs the
//! pass pipeline and records the full [`Analysis`] — per-site fates with the
//! deciding pass and its reasoning, plus per-pass visited / transformed /
//! eliminated counters and wall time. `repro plan` renders the tables and
//! exports both as CSV.

use giantsan_analysis::{analyze, Analysis, SiteFate};
use giantsan_ir::Program;
use giantsan_workloads::{figure8_program, spec_workload};

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::Tool;

/// Site fates in the summary table's column order.
pub const FATES: [SiteFate; 8] = [
    SiteFate::Direct,
    SiteFate::Anchored,
    SiteFate::MergeLeader,
    SiteFate::MergedAway,
    SiteFate::Promoted,
    SiteFate::Cached,
    SiteFate::MemIntrinsic,
    SiteFate::StaticallySafe,
];

/// The workloads under study: the paper's worked example plus three
/// SPEC-model programs with distinct planner behavior (stencil,
/// pointer-chasing, byte-stream) — the same set the golden plan snapshots
/// lock.
pub const WORKLOADS: [&str; 4] = ["figure8", "519.lbm_r", "505.mcf_r", "557.xz_r"];

/// One (workload × tool) cell: the full analysis result.
#[derive(Debug, Clone)]
pub struct PlanCell {
    /// Workload id.
    pub workload: &'static str,
    /// The analysed tool.
    pub tool: Tool,
    /// The pipeline's output: plan, fates, provenance, pass statistics.
    pub analysis: Analysis,
}

/// The study: one cell per (workload × tool).
#[derive(Debug, Clone)]
pub struct PlanStudy {
    /// All cells, workload-major in [`WORKLOADS`] / [`Tool::ALL`] order.
    pub cells: Vec<PlanCell>,
}

fn workload_program(id: &str, scale: u64) -> Program {
    if id == "figure8" {
        figure8_program((100 * scale) as i64).0
    } else {
        spec_workload(id, scale)
            .expect("known SPEC-model id")
            .program
    }
}

/// Runs the planner for every (workload × tool) cell.
pub fn plan_study(scale: u64) -> PlanStudy {
    plan_study_with(&BatchRunner::default(), scale)
}

/// [`plan_study`] on an explicit runner (one batch cell per pair).
pub fn plan_study_with(runner: &BatchRunner, scale: u64) -> PlanStudy {
    let mut jobs = Vec::new();
    for workload in WORKLOADS {
        for tool in Tool::ALL {
            jobs.push((workload, tool));
        }
    }
    let cells = runner.map(&jobs, |_, &(workload, tool)| {
        let program = workload_program(workload, scale);
        PlanCell {
            workload,
            tool,
            analysis: analyze(&program, &tool.profile()),
        }
    });
    PlanStudy { cells }
}

/// One cell's fate counts in [`FATES`] order.
fn fate_counts_of(cell: &PlanCell) -> Vec<u64> {
    let counts = cell.analysis.fate_counts();
    FATES
        .iter()
        .map(|f| counts.get(f).copied().unwrap_or(0) as u64)
        .collect()
}

/// One cell's detail section of the text report.
fn cell_block(cell: &PlanCell) -> String {
    format!(
        "\n== {} under {} ==\n{}{}",
        cell.workload,
        cell.tool.name(),
        cell.analysis.render_pass_stats(),
        cell.analysis.render_provenance()
    )
}

/// One cell's subtree of the JSON document (wall time excluded, so the
/// subtree is deterministic and campaign-shardable).
fn cell_json(cell: &PlanCell) -> Json {
    let sites: Vec<Json> = cell
        .analysis
        .fates
        .iter()
        .enumerate()
        .map(|(i, fate)| {
            let mut site = Json::obj()
                .field("site", i)
                .field("fate", format!("{fate:?}"));
            if let Some(p) = &cell.analysis.provenance[i] {
                site = site
                    .field("pass", p.pass.name())
                    .field("reason", p.reason.as_str());
            }
            site
        })
        .collect();
    let passes: Vec<Json> = cell
        .analysis
        .pass_stats
        .iter()
        .map(|p| {
            Json::obj()
                .field("pass", p.pass.name())
                .field("enabled", p.enabled)
                .field("visited", p.visited)
                .field("transformed", p.transformed)
                .field("eliminated", p.eliminated)
        })
        .collect();
    Json::obj()
        .field("workload", cell.workload)
        .field("tool", cell.tool.name())
        .field("sites", sites)
        .field("passes", passes)
}

/// The summary fate table over `(workload, tool, counts)` triples.
fn fate_table(rows: &[(String, String, Vec<u64>)]) -> String {
    let mut head = vec!["workload".to_string(), "tool".to_string()];
    head.extend(FATES.iter().map(|f| format!("{f:?}")));
    let mut t = TextTable::new(head);
    for (workload, tool, counts) in rows {
        let mut row = vec![workload.clone(), tool.clone()];
        row.extend(counts.iter().map(|c| c.to_string()));
        t.row(row);
    }
    t.render()
}

impl PlanStudy {
    /// Renders a fate-count summary across all cells, then per-cell pass
    /// statistics and the per-site provenance trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("-- site fates per (workload, tool) --\n");
        let rows: Vec<(String, String, Vec<u64>)> = self
            .cells
            .iter()
            .map(|c| {
                (
                    c.workload.to_string(),
                    c.tool.name().to_string(),
                    fate_counts_of(c),
                )
            })
            .collect();
        out.push_str(&fate_table(&rows));
        for cell in &self.cells {
            out.push_str(&cell_block(cell));
        }
        out
    }

    /// Machine-readable form of the study (`repro plan --format json`).
    ///
    /// Deterministic: per-pass wall time is deliberately excluded, so the
    /// document is byte-identical run to run and thread-count invariant.
    pub fn to_json(&self) -> String {
        let cells: Vec<Json> = self.cells.iter().map(cell_json).collect();
        Json::obj()
            .field("study", "plan")
            .field("cells", cells)
            .render()
    }
}

/// `repro plan` as a [`Study`]: one cell per (workload × tool), carrying the
/// pre-rendered text block, JSON subtree, and CSV rows so a merged campaign
/// reassembles every export byte-identically.
#[derive(Debug, Clone, Copy)]
pub struct PlanEntry;

impl Study for PlanEntry {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(WORKLOADS
            .iter()
            .flat_map(|w| Tool::ALL.iter().map(move |t| format!("{w}/{}", t.name())))
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let workload = WORKLOADS[index / Tool::ALL.len()];
        let tool = Tool::ALL[index % Tool::ALL.len()];
        let program = workload_program(workload, opts.scale);
        let cell = PlanCell {
            workload,
            tool,
            analysis: analyze(&program, &tool.profile()),
        };
        Json::obj()
            .field("workload", workload)
            .field("tool", tool.name())
            .field("fates", study::u64s(&fate_counts_of(&cell)))
            .field("block", cell_block(&cell))
            .field("json", cell_json(&cell))
            .field("prov", crate::csv::plan_provenance_rows(&cell))
            .field("passes", crate::csv::plan_passes_rows(&cell))
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut report =
            String::from("== Planner observability: per-pass statistics + site provenance ==\n\n");
        report.push_str("-- site fates per (workload, tool) --\n");
        let rows: Vec<(String, String, Vec<u64>)> = records
            .iter()
            .map(|r| {
                (
                    study::req_str(&r.payload, "workload").to_string(),
                    study::req_str(&r.payload, "tool").to_string(),
                    study::req_u64s(&r.payload, "fates"),
                )
            })
            .collect();
        report.push_str(&fate_table(&rows));
        for r in records {
            report.push_str(study::req_str(&r.payload, "block"));
        }
        report.push('\n');
        let cells: Vec<Json> = records
            .iter()
            .map(|r| study::req(&r.payload, "json").clone())
            .collect();
        let json = Json::obj()
            .field("study", "plan")
            .field("cells", cells)
            .render();
        let mut prov = String::from(crate::csv::PLAN_PROVENANCE_HEADER);
        let mut passes = String::from(crate::csv::PLAN_PASSES_HEADER);
        for r in records {
            prov.push_str(study::req_str(&r.payload, "prov"));
            passes.push_str(study::req_str(&r.payload, "passes"));
        }
        Ok(StudyOutput {
            report,
            json: Some(json),
            artifacts: vec![
                ("plan_provenance.csv".to_string(), prov),
                ("plan_passes.csv".to_string(), passes),
            ],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{PassId, SiteFate};

    #[test]
    fn study_covers_the_full_matrix() {
        let s = plan_study(1);
        assert_eq!(s.cells.len(), WORKLOADS.len() * Tool::ALL.len());
        // Every decided site carries provenance.
        for cell in &s.cells {
            for (i, fate) in cell.analysis.fates.iter().enumerate() {
                if cell.analysis.provenance[i].is_none() {
                    assert_eq!(
                        *fate,
                        SiteFate::Direct,
                        "{} / {}: site {i} has a non-default fate but no provenance",
                        cell.workload,
                        cell.tool.name()
                    );
                }
            }
        }
    }

    #[test]
    fn giantsan_pipeline_is_fully_enabled_and_attributed() {
        let s = plan_study(1);
        let cell = s
            .cells
            .iter()
            .find(|c| c.workload == "figure8" && c.tool == Tool::GiantSan)
            .unwrap();
        assert!(cell.analysis.pass_stats.iter().all(|p| p.enabled));
        let p0 = cell.analysis.provenance[0].as_ref().unwrap();
        assert_eq!(p0.pass, PassId::Promote);
    }

    #[test]
    fn asan_disables_every_optional_pass() {
        let s = plan_study(1);
        let cell = s
            .cells
            .iter()
            .find(|c| c.workload == "519.lbm_r" && c.tool == Tool::Asan)
            .unwrap();
        for p in &cell.analysis.pass_stats {
            if !p.pass.is_structural() {
                assert!(!p.enabled, "{:?} enabled for ASan", p.pass);
                assert_eq!(p.transformed, 0);
            }
        }
    }

    #[test]
    fn json_export_is_deterministic_and_complete() {
        let s = plan_study(1);
        let j = s.to_json();
        assert!(j.starts_with("{\n  \"study\": \"plan\""));
        assert_eq!(j.matches("\"workload\"").count(), s.cells.len());
        // One site object per fate, one pass object per pipeline stage.
        let total_sites: usize = s.cells.iter().map(|c| c.analysis.fates.len()).sum();
        assert_eq!(j.matches("\"fate\"").count(), total_sites);
        assert_eq!(j.matches("\"enabled\"").count(), s.cells.len() * 9);
        // Wall time is excluded, so the document is run-to-run identical.
        assert!(!j.contains("wall"));
        assert_eq!(j, plan_study(1).to_json());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn render_shows_tables_and_traces() {
        let s = plan_study(1);
        let r = s.render();
        assert!(r.contains("site fates per (workload, tool)"));
        assert!(r.contains("== figure8 under GiantSan =="));
        assert!(r.contains("const-prop"));
        assert!(r.contains("[promote"), "{r}");
    }
}
