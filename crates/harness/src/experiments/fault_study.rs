//! The fault-injection campaign behind `repro faults`.
//!
//! Sweeps a matrix of (tool × workload × fault kind × seed) cells, each run
//! under [`RecoveryPolicy::Recover`] with one deterministic fault armed via
//! a [`FaultPlan`], and classifies every cell as **detected** (a buggy
//! workload still reported despite the fault), **recovered** (a safe
//! workload survived the fault to completion), **missed** (the fault masked
//! an injected bug), or **crashed** (the run aborted — OOM, step budget,
//! simulated hardware fault — or the harness cell panicked and was
//! quarantined by the batch engine).
//!
//! Everything is derived from the campaign seed with `splitmix64`, so the
//! per-cell verdict list — and therefore [`FaultStudy::digest`] — is
//! identical at any `--threads N`. CI locks the digest against a committed
//! golden (`tests/golden/faults_digest.txt`).

use giantsan_runtime::{RecoveryPolicy, RuntimeConfig};
use giantsan_workloads::fuzz::InjectedBug;

use crate::batch::BatchRunner;
use crate::faults::{splitmix64, FaultKind, FaultPlan};
use crate::json::Json;
use crate::matrix::{Cell, CellWorkload};
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::Tool;

/// The fault-kind axis of the campaign matrix.
pub const FAULT_AXES: [&str; 5] = [
    "bit-flip",
    "fold-downgrade",
    "alloc-oom",
    "quarantine-exhaustion",
    "step-budget",
];

/// One cell of the fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCell {
    /// Tool under test.
    pub tool: Tool,
    /// Workload (fuzz corpus: one safe shape plus each bug geometry).
    pub workload: CellWorkload,
    /// Index into [`FAULT_AXES`].
    pub fault_axis: usize,
    /// Per-cell seed (combined with the campaign seed).
    pub seed: u64,
}

impl FaultCell {
    /// Stable, human-readable cell id.
    pub fn label(&self) -> String {
        let w = match &self.workload {
            CellWorkload::FuzzSafe => "fuzz-safe".to_string(),
            CellWorkload::FuzzBuggy(bug) => format!("fuzz-{}", bug.name()),
            other => format!("{other:?}"),
        };
        format!(
            "{}/{w}/{}/r{}",
            self.tool.name(),
            FAULT_AXES[self.fault_axis],
            self.seed
        )
    }

    /// Whether the workload carries an injected bug a sanitizer should find.
    pub fn is_buggy(&self) -> bool {
        matches!(self.workload, CellWorkload::FuzzBuggy(_))
    }

    /// Derives this cell's fault plan from the campaign seed.
    ///
    /// Every parameter (alloc ordinal, byte offset, bit) unfolds from
    /// `splitmix64` seeded by the campaign seed and the cell's own label, so
    /// the schedule owes nothing to scheduling or thread count.
    pub fn plan(&self, campaign_seed: u64) -> FaultPlan {
        let mut state = campaign_seed ^ fnv1a(self.label().as_bytes());
        let r1 = splitmix64(&mut state);
        let r2 = splitmix64(&mut state);
        let r3 = splitmix64(&mut state);
        let plan = FaultPlan::new(campaign_seed);
        match FAULT_AXES[self.fault_axis] {
            "bit-flip" => plan.with_event(
                FaultKind::ShadowBitFlip {
                    byte_offset: r1 % 64,
                    bit: (r2 % 8) as u8,
                },
                r3 % 6,
            ),
            "fold-downgrade" => plan.with_event(
                FaultKind::FoldDowngrade {
                    byte_offset: r1 % 256,
                },
                r2 % 6,
            ),
            "alloc-oom" => plan.with_event(FaultKind::AllocOom, 1 + r1 % 8),
            "quarantine-exhaustion" => {
                plan.with_event(FaultKind::QuarantineExhaustion { cap: 64 + r1 % 192 }, 0)
            }
            "step-budget" => plan.with_event(
                FaultKind::StepBudget {
                    max_steps: 2_000 + r1 % 8_000,
                },
                0,
            ),
            other => unreachable!("unknown fault axis {other}"),
        }
    }

    /// Runs the cell under recover mode with its fault armed.
    pub fn run(&self, campaign_seed: u64) -> FaultCellOutcome {
        let cfg = RuntimeConfig::small()
            .to_builder()
            .recovery(RecoveryPolicy::recover())
            .build();
        let cell = Cell {
            tool: self.tool,
            workload: self.workload.clone(),
            size: 0,
            seed: self.seed,
        };
        let (program, inputs) = cell.materialize();
        let out = self
            .tool
            .builder()
            .config(cfg)
            .faults(self.plan(campaign_seed))
            .spec()
            .run(&program, &inputs);
        let verdict = match out.result.termination {
            giantsan_ir::Termination::Crashed { .. } | giantsan_ir::Termination::StepLimit => {
                Verdict::Crashed
            }
            giantsan_ir::Termination::Finished | giantsan_ir::Termination::Halted => {
                if self.is_buggy() {
                    if out.result.reports.is_empty() {
                        Verdict::Missed
                    } else {
                        Verdict::Detected
                    }
                } else {
                    Verdict::Recovered
                }
            }
        };
        FaultCellOutcome {
            label: self.label(),
            verdict,
            result_digest: out.result.digest(),
            errors_recovered: out.counters.errors_recovered,
            errors_suppressed: out.counters.errors_suppressed,
        }
    }
}

/// Per-cell classification of a fault-campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Buggy workload, still reported despite the fault.
    Detected,
    /// Safe workload, ran to completion under the fault.
    Recovered,
    /// Buggy workload, the fault masked the bug (documented miss).
    Missed,
    /// The run aborted, or the harness cell panicked and was quarantined.
    Crashed,
}

impl Verdict {
    /// Short stable name (digest and CSV field).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Detected => "detected",
            Verdict::Recovered => "recovered",
            Verdict::Missed => "missed",
            Verdict::Crashed => "crashed",
        }
    }

    /// Inverse of [`Verdict::name`] — used when campaign checkpoints are
    /// read back from disk.
    pub fn parse(name: &str) -> Option<Verdict> {
        match name {
            "detected" => Some(Verdict::Detected),
            "recovered" => Some(Verdict::Recovered),
            "missed" => Some(Verdict::Missed),
            "crashed" => Some(Verdict::Crashed),
            _ => None,
        }
    }
}

/// Deterministic residue of one fault cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCellOutcome {
    /// The cell's [`FaultCell::label`].
    pub label: String,
    /// The classification.
    pub verdict: Verdict,
    /// [`giantsan_ir::ExecResult::digest`] of the run.
    pub result_digest: u64,
    /// Recover-mode counters of the run.
    pub errors_recovered: u64,
    /// Reports dropped by dedup/rate limits.
    pub errors_suppressed: u64,
}

/// The whole campaign: per-cell outcomes plus the summary digest.
#[derive(Debug, Clone)]
pub struct FaultStudy {
    /// Campaign seed the schedule unfolded from.
    pub seed: u64,
    /// Per-cell outcomes, in matrix order.
    pub outcomes: Vec<FaultCellOutcome>,
    /// Cells the batch engine quarantined (harness panics). The campaign's
    /// promise is that this stays 0.
    pub harness_panics: usize,
}

/// The campaign matrix: every tool × fuzz workload × fault axis × seed.
pub fn fault_matrix(seeds: u64) -> Vec<FaultCell> {
    let mut cells = Vec::new();
    for tool in Tool::ALL {
        let mut workloads = vec![CellWorkload::FuzzSafe];
        workloads.extend(InjectedBug::ALL.into_iter().map(CellWorkload::FuzzBuggy));
        for workload in workloads {
            for fault_axis in 0..FAULT_AXES.len() {
                for seed in 0..seeds {
                    cells.push(FaultCell {
                        tool,
                        workload: workload.clone(),
                        fault_axis,
                        seed,
                    });
                }
            }
        }
    }
    cells
}

/// Runs the campaign under `runner` with panic isolation.
///
/// A quarantined (panicking) cell is recorded as [`Verdict::Crashed`] with a
/// synthetic outcome, so the study always covers the full matrix.
pub fn fault_study_with(runner: &BatchRunner, campaign_seed: u64, seeds: u64) -> FaultStudy {
    let cells = fault_matrix(seeds);
    let batch = runner.try_map(&cells, |_, cell| cell.run(campaign_seed));
    let harness_panics = batch.summary.quarantined();
    let outcomes = batch
        .results
        .into_iter()
        .zip(&cells)
        .map(|(r, cell)| {
            r.unwrap_or_else(|| FaultCellOutcome {
                label: cell.label(),
                verdict: Verdict::Crashed,
                result_digest: 0,
                errors_recovered: 0,
                errors_suppressed: 0,
            })
        })
        .collect();
    FaultStudy {
        seed: campaign_seed,
        outcomes,
        harness_panics,
    }
}

/// Runs the campaign with the default matrix breadth (5 seeds ⇒ 1050 cells).
pub fn fault_study(campaign_seed: u64) -> FaultStudy {
    fault_study_with(&BatchRunner::auto(), campaign_seed, 5)
}

impl FaultStudy {
    /// FNV-1a digest over every cell's label, verdict, and result digest —
    /// the quantity CI compares against the committed golden.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&self.seed.to_le_bytes());
        for o in &self.outcomes {
            eat(o.label.as_bytes());
            eat(o.verdict.name().as_bytes());
            eat(&o.result_digest.to_le_bytes());
        }
        h
    }

    /// Verdict counts for one tool (detected, recovered, missed, crashed).
    fn counts_for(&self, tool: Tool) -> [u64; 4] {
        let prefix = format!("{}/", tool.name());
        let mut counts = [0u64; 4];
        for o in self
            .outcomes
            .iter()
            .filter(|o| o.label.starts_with(&prefix))
        {
            counts[o.verdict as usize] += 1;
        }
        counts
    }

    /// Renders the per-tool verdict table plus the campaign digest.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            [
                "tool",
                "detected",
                "recovered",
                "missed",
                "crashed",
                "total",
            ]
            .map(String::from)
            .to_vec(),
        );
        let mut totals = [0u64; 4];
        for tool in Tool::ALL {
            let c = self.counts_for(tool);
            for (tot, v) in totals.iter_mut().zip(c) {
                *tot += v;
            }
            t.row(vec![
                tool.name().to_string(),
                c[0].to_string(),
                c[1].to_string(),
                c[2].to_string(),
                c[3].to_string(),
                c.iter().sum::<u64>().to_string(),
            ]);
        }
        t.separator();
        t.row(vec![
            "all".to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            totals.iter().sum::<u64>().to_string(),
        ]);
        format!(
            "{}\ncells: {}  harness panics: {}\nsummary digest: {:#018x}\n",
            t.render(),
            self.outcomes.len(),
            self.harness_panics,
            self.digest()
        )
    }

    /// The one-line digest artefact CI diffs against the committed golden.
    pub fn digest_artifact(&self) -> String {
        format!("{:#018x}\n", self.digest())
    }

    /// Machine-readable form of the campaign (`repro faults --format json`).
    ///
    /// Carries the same deterministic residue as the CSV — label, verdict,
    /// result digest, recovery counters per cell — plus the campaign seed
    /// and summary digest, so the document is identical at any `--threads`.
    pub fn to_json(&self) -> String {
        let outcomes: Vec<Json> = self
            .outcomes
            .iter()
            .map(|o| {
                Json::obj()
                    .field("cell", o.label.as_str())
                    .field("verdict", o.verdict.name())
                    .field("result_digest", Json::hex(o.result_digest))
                    .field("errors_recovered", o.errors_recovered)
                    .field("errors_suppressed", o.errors_suppressed)
            })
            .collect();
        Json::obj()
            .field("study", "faults")
            .field("seed", Json::hex(self.seed))
            .field("digest", Json::hex(self.digest()))
            .field("harness_panics", self.harness_panics)
            .field("outcomes", outcomes)
            .render()
    }
}

/// FNV-1a over raw bytes (label hashing for schedule derivation) — the
/// canonical definition now lives in [`crate::matrix`].
pub use crate::matrix::fnv1a;

/// Matrix breadth `repro faults` has always used (5 seeds ⇒ 1050 cells).
const FAULT_SEEDS: u64 = 5;

/// `repro faults` as a [`Study`]: one cell per fault-matrix entry. The
/// campaign seed is `--seed`; a panicking cell degrades to the same
/// synthetic `crashed` outcome [`fault_study_with`] records, so sharded and
/// monolithic digests agree even in the presence of harness panics.
#[derive(Debug, Clone, Copy)]
pub struct FaultsEntry;

impl Study for FaultsEntry {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(fault_matrix(FAULT_SEEDS)
            .iter()
            .map(FaultCell::label)
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let cells = fault_matrix(FAULT_SEEDS);
        let o = cells[index].run(opts.seed);
        Json::obj()
            .field("verdict", o.verdict.name())
            .field("result_digest", Json::hex(o.result_digest))
            .field("errors_recovered", o.errors_recovered)
            .field("errors_suppressed", o.errors_suppressed)
    }

    fn placeholder(&self, _opts: &StudyOpts, _index: usize) -> Option<Json> {
        Some(
            Json::obj()
                .field("verdict", Verdict::Crashed.name())
                .field("result_digest", Json::hex(0))
                .field("errors_recovered", 0u64)
                .field("errors_suppressed", 0u64)
                .field("panicked", true),
        )
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut harness_panics = 0usize;
        let outcomes: Vec<FaultCellOutcome> = records
            .iter()
            .map(|r| {
                if let Some(true) = r.payload.get("panicked").and_then(Json::as_bool) {
                    harness_panics += 1;
                }
                let verdict = study::req_str(&r.payload, "verdict");
                Ok(FaultCellOutcome {
                    label: r.label.clone(),
                    verdict: Verdict::parse(verdict)
                        .ok_or_else(|| format!("unknown verdict `{verdict}`"))?,
                    result_digest: study::req_hex(&r.payload, "result_digest"),
                    errors_recovered: study::req_u64(&r.payload, "errors_recovered"),
                    errors_suppressed: study::req_u64(&r.payload, "errors_suppressed"),
                })
            })
            .collect::<Result<_, String>>()?;
        let s = FaultStudy {
            seed: opts.seed,
            outcomes,
            harness_panics,
        };
        Ok(StudyOutput {
            report: format!(
                "== Fault-injection campaign (recover mode, seed {:#x}) ==\n\n{}\n",
                opts.seed,
                s.render()
            ),
            json: Some(s.to_json()),
            artifacts: vec![
                ("faults.csv".to_string(), crate::csv::faults_csv(&s)),
                ("faults_digest.txt".to_string(), s.digest_artifact()),
            ],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_a_thousand_cells_at_default_breadth() {
        assert!(fault_matrix(5).len() >= 1000);
    }

    #[test]
    fn json_export_carries_the_digested_residue() {
        let s = fault_study_with(&BatchRunner::serial(), 7, 1);
        let j = s.to_json();
        assert!(j.starts_with("{\n  \"study\": \"faults\""));
        assert!(j.contains(&format!("\"digest\": \"{:#018x}\"", s.digest())));
        assert_eq!(j.matches("\"verdict\"").count(), s.outcomes.len());
        assert!(j.contains("\"harness_panics\": 0"));
        // Thread-count invariant, like the digest itself.
        assert_eq!(j, fault_study_with(&BatchRunner::new(4), 7, 1).to_json());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let cells = fault_matrix(1);
        for c in cells.iter().take(20) {
            assert_eq!(c.plan(7), c.plan(7));
            assert_ne!(
                c.plan(7),
                c.plan(8),
                "campaign seed must matter: {}",
                c.label()
            );
        }
    }

    #[test]
    fn small_campaign_is_thread_invariant_and_panic_free() {
        let serial = fault_study_with(&BatchRunner::serial(), 0xdead, 1);
        let parallel = fault_study_with(&BatchRunner::new(4), 0xdead, 1);
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.harness_panics, 0);
        assert_eq!(parallel.harness_panics, 0);
        // The campaign exercises every verdict bucket being possible; at
        // minimum, buggy cells under most tools stay detected.
        assert!(serial
            .outcomes
            .iter()
            .any(|o| o.verdict == Verdict::Detected));
        assert!(
            serial
                .outcomes
                .iter()
                .any(|o| o.verdict == Verdict::Crashed),
            "OOM/step-budget cells abort"
        );
    }
}
