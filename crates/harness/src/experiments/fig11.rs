//! Figure 11: traversal-pattern cost for Native / GiantSan / ASan.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::{figure11_sizes, traversal_program, Pattern};

use crate::batch::BatchRunner;
use crate::cost::CostModel;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_tool, Tool};

/// Tools plotted in the figure.
pub const SERIES: [Tool; 3] = [Tool::Native, Tool::GiantSan, Tool::Asan];

/// One (pattern, size) sample.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Buffer size in bytes.
    pub size: u64,
    /// Modelled time units per tool, in [`SERIES`] order.
    pub units: Vec<f64>,
    /// Wall-clock microseconds per tool.
    pub wall_us: Vec<f64>,
}

/// One pattern's series.
#[derive(Debug, Clone)]
pub struct Fig11Series {
    /// Traversal pattern.
    pub pattern: Pattern,
    /// Samples across buffer sizes.
    pub points: Vec<Fig11Point>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// One series per pattern (forward, random, reverse).
    pub series: Vec<Fig11Series>,
}

/// Runs the traversal study; `rounds` repeats each traversal to steady the
/// wall-clock numbers (the paper repeats 100×).
pub fn fig11(rounds: u64) -> Fig11 {
    fig11_with(&BatchRunner::default(), rounds)
}

/// [`fig11`] on an explicit runner (one cell per (pattern, size) sample).
pub fn fig11_with(runner: &BatchRunner, rounds: u64) -> Fig11 {
    let model = CostModel::default();
    let cfg = RuntimeConfig::default();
    let sizes = figure11_sizes();
    let cells: Vec<(Pattern, u64)> = Pattern::ALL
        .iter()
        .flat_map(|&p| sizes.iter().map(move |&s| (p, s)))
        .collect();
    let points = runner.map(&cells, |_, &(pattern, size)| {
        let (prog, inputs) = traversal_program(pattern, size, rounds);
        let mut units = Vec::new();
        let mut wall_us = Vec::new();
        for tool in SERIES {
            let out = run_tool(tool, &prog, &inputs, &cfg);
            assert!(
                out.result.reports.is_empty(),
                "{pattern:?}/{size}: {} raised reports",
                tool.name()
            );
            units.push(model.native_units(&out) + model.extra_units(tool, &out.counters));
            wall_us.push(out.wall.as_secs_f64() * 1e6);
        }
        Fig11Point {
            size,
            units,
            wall_us,
        }
    });
    let series = Pattern::ALL
        .iter()
        .enumerate()
        .map(|(pi, &pattern)| Fig11Series {
            pattern,
            points: points[pi * sizes.len()..(pi + 1) * sizes.len()].to_vec(),
        })
        .collect();
    Fig11 { series }
}

impl Fig11 {
    /// Mean modelled GiantSan/ASan cost ratio for one pattern (the paper's
    /// 1.48× faster random, 1.07× faster forward, 1.39× slower reverse).
    pub fn speedup_vs_asan(&self, pattern: Pattern) -> f64 {
        let s = self
            .series
            .iter()
            .find(|s| s.pattern == pattern)
            .expect("pattern missing");
        let ratios: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.units[2] / p.units[1]) // ASan / GiantSan
            .collect();
        crate::cost::geomean(&ratios.iter().map(|r| r * 100.0).collect::<Vec<_>>()) / 100.0
    }

    /// Renders all three panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            out.push_str(&format!("\n({}) traversal\n", s.pattern.name()));
            let mut headers = vec!["Buffer".to_string()];
            headers.extend(SERIES.iter().map(|t| format!("{} (units)", t.name())));
            headers.extend(SERIES.iter().map(|t| format!("{} (us)", t.name())));
            let mut t = TextTable::new(headers);
            for p in &s.points {
                let mut cells = vec![format!("{} KB", p.size / 1024)];
                cells.extend(p.units.iter().map(|u| format!("{u:.0}")));
                cells.extend(p.wall_us.iter().map(|u| format!("{u:.0}")));
                t.row(cells);
            }
            out.push_str(&t.render());
            out.push_str(&format!(
                "GiantSan vs ASan (modelled): {:.2}x\n",
                self.speedup_vs_asan(s.pattern)
            ));
        }
        out
    }
}

/// `repro fig11` as a [`Study`]: one cell per (pattern, size) sample,
/// pattern-major like the figure's panels.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Entry;

impl Study for Fig11Entry {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        let sizes = figure11_sizes();
        Ok(Pattern::ALL
            .iter()
            .flat_map(|p| sizes.iter().map(move |s| format!("{}/{s}", p.name())))
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let model = CostModel::default();
        let cfg = RuntimeConfig::default();
        let sizes = figure11_sizes();
        let pattern = Pattern::ALL[index / sizes.len()];
        let size = sizes[index % sizes.len()];
        let (prog, inputs) = traversal_program(pattern, size, opts.rounds);
        let mut units = Vec::new();
        let mut wall_us = Vec::new();
        for tool in SERIES {
            let out = run_tool(tool, &prog, &inputs, &cfg);
            assert!(
                out.result.reports.is_empty(),
                "{pattern:?}/{size}: {} raised reports",
                tool.name()
            );
            units.push(model.native_units(&out) + model.extra_units(tool, &out.counters));
            wall_us.push(out.wall.as_secs_f64() * 1e6);
        }
        Json::obj()
            .field("pattern", pattern.name())
            .field("size", size)
            .field("units", study::f64s(&units))
            .field("wall_us", study::f64s(&wall_us))
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let sizes = figure11_sizes();
        let points: Vec<Fig11Point> = records
            .iter()
            .map(|r| Fig11Point {
                size: study::req_u64(&r.payload, "size"),
                units: study::req_f64s(&r.payload, "units"),
                wall_us: study::req_f64s(&r.payload, "wall_us"),
            })
            .collect();
        let series = Pattern::ALL
            .iter()
            .enumerate()
            .map(|(pi, &pattern)| Fig11Series {
                pattern,
                points: points[pi * sizes.len()..(pi + 1) * sizes.len()].to_vec(),
            })
            .collect();
        let f = Fig11 { series };
        Ok(StudyOutput {
            report: format!(
                "== Figure 11: traversal patterns ==\n(paper: GiantSan 1.48x faster random, \
                 1.07x faster forward, 1.39x slower reverse)\n{}\n",
                f.render()
            ),
            artifacts: vec![("fig11.csv".to_string(), crate::csv::fig11_csv(&f))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_section_5_4() {
        // The paper's wall-clock ratios are 1.48× (random), 1.07× (forward),
        // 0.72× (reverse, i.e. 1.39× slower). A locality-free cost model
        // cannot reproduce the random-vs-forward gap (it comes from cache
        // misses on ASan's shadow loads), but the signs must match: GiantSan
        // wins both cache-friendly patterns and loses the reverse one.
        let f = fig11(1);
        let forward = f.speedup_vs_asan(Pattern::Forward);
        let random = f.speedup_vs_asan(Pattern::Random);
        let reverse = f.speedup_vs_asan(Pattern::Reverse);
        assert!(forward > 1.0, "forward {forward:.2}");
        assert!(random > 1.0, "random {random:.2}");
        assert!(
            reverse < 1.0,
            "reverse must be GiantSan's weak spot: {reverse:.2}"
        );
    }

    #[test]
    fn costs_grow_with_buffer_size() {
        let f = fig11(1);
        for s in &f.series {
            for w in s.points.windows(2) {
                assert!(
                    w[1].units[1] > w[0].units[1],
                    "{:?}: non-monotonic",
                    s.pattern
                );
            }
        }
    }
}
