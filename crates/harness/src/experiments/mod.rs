//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod alloc;
pub mod density;
pub mod echo;
pub mod fault_study;
pub mod fig10;
pub mod fig11;
pub mod memory;
pub mod plan;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod trace;
