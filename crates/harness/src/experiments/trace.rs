//! The end-to-end telemetry study behind `repro trace`.
//!
//! One (workload × tool) pair is run as a small cell matrix with the full
//! telemetry pipeline attached: the planner runs under
//! [`analyze_recorded`] (per-pass events), every cell runs under a
//! [`TraceRecorder`] (check / quasi-bound / allocator / containment events
//! plus the sampling histograms), and the batch engine records its
//! scheduling spans into a [`TraceSink`]. The study then exports all three
//! formats the telemetry crate supports:
//!
//! * **JSON Lines** — the deterministic data-plane event stream, sorted by
//!   `(cell, seq)`; its FNV-1a digest is invariant under thread count.
//! * **Chrome `trace_event`** — the presentation plane (worker tracks, cell
//!   slices, wall-clock), loadable in Perfetto / `chrome://tracing`.
//! * **Prometheus text exposition** — final counters, log2 histograms, and
//!   the per-site check-path mix.
//!
//! [`TraceStudy::hotspots`] ranks sites by slow-path share, which on the
//! paper's Figure 8 example singles out the data-dependent `y[j]` store
//! (history-cache refreshes) and the hoisted pre-header / loop-final region
//! checks — exactly the sites the paper's optimisation story is about.

use std::sync::Arc;

use giantsan_analysis::{analyze, analyze_recorded};
use giantsan_ir::{CheckPlan, Program};
use giantsan_runtime::Counters;
use giantsan_telemetry::export::{
    events_jsonl, jsonl_digest, prometheus, text_digest, ChromeTrace,
};
use giantsan_telemetry::{
    site_label, Event, Histograms, Log2Hist, PathMix, SpanKind, SpanSet, TraceRecorder,
};
use giantsan_workloads::{figure8_program, spec_workload};

use crate::batch::{BatchRunner, BatchTrace, TraceSink};
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::{pct, TextTable};
use crate::tool::Tool;

/// Number of batch cells a trace study runs (cell ids `1..=DEFAULT_CELLS`;
/// cell 0 carries the planner's per-pass events).
pub const DEFAULT_CELLS: u32 = 4;

/// Data-plane summary of one executed cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// Cell id (1-based; 0 is the planning cell).
    pub cell: u32,
    /// [`giantsan_ir::ExecResult::digest`] of the run.
    pub result_digest: u64,
    /// Executed statement count.
    pub steps: u64,
    /// Error reports raised.
    pub reports: usize,
    /// Events this cell emitted (before any cap).
    pub events: usize,
    /// The cell's sanitizer counters.
    pub counters: Counters,
}

/// Everything one `repro trace` invocation collected.
#[derive(Debug, Clone)]
pub struct TraceStudy {
    /// Workload id (`figure8` or a SPEC row id).
    pub workload: String,
    /// The traced tool.
    pub tool: Tool,
    /// Shadow-kernel backend the cells executed under (e.g. `simd-avx2`).
    ///
    /// Presentation metadata only: the data-plane events and their digest
    /// are kernel-invariant by the backend contract, so this appears in the
    /// Prometheus exposition and schedule dumps but never in the JSONL.
    pub kernel: &'static str,
    /// Worker-pool size the cells were scheduled across.
    pub threads: usize,
    /// Merged data-plane event stream, sorted by `(cell, seq)`.
    pub events: Vec<Event>,
    /// Merged sampling histograms (all cells).
    pub hists: Histograms,
    /// Events past the per-cell recorder caps (sampled, not buffered).
    pub dropped: u64,
    /// Summed sanitizer counters across cells.
    pub counters: Counters,
    /// Per-cell run summaries, in cell order.
    pub runs: Vec<TraceRun>,
    /// Presentation-plane scheduling spans (never digested).
    pub schedule: BatchTrace,
}

/// Builds the program under study. `figure8` is the paper's worked example;
/// anything else is looked up as a SPEC-model row id.
fn workload_program(id: &str, scale: u64) -> Option<(Program, Vec<i64>)> {
    if id == "figure8" {
        Some(figure8_program((64 * scale) as i64))
    } else {
        spec_workload(id, scale).map(|w| (w.program, w.inputs))
    }
}

/// Per-cell inputs: figure8 scales its trip count with the cell id (so the
/// cells exercise different convergence lengths); SPEC workloads replay
/// their fixed input tape in every cell.
fn cell_inputs(id: &str, scale: u64, cell: u32, base: &[i64]) -> Vec<i64> {
    if id == "figure8" {
        vec![(64 * scale * cell as u64) as i64]
    } else {
        base.to_vec()
    }
}

/// Runs the study on a default (auto-sized) runner.
pub fn trace_study(workload: &str, tool: Tool, scale: u64) -> Result<TraceStudy, String> {
    trace_study_with(&BatchRunner::default(), workload, tool, scale)
}

/// [`trace_study`] on an explicit runner.
///
/// The data plane (events, histograms, digest) is invariant under the
/// runner's thread count; only [`TraceStudy::schedule`] — the presentation
/// plane — differs between serial and parallel runs.
pub fn trace_study_with(
    runner: &BatchRunner,
    workload: &str,
    tool: Tool,
    scale: u64,
) -> Result<TraceStudy, String> {
    let (program, base_inputs) = workload_program(workload, scale).ok_or_else(|| {
        format!("unknown workload `{workload}` (figure8 or a SPEC row id like 519.lbm_r)")
    })?;
    let spec = tool.builder().spec();

    // Cell 0 of the data plane: the planner's per-pass events.
    let mut plan_rec = TraceRecorder::for_cell(0);
    let plan = match tool {
        Tool::Native => CheckPlan::none(&program),
        _ => analyze_recorded(&program, &spec.profile(), &mut plan_rec).plan,
    };

    // Presentation plane: a fresh sink snapshots this study's scheduling.
    let sink = TraceSink::new();
    let runner = runner.clone().with_sink(Arc::clone(&sink));

    let cells: Vec<u32> = (1..=DEFAULT_CELLS).collect();
    let results = runner.map(&cells, |_, &cell| {
        let inputs = cell_inputs(workload, scale, cell, &base_inputs);
        let mut rec = TraceRecorder::for_cell(cell);
        let out = spec.run_planned_recorded(&program, &plan, &inputs, &mut rec);
        (out, rec)
    });

    let (mut events, mut hists, mut dropped) = plan_rec.finish();
    let mut counters = Counters::default();
    let mut runs = Vec::new();
    for (out, rec) in results {
        let cell = rec.cell();
        let (ev, h, d) = rec.finish();
        runs.push(TraceRun {
            cell,
            result_digest: out.result.digest(),
            steps: out.result.steps,
            reports: out.result.reports.len(),
            events: ev.len(),
            counters: out.counters,
        });
        events.extend(ev);
        hists.merge(&h);
        dropped += d;
        counters += &out.counters;
    }
    events.sort_by_key(|e| (e.cell, e.seq));

    Ok(TraceStudy {
        workload: workload.to_string(),
        tool,
        kernel: giantsan_shadow::kernel::active().name(),
        threads: runner.threads(),
        events,
        hists,
        dropped,
        counters,
        runs,
        schedule: sink.take(),
    })
}

impl TraceStudy {
    /// The deterministic JSONL event stream.
    pub fn events_jsonl(&self) -> String {
        events_jsonl(&self.events)
    }

    /// FNV-1a digest of the JSONL bytes — the thread-invariant fingerprint
    /// CI diffs serial vs parallel.
    pub fn digest(&self) -> u64 {
        jsonl_digest(&self.events)
    }

    /// The one-line digest artefact (`trace_digest.txt`).
    pub fn digest_artifact(&self) -> String {
        format!("{:#018x}\n", self.digest())
    }

    /// The Chrome `trace_event` JSON: the batch engine's scheduling spans
    /// plus a final counter sample carrying the data-plane path totals.
    pub fn chrome_trace(&self) -> String {
        chrome_with(
            &self.schedule,
            &format!(
                "repro trace: {} under {} [kernel={}]",
                self.workload,
                self.tool.name(),
                self.kernel
            ),
            &self.hists,
        )
    }

    /// The Prometheus text exposition: summed sanitizer counters, the four
    /// log2 histograms, the per-site path mix, and the dropped-event count.
    pub fn prometheus(&self) -> String {
        let counters: Vec<(&str, u64)> = self.counters.fields().collect();
        prometheus(self.kernel, &counters, &self.hists, self.dropped)
    }

    /// The top `n` sites by slow-path share (ties broken by visit volume,
    /// then site id). Sentinel sites render via [`site_label`].
    pub fn hotspots(&self, n: usize) -> Vec<(u32, PathMix)> {
        hotspots_of(&self.hists, n)
    }

    /// The deterministic span chain for this invocation, seeded from the
    /// campaign spec hash: the request → … → cell spine plus Pass/Check
    /// leaf spans synthesized from the recorded event stream via
    /// [`SpanSet::hotspots`]. Byte-identical to the `trace_spans.jsonl`
    /// artifact the campaign path renders from shard payloads.
    pub fn span_set(&self, seed: u64) -> SpanSet {
        let (mut set, shard) =
            span_spine(seed, &self.workload, self.tool, DEFAULT_CELLS as usize + 1);
        for cell in 0..=DEFAULT_CELLS {
            let label = if cell == 0 {
                "plan".to_string()
            } else {
                format!("cell-{cell}")
            };
            let cell_span = set.child(shard, SpanKind::Cell, cell as u64, label);
            let events: Vec<Event> = self
                .events
                .iter()
                .filter(|e| e.cell == cell)
                .cloned()
                .collect();
            set.hotspots(cell_span, &events);
        }
        set
    }

    /// Renders the study: run summaries plus the hot-spot table.
    pub fn render(&self) -> String {
        render_report(
            &self.workload,
            self.tool,
            self.kernel,
            self.threads,
            &self.runs,
            self.events.len(),
            self.dropped,
            self.digest(),
            &self.hists,
        )
    }
}

/// [`TraceStudy::hotspots`] over bare histograms (the campaign path).
pub fn hotspots_of(hists: &Histograms, n: usize) -> Vec<(u32, PathMix)> {
    let mut v: Vec<(u32, PathMix)> = hists.sites.iter().map(|(s, m)| (*s, *m)).collect();
    v.sort_by(|a, b| {
        b.1.slow_share()
            .total_cmp(&a.1.slow_share())
            .then(b.1.total().cmp(&a.1.total()))
            .then(a.0.cmp(&b.0))
    });
    v.truncate(n);
    v
}

/// [`TraceStudy::render`] over bare parts — the campaign path, which
/// reassembles the summary from shard payloads without a full `TraceStudy`.
#[allow(clippy::too_many_arguments)]
pub fn render_report(
    workload: &str,
    tool: Tool,
    kernel: &str,
    threads: usize,
    runs: &[TraceRun],
    events: usize,
    dropped: u64,
    digest: u64,
    hists: &Histograms,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} under {} [kernel={}]: {} cells on {} worker(s), {} events ({} dropped), \
         digest {:#018x}\n\n",
        workload,
        tool.name(),
        kernel,
        runs.len(),
        threads,
        events,
        dropped,
        digest
    ));

    let mut t = TextTable::new(
        ["cell", "steps", "events", "reports", "result digest"]
            .map(String::from)
            .to_vec(),
    );
    for r in runs {
        t.row(vec![
            r.cell.to_string(),
            r.steps.to_string(),
            r.events.to_string(),
            r.reports.to_string(),
            format!("{:#018x}", r.result_digest),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n-- hot spots by slow-path share --\n");
    let mut t = TextTable::new(
        [
            "site", "total", "fast", "hit", "update", "slow", "under", "arith", "skip", "slow%",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (site, mix) in hotspots_of(hists, 10) {
        t.row(vec![
            site_label(site),
            mix.total().to_string(),
            mix.fast.to_string(),
            mix.cache_hits.to_string(),
            mix.cache_updates.to_string(),
            mix.slow.to_string(),
            mix.underflow.to_string(),
            mix.arith.to_string(),
            mix.skipped.to_string(),
            pct(mix.slow_share() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// [`TraceStudy::chrome_trace`] over bare parts (the `--telemetry` writer and
/// the campaign presentation path share this).
pub fn chrome_with(schedule: &BatchTrace, process: &str, hists: &Histograms) -> String {
    let mut t = ChromeTrace::new();
    schedule.render_chrome(&mut t, 1, process);
    let end = schedule
        .batches
        .iter()
        .map(|b| b.start_us + b.dur_us)
        .fold(0.0, f64::max);
    let mut mix = PathMix::default();
    for m in hists.sites.values() {
        mix.merge(m);
    }
    let series: Vec<(&str, String)> = [
        ("fast", mix.fast),
        ("slow", mix.slow),
        ("cache_hit", mix.cache_hits),
        ("cache_update", mix.cache_updates),
        ("underflow", mix.underflow),
        ("arith", mix.arith),
        ("skipped", mix.skipped),
    ]
    .into_iter()
    .map(|(k, v)| (k, v.to_string()))
    .collect();
    let series_refs: Vec<(&str, &str)> = series.iter().map(|(k, v)| (*k, v.as_str())).collect();
    t.counter(1, "check paths", end, &series_refs);
    t.finish()
}

/// The request → admission → scheduler → job → shard spine every trace
/// invocation hangs its cell spans off. A CLI invocation has no admission
/// queue or worker pool, but sharing the serve taxonomy means one resolver
/// (`spans.jsonl` + [`giantsan_telemetry::parse_span_line`]) works on both
/// a service job's dump and a `repro trace` artifact. Returns the set and
/// the shard span id cells attach to.
fn span_spine(seed: u64, workload: &str, tool: Tool, cells: usize) -> (SpanSet, u64) {
    let mut set = SpanSet::new();
    let root = set.root(
        seed,
        format!("repro trace: {workload} under {}", tool.name()),
    );
    let adm = set.child(root, SpanKind::Admission, 0, "local invocation (no queue)");
    let sched = set.child(adm, SpanKind::Scheduler, 0, "in-process batch runner");
    let job = set.child(sched, SpanKind::Job, 0, "trace");
    let shard = set.child(
        job,
        SpanKind::Shard,
        0,
        format!("shard 0 (cells 0..{cells})"),
    );
    (set, shard)
}

/// Rebuilds the span chain from campaign shard payloads: the spine from
/// `span_spine`, one cell span per record, Pass leaves parsed back out of
/// each record's rendered JSONL slice, and Check leaves recomputed from the
/// record's sampling histograms (`slow + cache_update + underflow` is
/// exactly the set [`CheckPathKind::is_slow_path`] charges, so the labels
/// match [`SpanSet::hotspots`] byte for byte).
///
/// [`CheckPathKind::is_slow_path`]: giantsan_telemetry::CheckPathKind::is_slow_path
pub fn trace_spans(seed: u64, workload: &str, tool: Tool, records: &[Record]) -> SpanSet {
    let (mut set, shard) = span_spine(seed, workload, tool, records.len());
    for (index, r) in records.iter().enumerate() {
        let cell_span = set.child(shard, SpanKind::Cell, index as u64, r.label.clone());
        let mut pass_ordinal = 0u64;
        for line in study::req_str(&r.payload, "jsonl").lines() {
            if !line.contains("\"ev\":\"pass\"") {
                continue;
            }
            let Some(name) = line
                .split_once(",\"pass\":\"")
                .and_then(|(_, rest)| rest.split('"').next())
            else {
                continue;
            };
            let state = if line.contains("\"enabled\":false") {
                " (disabled)"
            } else {
                ""
            };
            set.child(
                cell_span,
                SpanKind::Pass,
                pass_ordinal,
                format!("{name}{state}"),
            );
            pass_ordinal += 1;
        }
        let hists = hists_from(study::req(&r.payload, "hists"));
        let mut sites: Vec<(u32, u64)> = hists
            .sites
            .iter()
            .map(|(site, m)| (*site, m.slow + m.cache_updates + m.underflow))
            .filter(|&(_, slow)| slow > 0)
            .collect();
        sites.sort_by_key(|&(site, _)| site);
        for (site, slow) in sites {
            set.child(
                cell_span,
                SpanKind::Check,
                site as u64,
                format!("{} ({slow} slow-path)", site_label(site)),
            );
        }
    }
    set
}

// ---------------------------------------------------------------------------
// Histogram payload codec: campaign shards carry each cell's sampling
// histograms through JSON. Encoding is sparse (non-empty buckets only) and
// decoding is exact, so merged histograms equal the monolithic run's.
// ---------------------------------------------------------------------------

/// Encodes one log2 histogram as `{"b": [[bucket, count], ...], "count": n,
/// "sum": s}` with empty buckets omitted.
fn log2_json(h: &Log2Hist) -> Json {
    let b: Vec<Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| Json::from(vec![Json::from(i as u64), Json::from(c)]))
        .collect();
    Json::obj()
        .field("b", b)
        .field("count", h.count)
        .field("sum", h.sum)
}

fn log2_from(j: &Json) -> Log2Hist {
    let mut h = Log2Hist::default();
    for pair in study::req_array(j, "b") {
        let pair = pair.as_array().expect("histogram bucket pair");
        let i = pair[0].as_u64().expect("bucket index") as usize;
        h.buckets[i] = pair[1].as_u64().expect("bucket count");
    }
    h.count = study::req_u64(j, "count");
    h.sum = study::req_u64(j, "sum");
    h
}

/// [`PathMix`] fields in payload array order.
fn mix_values(m: &PathMix) -> [u64; 7] {
    [
        m.fast,
        m.slow,
        m.cache_hits,
        m.cache_updates,
        m.underflow,
        m.arith,
        m.skipped,
    ]
}

fn mix_from(values: &[u64]) -> PathMix {
    PathMix {
        fast: values[0],
        slow: values[1],
        cache_hits: values[2],
        cache_updates: values[3],
        underflow: values[4],
        arith: values[5],
        skipped: values[6],
    }
}

/// Encodes a full [`Histograms`] set (the four log2 histograms plus the
/// per-site path mixes).
pub fn hists_json(h: &Histograms) -> Json {
    let sites: Vec<Json> = h
        .sites
        .iter()
        .map(|(site, mix)| {
            Json::obj()
                .field("site", *site)
                .field("mix", study::u64s(&mix_values(mix)))
        })
        .collect();
    Json::obj()
        .field("region_sizes", log2_json(&h.region_sizes))
        .field("fold_depths", log2_json(&h.fold_depths))
        .field("convergence", log2_json(&h.convergence))
        .field("alloc_sizes", log2_json(&h.alloc_sizes))
        .field("sites", sites)
}

/// Inverse of [`hists_json`].
pub fn hists_from(j: &Json) -> Histograms {
    let mut h = Histograms {
        region_sizes: log2_from(study::req(j, "region_sizes")),
        fold_depths: log2_from(study::req(j, "fold_depths")),
        convergence: log2_from(study::req(j, "convergence")),
        alloc_sizes: log2_from(study::req(j, "alloc_sizes")),
        sites: Default::default(),
    };
    for site in study::req_array(j, "sites") {
        let mix = study::req_u64s(site, "mix");
        h.sites
            .insert(study::req_u64(site, "site") as u32, mix_from(&mix));
    }
    h
}

/// `repro trace` as a [`Study`]: cell 0 is the planner (its per-pass
/// events), cells 1..=[`DEFAULT_CELLS`] are the executed batch cells. Each
/// payload carries the cell's rendered JSONL slice, so a merged campaign
/// concatenates them in index order into the exact monolithic event stream
/// (events are already `(cell, seq)`-sorted within a cell).
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry;

impl TraceEntry {
    /// The deterministic plan every cell runs under (identical to the one
    /// [`trace_study_with`] records: `analyze` and [`analyze_recorded`] run
    /// the same pipeline).
    fn plan_for(opts: &StudyOpts, program: &Program) -> CheckPlan {
        match opts.tool {
            Tool::Native => CheckPlan::none(program),
            _ => analyze(program, &opts.tool.builder().spec().profile()).plan,
        }
    }
}

impl Study for TraceEntry {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        workload_program(&opts.workload, opts.scale).ok_or_else(|| {
            format!(
                "unknown workload `{}` (figure8 or a SPEC row id like 519.lbm_r)",
                opts.workload
            )
        })?;
        let mut labels = vec!["plan".to_string()];
        labels.extend((1..=DEFAULT_CELLS).map(|c| format!("cell-{c}")));
        Ok(labels)
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let (program, base_inputs) =
            workload_program(&opts.workload, opts.scale).expect("validated by cells()");
        if index == 0 {
            // The planning cell: per-pass events (none under Native).
            let mut rec = TraceRecorder::for_cell(0);
            let spec = opts.tool.builder().spec();
            if opts.tool != Tool::Native {
                analyze_recorded(&program, &spec.profile(), &mut rec);
            }
            let (ev, h, d) = rec.finish();
            return Json::obj()
                .field("kind", "plan")
                .field("jsonl", events_jsonl(&ev))
                .field("events", ev.len() as u64)
                .field("dropped", d)
                .field("hists", hists_json(&h));
        }
        let cell = index as u32;
        let spec = opts.tool.builder().spec();
        let plan = Self::plan_for(opts, &program);
        let inputs = cell_inputs(&opts.workload, opts.scale, cell, &base_inputs);
        let mut rec = TraceRecorder::for_cell(cell);
        let out = spec.run_planned_recorded(&program, &plan, &inputs, &mut rec);
        let (ev, h, d) = rec.finish();
        Json::obj()
            .field("kind", "run")
            .field("cell", cell)
            .field("jsonl", events_jsonl(&ev))
            .field("steps", out.result.steps)
            .field("reports", out.result.reports.len() as u64)
            .field("result_digest", Json::hex(out.result.digest()))
            .field("events", ev.len() as u64)
            .field("counters", study::u64s(&out.counters.field_values()))
            .field("dropped", d)
            .field("hists", hists_json(&h))
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let kernel = giantsan_shadow::kernel::active().name();
        let mut jsonl = String::new();
        let mut hists = Histograms::default();
        let mut dropped = 0u64;
        let mut events = 0usize;
        let mut counters = Counters::default();
        let mut runs = Vec::new();
        for r in records {
            jsonl.push_str(study::req_str(&r.payload, "jsonl"));
            hists.merge(&hists_from(study::req(&r.payload, "hists")));
            dropped += study::req_u64(&r.payload, "dropped");
            events += study::req_u64(&r.payload, "events") as usize;
            if study::req_str(&r.payload, "kind") == "run" {
                let run_counters = Counters::from_field_values(
                    study::req_u64s(&r.payload, "counters")
                        .try_into()
                        .expect("counters payload carries every field"),
                );
                counters += &run_counters;
                runs.push(TraceRun {
                    cell: study::req_u64(&r.payload, "cell") as u32,
                    result_digest: study::req_hex(&r.payload, "result_digest"),
                    steps: study::req_u64(&r.payload, "steps"),
                    reports: study::req_u64(&r.payload, "reports") as usize,
                    events: study::req_u64(&r.payload, "events") as usize,
                    counters: run_counters,
                });
            }
        }
        let digest = text_digest(&jsonl);
        let report = format!(
            "== End-to-end telemetry trace: {} under {} ==\n\n{}\n",
            opts.workload,
            opts.tool.name(),
            render_report(
                &opts.workload,
                opts.tool,
                kernel,
                opts.threads,
                &runs,
                events,
                dropped,
                digest,
                &hists,
            )
        );
        let counter_fields: Vec<(&str, u64)> = counters.fields().collect();
        // The span seed is the campaign spec hash — the same fingerprint
        // sharding and resuming verify, and it already excludes `--threads`,
        // so the span digest is invariant across worker counts.
        let seed = crate::campaign::Campaign::new(self, opts.clone())
            .map_err(|e| e.to_string())?
            .spec_hash();
        let spans = trace_spans(seed, &opts.workload, opts.tool, records);
        Ok(StudyOutput {
            report,
            main_artifacts: vec![
                ("trace_events.jsonl".to_string(), jsonl),
                (
                    "trace_metrics.prom".to_string(),
                    prometheus(kernel, &counter_fields, &hists, dropped),
                ),
                ("trace_digest.txt".to_string(), format!("{digest:#018x}\n")),
                ("trace_spans.jsonl".to_string(), spans.to_jsonl()),
                (
                    "trace_span_digest.txt".to_string(),
                    format!("{:#018x}\n", spans.digest()),
                ),
            ],
            artifacts: vec![(
                "trace_counters.csv".to_string(),
                crate::csv::trace_counters_csv_runs(&runs),
            )],
            ..StudyOutput::default()
        })
    }

    /// The Chrome trace needs the live scheduling spans — presentation
    /// plane, never checkpointed.
    fn presentation(
        &self,
        opts: &StudyOpts,
        records: &[Record],
        schedule: &BatchTrace,
    ) -> Vec<(String, String)> {
        let mut hists = Histograms::default();
        for r in records {
            hists.merge(&hists_from(study::req(&r.payload, "hists")));
        }
        let process = format!(
            "repro trace: {} under {} [kernel={}]",
            opts.workload,
            opts.tool.name(),
            giantsan_shadow::kernel::active().name()
        );
        vec![(
            "trace_chrome.json".to_string(),
            chrome_with(schedule, &process, &hists),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_telemetry::{EventKind, PRE_CHECK_SITE};

    #[test]
    fn figure8_trace_covers_every_layer() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        assert_eq!(s.runs.len(), DEFAULT_CELLS as usize);
        // Planner events (cell 0) are present alongside run events.
        assert!(s
            .events
            .iter()
            .any(|e| e.cell == 0 && matches!(e.kind, EventKind::Pass { .. })));
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Run { .. })));
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Alloc { .. })));
        // All three figure8 sites were observed.
        for site in [0u32, 1, 2] {
            assert!(s.hists.site(site).is_some(), "site {site} missing");
        }
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn figure8_hotspots_single_out_the_slow_path_sites() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        // The data-dependent y[j] store (site 1) refreshes its history
        // cache once per cell, then hits it for the rest of the loop.
        let site1 = s.hists.site(1).expect("site 1 traced");
        assert_eq!(site1.cache_updates, DEFAULT_CELLS as u64, "{site1:?}");
        assert!(site1.cache_hits > site1.cache_updates, "{site1:?}");
        // The hoisted pre-header region check runs once per cell and is the
        // only metadata work left for x[i]; site 0 itself is eliminated.
        let pre = s.hists.site(PRE_CHECK_SITE).expect("pre-header traced");
        assert_eq!(pre.total(), DEFAULT_CELLS as u64, "{pre:?}");
        assert_eq!(pre.fast + pre.slow, pre.total(), "{pre:?}");
        let site0 = s.hists.site(0).expect("site 0 traced");
        assert_eq!(site0.total(), site0.skipped, "{site0:?}");
        // Ranking: the once-per-cell region checks (memset guardian,
        // pre-header) carry the highest slow-path share, the cached y[j]
        // store follows, and the eliminated x[i] load ranks below them all.
        let hot: Vec<u32> = s.hotspots(10).into_iter().map(|(site, _)| site).collect();
        let pos = |s: u32| hot.iter().position(|&x| x == s);
        assert!(pos(2) < pos(1), "{hot:?}");
        assert!(pos(PRE_CHECK_SITE) < pos(1), "{hot:?}");
        assert!(pos(1) < pos(0), "{hot:?}");
        let rendered = s.render();
        assert!(rendered.contains("pre-header"), "{rendered}");
        assert!(rendered.contains("hot spots"));
    }

    #[test]
    fn data_plane_is_thread_invariant() {
        let serial =
            trace_study_with(&BatchRunner::serial(), "figure8", Tool::GiantSan, 1).unwrap();
        let parallel =
            trace_study_with(&BatchRunner::new(4), "figure8", Tool::GiantSan, 1).unwrap();
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.hists, parallel.hists);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn exporters_render_all_three_formats() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        let jsonl = s.events_jsonl();
        assert!(jsonl.lines().count() > 10);
        assert!(jsonl.starts_with("{\"cell\":0,\"seq\":0,"));
        let chrome = s.chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("check paths"));
        let prom = s.prometheus();
        assert!(prom.contains(&format!(
            "giantsan_kernel_info{{kernel=\"{}\"}} 1",
            s.kernel
        )));
        assert!(prom.contains("giantsan_shadow_loads_total"));
        assert!(prom.contains("giantsan_site_checks_total"));
        assert!(chrome.contains(&format!("[kernel={}]", s.kernel)));
        assert!(s.digest_artifact().starts_with("0x"));
    }

    #[test]
    fn span_artifacts_are_thread_invariant_and_match_the_study_path() {
        use crate::campaign::Campaign;
        let opts = StudyOpts {
            workload: "figure8".to_string(),
            tool: Tool::GiantSan,
            scale: 1,
            ..StudyOpts::default()
        };
        let campaign = Campaign::new(&TraceEntry, opts.clone()).unwrap();
        let seed = campaign.spec_hash();
        let serial = campaign.run_all(&BatchRunner::serial());
        let two = Campaign::new(&TraceEntry, opts.clone())
            .unwrap()
            .run_all(&BatchRunner::new(2));
        let parallel = Campaign::new(&TraceEntry, opts.clone())
            .unwrap()
            .run_all(&BatchRunner::new(4));

        let artifact = |records: &[Record]| {
            let out = TraceEntry.render(&opts, records).unwrap();
            let jsonl = out
                .main_artifacts
                .iter()
                .find(|(n, _)| n == "trace_spans.jsonl")
                .map(|(_, c)| c.clone())
                .expect("span artifact rendered");
            let digest = out
                .main_artifacts
                .iter()
                .find(|(n, _)| n == "trace_span_digest.txt")
                .map(|(_, c)| c.clone())
                .expect("span digest rendered");
            (jsonl, digest)
        };
        let (jsonl_s, digest_s) = artifact(&serial);
        let (jsonl_2, digest_2) = artifact(&two);
        let (jsonl_p, digest_p) = artifact(&parallel);
        assert_eq!(jsonl_s, jsonl_2, "span set is invariant at 2 workers");
        assert_eq!(jsonl_s, jsonl_p, "span set is invariant at 4 workers");
        assert_eq!(digest_s, digest_2);
        assert_eq!(digest_s, digest_p);

        // The payload-reconstructed chain equals the event-stream one.
        let study = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        assert_eq!(study.span_set(seed).to_jsonl(), jsonl_s);

        // The chain is causally complete: every span resolves to the
        // request root, and pass + slow-path leaves made it in.
        let spans = trace_spans(seed, &opts.workload, opts.tool, &serial);
        let root = spans.spans()[0].id;
        assert_eq!(spans.find(root).unwrap().kind, SpanKind::Request);
        for s in spans.spans() {
            assert_eq!(*spans.ancestry(s.id).last().unwrap(), root, "{s:?}");
        }
        assert!(spans.spans().iter().any(|s| s.kind == SpanKind::Pass));
        assert!(spans.spans().iter().any(|s| s.kind == SpanKind::Check));
        assert!(digest_s.starts_with("0x") && digest_s.ends_with('\n'));
    }

    #[test]
    fn spec_workloads_and_native_trace_too() {
        let s = trace_study("519.lbm_r", Tool::Asan, 1).unwrap();
        assert!(!s.events.is_empty());
        let native = trace_study("figure8", Tool::Native, 1).unwrap();
        // No planner events for Native (no pipeline runs), but run events
        // still flow; every check is planner-skipped.
        assert!(native
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Pass { .. })));
        assert!(native.hists.sites.values().all(|m| m.total() == m.skipped));
        assert!(trace_study("nope", Tool::GiantSan, 1).is_err());
    }
}
