//! The end-to-end telemetry study behind `repro trace`.
//!
//! One (workload × tool) pair is run as a small cell matrix with the full
//! telemetry pipeline attached: the planner runs under
//! [`analyze_recorded`] (per-pass events), every cell runs under a
//! [`TraceRecorder`] (check / quasi-bound / allocator / containment events
//! plus the sampling histograms), and the batch engine records its
//! scheduling spans into a [`TraceSink`]. The study then exports all three
//! formats the telemetry crate supports:
//!
//! * **JSON Lines** — the deterministic data-plane event stream, sorted by
//!   `(cell, seq)`; its FNV-1a digest is invariant under thread count.
//! * **Chrome `trace_event`** — the presentation plane (worker tracks, cell
//!   slices, wall-clock), loadable in Perfetto / `chrome://tracing`.
//! * **Prometheus text exposition** — final counters, log2 histograms, and
//!   the per-site check-path mix.
//!
//! [`TraceStudy::hotspots`] ranks sites by slow-path share, which on the
//! paper's Figure 8 example singles out the data-dependent `y[j]` store
//! (history-cache refreshes) and the hoisted pre-header / loop-final region
//! checks — exactly the sites the paper's optimisation story is about.

use std::sync::Arc;

use giantsan_analysis::analyze_recorded;
use giantsan_ir::{CheckPlan, Program};
use giantsan_runtime::Counters;
use giantsan_telemetry::export::{events_jsonl, jsonl_digest, prometheus, ChromeTrace};
use giantsan_telemetry::{site_label, Event, Histograms, PathMix, TraceRecorder};
use giantsan_workloads::{figure8_program, spec_workload};

use crate::batch::{BatchRunner, BatchTrace, TraceSink};
use crate::table::{pct, TextTable};
use crate::tool::Tool;

/// Number of batch cells a trace study runs (cell ids `1..=DEFAULT_CELLS`;
/// cell 0 carries the planner's per-pass events).
pub const DEFAULT_CELLS: u32 = 4;

/// Data-plane summary of one executed cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// Cell id (1-based; 0 is the planning cell).
    pub cell: u32,
    /// [`giantsan_ir::ExecResult::digest`] of the run.
    pub result_digest: u64,
    /// Executed statement count.
    pub steps: u64,
    /// Error reports raised.
    pub reports: usize,
    /// Events this cell emitted (before any cap).
    pub events: usize,
    /// The cell's sanitizer counters.
    pub counters: Counters,
}

/// Everything one `repro trace` invocation collected.
#[derive(Debug, Clone)]
pub struct TraceStudy {
    /// Workload id (`figure8` or a SPEC row id).
    pub workload: String,
    /// The traced tool.
    pub tool: Tool,
    /// Shadow-kernel backend the cells executed under (e.g. `simd-avx2`).
    ///
    /// Presentation metadata only: the data-plane events and their digest
    /// are kernel-invariant by the backend contract, so this appears in the
    /// Prometheus exposition and schedule dumps but never in the JSONL.
    pub kernel: &'static str,
    /// Worker-pool size the cells were scheduled across.
    pub threads: usize,
    /// Merged data-plane event stream, sorted by `(cell, seq)`.
    pub events: Vec<Event>,
    /// Merged sampling histograms (all cells).
    pub hists: Histograms,
    /// Events past the per-cell recorder caps (sampled, not buffered).
    pub dropped: u64,
    /// Summed sanitizer counters across cells.
    pub counters: Counters,
    /// Per-cell run summaries, in cell order.
    pub runs: Vec<TraceRun>,
    /// Presentation-plane scheduling spans (never digested).
    pub schedule: BatchTrace,
}

/// Builds the program under study. `figure8` is the paper's worked example;
/// anything else is looked up as a SPEC-model row id.
fn workload_program(id: &str, scale: u64) -> Option<(Program, Vec<i64>)> {
    if id == "figure8" {
        Some(figure8_program((64 * scale) as i64))
    } else {
        spec_workload(id, scale).map(|w| (w.program, w.inputs))
    }
}

/// Per-cell inputs: figure8 scales its trip count with the cell id (so the
/// cells exercise different convergence lengths); SPEC workloads replay
/// their fixed input tape in every cell.
fn cell_inputs(id: &str, scale: u64, cell: u32, base: &[i64]) -> Vec<i64> {
    if id == "figure8" {
        vec![(64 * scale * cell as u64) as i64]
    } else {
        base.to_vec()
    }
}

/// Runs the study on a default (auto-sized) runner.
pub fn trace_study(workload: &str, tool: Tool, scale: u64) -> Result<TraceStudy, String> {
    trace_study_with(&BatchRunner::default(), workload, tool, scale)
}

/// [`trace_study`] on an explicit runner.
///
/// The data plane (events, histograms, digest) is invariant under the
/// runner's thread count; only [`TraceStudy::schedule`] — the presentation
/// plane — differs between serial and parallel runs.
pub fn trace_study_with(
    runner: &BatchRunner,
    workload: &str,
    tool: Tool,
    scale: u64,
) -> Result<TraceStudy, String> {
    let (program, base_inputs) = workload_program(workload, scale).ok_or_else(|| {
        format!("unknown workload `{workload}` (figure8 or a SPEC row id like 519.lbm_r)")
    })?;
    let spec = tool.builder().spec();

    // Cell 0 of the data plane: the planner's per-pass events.
    let mut plan_rec = TraceRecorder::for_cell(0);
    let plan = match tool {
        Tool::Native => CheckPlan::none(&program),
        _ => analyze_recorded(&program, &spec.profile(), &mut plan_rec).plan,
    };

    // Presentation plane: a fresh sink snapshots this study's scheduling.
    let sink = TraceSink::new();
    let runner = runner.clone().with_sink(Arc::clone(&sink));

    let cells: Vec<u32> = (1..=DEFAULT_CELLS).collect();
    let results = runner.map(&cells, |_, &cell| {
        let inputs = cell_inputs(workload, scale, cell, &base_inputs);
        let mut rec = TraceRecorder::for_cell(cell);
        let out = spec.run_planned_recorded(&program, &plan, &inputs, &mut rec);
        (out, rec)
    });

    let (mut events, mut hists, mut dropped) = plan_rec.finish();
    let mut counters = Counters::default();
    let mut runs = Vec::new();
    for (out, rec) in results {
        let cell = rec.cell();
        let (ev, h, d) = rec.finish();
        runs.push(TraceRun {
            cell,
            result_digest: out.result.digest(),
            steps: out.result.steps,
            reports: out.result.reports.len(),
            events: ev.len(),
            counters: out.counters,
        });
        events.extend(ev);
        hists.merge(&h);
        dropped += d;
        counters += &out.counters;
    }
    events.sort_by_key(|e| (e.cell, e.seq));

    Ok(TraceStudy {
        workload: workload.to_string(),
        tool,
        kernel: giantsan_shadow::kernel::active().name(),
        threads: runner.threads(),
        events,
        hists,
        dropped,
        counters,
        runs,
        schedule: sink.take(),
    })
}

impl TraceStudy {
    /// The deterministic JSONL event stream.
    pub fn events_jsonl(&self) -> String {
        events_jsonl(&self.events)
    }

    /// FNV-1a digest of the JSONL bytes — the thread-invariant fingerprint
    /// CI diffs serial vs parallel.
    pub fn digest(&self) -> u64 {
        jsonl_digest(&self.events)
    }

    /// The one-line digest artefact (`trace_digest.txt`).
    pub fn digest_artifact(&self) -> String {
        format!("{:#018x}\n", self.digest())
    }

    /// The Chrome `trace_event` JSON: the batch engine's scheduling spans
    /// plus a final counter sample carrying the data-plane path totals.
    pub fn chrome_trace(&self) -> String {
        let mut t = ChromeTrace::new();
        self.schedule.render_chrome(
            &mut t,
            1,
            &format!(
                "repro trace: {} under {} [kernel={}]",
                self.workload,
                self.tool.name(),
                self.kernel
            ),
        );
        let end = self
            .schedule
            .batches
            .iter()
            .map(|b| b.start_us + b.dur_us)
            .fold(0.0, f64::max);
        let mut mix = PathMix::default();
        for m in self.hists.sites.values() {
            mix.merge(m);
        }
        let series: Vec<(&str, String)> = [
            ("fast", mix.fast),
            ("slow", mix.slow),
            ("cache_hit", mix.cache_hits),
            ("cache_update", mix.cache_updates),
            ("underflow", mix.underflow),
            ("arith", mix.arith),
            ("skipped", mix.skipped),
        ]
        .into_iter()
        .map(|(k, v)| (k, v.to_string()))
        .collect();
        let series_refs: Vec<(&str, &str)> = series.iter().map(|(k, v)| (*k, v.as_str())).collect();
        t.counter(1, "check paths", end, &series_refs);
        t.finish()
    }

    /// The Prometheus text exposition: summed sanitizer counters, the four
    /// log2 histograms, the per-site path mix, and the dropped-event count.
    pub fn prometheus(&self) -> String {
        let counters: Vec<(&str, u64)> = self.counters.fields().collect();
        prometheus(self.kernel, &counters, &self.hists, self.dropped)
    }

    /// The top `n` sites by slow-path share (ties broken by visit volume,
    /// then site id). Sentinel sites render via [`site_label`].
    pub fn hotspots(&self, n: usize) -> Vec<(u32, PathMix)> {
        let mut v: Vec<(u32, PathMix)> = self.hists.sites.iter().map(|(s, m)| (*s, *m)).collect();
        v.sort_by(|a, b| {
            b.1.slow_share()
                .total_cmp(&a.1.slow_share())
                .then(b.1.total().cmp(&a.1.total()))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Renders the study: run summaries plus the hot-spot table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} under {} [kernel={}]: {} cells on {} worker(s), {} events ({} dropped), \
             digest {:#018x}\n\n",
            self.workload,
            self.tool.name(),
            self.kernel,
            self.runs.len(),
            self.threads,
            self.events.len(),
            self.dropped,
            self.digest()
        ));

        let mut t = TextTable::new(
            ["cell", "steps", "events", "reports", "result digest"]
                .map(String::from)
                .to_vec(),
        );
        for r in &self.runs {
            t.row(vec![
                r.cell.to_string(),
                r.steps.to_string(),
                r.events.to_string(),
                r.reports.to_string(),
                format!("{:#018x}", r.result_digest),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\n-- hot spots by slow-path share --\n");
        let mut t = TextTable::new(
            [
                "site", "total", "fast", "hit", "update", "slow", "under", "arith", "skip", "slow%",
            ]
            .map(String::from)
            .to_vec(),
        );
        for (site, mix) in self.hotspots(10) {
            t.row(vec![
                site_label(site),
                mix.total().to_string(),
                mix.fast.to_string(),
                mix.cache_hits.to_string(),
                mix.cache_updates.to_string(),
                mix.slow.to_string(),
                mix.underflow.to_string(),
                mix.arith.to_string(),
                mix.skipped.to_string(),
                pct(mix.slow_share() * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_telemetry::{EventKind, PRE_CHECK_SITE};

    #[test]
    fn figure8_trace_covers_every_layer() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        assert_eq!(s.runs.len(), DEFAULT_CELLS as usize);
        // Planner events (cell 0) are present alongside run events.
        assert!(s
            .events
            .iter()
            .any(|e| e.cell == 0 && matches!(e.kind, EventKind::Pass { .. })));
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Run { .. })));
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Alloc { .. })));
        // All three figure8 sites were observed.
        for site in [0u32, 1, 2] {
            assert!(s.hists.site(site).is_some(), "site {site} missing");
        }
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn figure8_hotspots_single_out_the_slow_path_sites() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        // The data-dependent y[j] store (site 1) refreshes its history
        // cache once per cell, then hits it for the rest of the loop.
        let site1 = s.hists.site(1).expect("site 1 traced");
        assert_eq!(site1.cache_updates, DEFAULT_CELLS as u64, "{site1:?}");
        assert!(site1.cache_hits > site1.cache_updates, "{site1:?}");
        // The hoisted pre-header region check runs once per cell and is the
        // only metadata work left for x[i]; site 0 itself is eliminated.
        let pre = s.hists.site(PRE_CHECK_SITE).expect("pre-header traced");
        assert_eq!(pre.total(), DEFAULT_CELLS as u64, "{pre:?}");
        assert_eq!(pre.fast + pre.slow, pre.total(), "{pre:?}");
        let site0 = s.hists.site(0).expect("site 0 traced");
        assert_eq!(site0.total(), site0.skipped, "{site0:?}");
        // Ranking: the once-per-cell region checks (memset guardian,
        // pre-header) carry the highest slow-path share, the cached y[j]
        // store follows, and the eliminated x[i] load ranks below them all.
        let hot: Vec<u32> = s.hotspots(10).into_iter().map(|(site, _)| site).collect();
        let pos = |s: u32| hot.iter().position(|&x| x == s);
        assert!(pos(2) < pos(1), "{hot:?}");
        assert!(pos(PRE_CHECK_SITE) < pos(1), "{hot:?}");
        assert!(pos(1) < pos(0), "{hot:?}");
        let rendered = s.render();
        assert!(rendered.contains("pre-header"), "{rendered}");
        assert!(rendered.contains("hot spots"));
    }

    #[test]
    fn data_plane_is_thread_invariant() {
        let serial =
            trace_study_with(&BatchRunner::serial(), "figure8", Tool::GiantSan, 1).unwrap();
        let parallel =
            trace_study_with(&BatchRunner::new(4), "figure8", Tool::GiantSan, 1).unwrap();
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(serial.hists, parallel.hists);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn exporters_render_all_three_formats() {
        let s = trace_study("figure8", Tool::GiantSan, 1).unwrap();
        let jsonl = s.events_jsonl();
        assert!(jsonl.lines().count() > 10);
        assert!(jsonl.starts_with("{\"cell\":0,\"seq\":0,"));
        let chrome = s.chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("check paths"));
        let prom = s.prometheus();
        assert!(prom.contains(&format!(
            "giantsan_kernel_info{{kernel=\"{}\"}} 1",
            s.kernel
        )));
        assert!(prom.contains("giantsan_shadow_loads_total"));
        assert!(prom.contains("giantsan_site_checks_total"));
        assert!(chrome.contains(&format!("[kernel={}]", s.kernel)));
        assert!(s.digest_artifact().starts_with("0x"));
    }

    #[test]
    fn spec_workloads_and_native_trace_too() {
        let s = trace_study("519.lbm_r", Tool::Asan, 1).unwrap();
        assert!(!s.events.is_empty());
        let native = trace_study("figure8", Tool::Native, 1).unwrap();
        // No planner events for Native (no pipeline runs), but run events
        // still flow; every check is planner-skipped.
        assert!(native
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Pass { .. })));
        assert!(native.hists.sites.values().all(|m| m.total() == m.skipped));
        assert!(trace_study("nope", Tool::GiantSan, 1).is_err());
    }
}
