//! Allocator study: the block/line heap against the free list.
//!
//! `repro alloc` drives both heap backends through the sanitizer's public
//! malloc/free surface at a sustained population of ≥ 10⁶ live objects per
//! fill cell and reports allocation+poisoning behaviour:
//!
//! - **fill** — grow to the live target (mixed small sizes), then drain;
//!   pins counters and high-water marks per backend.
//! - **churn** — steady-state alloc/free at a quarter of the live target,
//!   exercising quarantine recycling and the block heap's hole-finding.
//! - **poison** — a single-class fill under the block/line backend with
//!   per-object poisoning vs block-granular pattern stamping; the pair the
//!   `BENCH_PR8.json` throughput claim rests on.
//! - **mt-arenas** — four thread caches pinned to four arenas, verifying
//!   arena partitioning end to end.
//! - **kernel-sweep** — the PR 6 backend digest-parity rows (and, under
//!   `--wall`, the timing ladder), backfilled into `BENCH_PR8.json`.
//!
//! Wall-clock fields enter payloads only under `--wall`; everything else is
//! deterministic, so alloc campaigns shard and resume like any other study.

use std::time::Instant;

use giantsan_core::GiantSan;
use giantsan_runtime::{
    Allocation, HeapBackend, Region, RuntimeConfig, Sanitizer, ThreadCachedAllocator,
};

use crate::experiments::fault_study::fnv1a;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;

/// Live objects each fill cell sustains at `--scale 1`.
pub const LIVE_PER_SCALE: u64 = 1_000_000;

/// Object-size mix of the fill and churn cells (bytes). All land in line
/// classes of the block backend; 160 spills to a two-line slot.
pub const FILL_SIZES: [u64; 6] = [16, 24, 32, 48, 64, 160];

/// Object size of the poison pair: one line class, so one block amortises a
/// single pattern stamp over many slots.
pub const POISON_SIZE: u64 = 48;

/// Threads (= arenas) of the `mt-arenas` cell. Fixed, not `--threads`:
/// payloads must not depend on scheduling knobs.
pub const ARENA_THREADS: u32 = 4;

const CELLS: [&str; 7] = [
    "fill-freelist",
    "fill-blockline",
    "churn-freelist",
    "churn-blockline",
    "poison-pair",
    "mt-arenas",
    "kernel-sweep",
];

/// The live-object target for a scale factor.
pub fn live_target(scale: u64) -> u64 {
    LIVE_PER_SCALE * scale.max(1)
}

/// Study configuration: heap sized to hold the live target under either
/// backend (block slots round small objects up to 128-byte lines).
fn config(scale: u64, backend: HeapBackend, arenas: u32) -> RuntimeConfig {
    RuntimeConfig::default()
        .to_builder()
        .heap_size(scale.max(1) * (256 << 20))
        .heap_backend(backend)
        .heap_arenas(arenas)
        .build()
}

fn sanitizer(cfg: RuntimeConfig, granular: bool) -> GiantSan {
    GiantSan::builder()
        .config(cfg)
        .block_granular_poison(granular)
        .build()
}

/// FNV-1a over the named counter fields, same construction as the PR 6
/// backend-parity digest.
fn counters_digest(san: &GiantSan) -> u64 {
    let mut bytes = Vec::new();
    for (name, value) in san.counters().fields() {
        bytes.extend_from_slice(name.as_bytes());
        bytes.extend_from_slice(&value.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Shared payload tail: counters, heap marks, and (block backend only) the
/// block heap's own statistics.
fn heap_fields(mut payload: Json, san: &GiantSan) -> Json {
    let c = san.counters();
    payload = payload
        .field("allocs", c.allocs)
        .field("frees", c.frees)
        .field("shadow_stores", c.shadow_stores)
        .field("bulk_poison_runs", c.bulk_poison_runs)
        .field("high_water", san.world().heap().high_water())
        .field("quarantined_bytes", san.world().quarantined_bytes())
        .field("counters_digest", Json::hex(counters_digest(san)));
    if let Some(heap) = san.world().heap().as_block() {
        let s = heap.stats();
        payload = payload
            .field("blocks_mapped", s.blocks_mapped)
            .field("blocks_freed", s.blocks_freed)
            .field("holes_recycled", s.holes_recycled)
            .field("large_spans", s.large_spans);
    }
    payload
}

/// Fill cell: grow to the live target, record the peak, then drain.
fn run_fill(opts: &StudyOpts, backend: HeapBackend) -> Json {
    let live = live_target(opts.scale);
    let mut san = sanitizer(config(opts.scale, backend, 1), false);
    let mut held: Vec<Allocation> = Vec::with_capacity(live as usize);
    let start = Instant::now();
    for i in 0..live {
        let size = FILL_SIZES[(i % FILL_SIZES.len() as u64) as usize];
        held.push(san.alloc(size, Region::Heap).expect("heap sized for fill"));
    }
    let fill = start.elapsed();
    let peak = san.world().heap().bytes_in_use();
    for a in held {
        san.free(a.base).expect("double free impossible in fill");
    }
    let mut payload = Json::obj()
        .field("cell", "fill")
        .field("live", live)
        .field("peak_bytes", peak);
    payload = heap_fields(payload, &san);
    if opts.wall {
        let ns = fill.as_secs_f64() * 1e9;
        payload = payload
            .field("fill_ns_per_alloc", ns / live as f64)
            .field("alloc_mops", live as f64 / (ns / 1e3).max(1e-9));
    }
    payload
}

/// Churn cell: warm up to a sixteenth of the live target, then replace
/// random members for as many iterations (xorshift, seeded by `--seed`).
/// The population is deliberately smaller than the fill cells': the free
/// list's first-fit scan is linear in its hole count, so steady-state churn
/// is where the two backends diverge by orders of magnitude, not where we
/// want to spend minutes of CI budget.
fn run_churn(opts: &StudyOpts, backend: HeapBackend) -> Json {
    let live = (live_target(opts.scale) / 16).max(1024);
    let ops = live;
    let mut san = sanitizer(config(opts.scale, backend, 1), false);
    let mut held: Vec<Allocation> = Vec::with_capacity(live as usize);
    for i in 0..live {
        let size = FILL_SIZES[(i % FILL_SIZES.len() as u64) as usize];
        held.push(san.alloc(size, Region::Heap).expect("heap sized for churn"));
    }
    let mut rng = opts.seed | 1;
    let start = Instant::now();
    for i in 0..ops {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let victim = (rng % live) as usize;
        let size = FILL_SIZES[(i % FILL_SIZES.len() as u64) as usize];
        let fresh = san.alloc(size, Region::Heap).expect("churn is size-stable");
        san.free(std::mem::replace(&mut held[victim], fresh).base)
            .expect("held objects are live");
    }
    let churn = start.elapsed();
    for a in held {
        san.free(a.base).expect("held objects are live");
    }
    let mut payload = Json::obj()
        .field("cell", "churn")
        .field("live", live)
        .field("ops", ops);
    payload = heap_fields(payload, &san);
    if opts.wall {
        payload = payload.field("churn_ns_per_op", churn.as_secs_f64() * 1e9 / ops as f64);
    }
    payload
}

/// One timed single-class fresh fill under the block backend; returns
/// `(elapsed ns per alloc, sanitizer after the drain)`.
fn poison_fill(scale: u64, live: u64, granular: bool) -> (f64, GiantSan) {
    let mut san = sanitizer(config(scale, HeapBackend::BlockLine, 1), granular);
    let mut held: Vec<Allocation> = Vec::with_capacity(live as usize);
    let start = Instant::now();
    for _ in 0..live {
        held.push(
            san.alloc(POISON_SIZE, Region::Heap)
                .expect("heap sized for fill"),
        );
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / live as f64;
    for a in held {
        san.free(a.base).expect("double free impossible in fill");
    }
    (ns, san)
}

/// Poison cell: the per-object vs block-granular pair in ONE cell, modes
/// alternating back to back and best-of-3, so host noise hits both sides of
/// the `BENCH_PR8.json` throughput comparison equally.
fn run_poison_pair(opts: &StudyOpts) -> Json {
    let live = (live_target(opts.scale) / 2).max(1024);
    let reps = if opts.wall { 3 } else { 1 };
    let mut per_object_ns = f64::INFINITY;
    let mut granular_ns = f64::INFINITY;
    let mut pair = None;
    for _ in 0..reps {
        let (po_ns, po) = poison_fill(opts.scale, live, false);
        let (gr_ns, gr) = poison_fill(opts.scale, live, true);
        per_object_ns = per_object_ns.min(po_ns);
        granular_ns = granular_ns.min(gr_ns);
        pair = Some((po, gr));
    }
    let (po, gr) = pair.expect("reps >= 1");
    let mut payload = Json::obj()
        .field("cell", "poison-pair")
        .field("live", live)
        .field("per_object_shadow_stores", po.counters().shadow_stores)
        .field("per_object_bulk_runs", po.counters().bulk_poison_runs)
        .field("granular_shadow_stores", gr.counters().shadow_stores)
        .field("granular_bulk_runs", gr.counters().bulk_poison_runs);
    if opts.wall {
        payload = payload
            .field("per_object_ns_per_alloc", per_object_ns)
            .field("granular_ns_per_alloc", granular_ns);
    }
    payload
}

/// mt-arenas cell: one thread cache per arena, all filling concurrently;
/// verifies every placement landed in its thread's arena and no two live
/// user ranges overlap.
fn run_mt_arenas(opts: &StudyOpts) -> Json {
    use parking_lot::Mutex;
    use std::sync::Arc;

    let per_thread = (live_target(opts.scale) / 8).max(1024);
    let cfg = config(opts.scale, HeapBackend::BlockLine, ARENA_THREADS);
    let shared = Arc::new(Mutex::new(sanitizer(cfg, false)));
    let mut ranges: Vec<(u64, u64, u32)> = Vec::new();
    let mut arena_ok = true;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ARENA_THREADS)
            .map(|arena| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut tc = ThreadCachedAllocator::with_arena(shared, arena);
                    let mut held = Vec::with_capacity(per_thread as usize);
                    let mut ok = true;
                    for i in 0..per_thread {
                        let size = FILL_SIZES[(i % FILL_SIZES.len() as u64) as usize];
                        let a = tc.alloc(size, Region::Heap).expect("arena sized for fill");
                        ok &= a.placement.map(|p| p.arena) == Some(arena);
                        held.push(a);
                    }
                    let ranges: Vec<(u64, u64, u32)> = held
                        .iter()
                        .map(|a| (a.base.raw(), a.base.raw() + a.size, arena))
                        .collect();
                    for a in held {
                        tc.free(a);
                    }
                    (ranges, ok)
                })
            })
            .collect();
        for h in handles {
            let (r, ok) = h.join().expect("arena thread panicked");
            ranges.extend(r);
            arena_ok &= ok;
        }
    });
    ranges.sort_unstable();
    let overlap_free = ranges.windows(2).all(|w| w[0].1 <= w[1].0);
    let san = shared.lock();
    let c = san.counters();
    Json::obj()
        .field("cell", "mt-arenas")
        .field("threads", u64::from(ARENA_THREADS))
        .field("per_thread", per_thread)
        .field("allocs", c.allocs)
        .field("frees", c.frees)
        .field("arena_affinity", arena_ok)
        .field("overlap_free", overlap_free)
}

/// kernel-sweep cell: the PR 6 backend digest-parity rows, plus the timing
/// ladder under `--wall`.
fn run_kernel_sweep(opts: &StudyOpts) -> Json {
    let digests: Vec<Json> = crate::bench_pr6::digest_parity()
        .iter()
        .map(|d| {
            Json::obj()
                .field("backend", d.backend)
                .field("kernel", d.kernel)
                .field("exec_digest", Json::hex(d.exec_digest))
                .field("counters_digest", Json::hex(d.counters_digest))
        })
        .collect();
    let invariant = {
        let parity = crate::bench_pr6::digest_parity();
        parity.windows(2).all(|w| {
            w[0].exec_digest == w[1].exec_digest && w[0].counters_digest == w[1].counters_digest
        })
    };
    let mut payload = Json::obj()
        .field("cell", "kernel-sweep")
        .field("digests", Json::Array(digests))
        .field("digest_invariant", invariant);
    if opts.wall {
        let cases: Vec<Json> = crate::bench_pr6::timing_sweep()
            .iter()
            .map(|c| {
                Json::obj()
                    .field("kernel", c.kernel.as_str())
                    .field("region_bytes", c.region_bytes)
                    .field("scalar_ns", c.scalar_ns)
                    .field("swar_ns", c.swar_ns)
                    .field("simd_ns", c.simd_ns)
            })
            .collect();
        payload = payload.field("cases", Json::Array(cases));
    }
    payload
}

/// `repro alloc` as a [`Study`].
#[derive(Debug, Clone, Copy)]
pub struct AllocEntry;

impl Study for AllocEntry {
    fn name(&self) -> &'static str {
        "alloc"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(CELLS.iter().map(|c| c.to_string()).collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        match CELLS[index] {
            "fill-freelist" => run_fill(opts, HeapBackend::FreeList),
            "fill-blockline" => run_fill(opts, HeapBackend::BlockLine),
            "churn-freelist" => run_churn(opts, HeapBackend::FreeList),
            "churn-blockline" => run_churn(opts, HeapBackend::BlockLine),
            "poison-pair" => run_poison_pair(opts),
            "mt-arenas" => run_mt_arenas(opts),
            "kernel-sweep" => run_kernel_sweep(opts),
            other => unreachable!("unknown alloc cell {other}"),
        }
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let by_label = |label: &str| -> &Json {
            &records
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("alloc study missing cell `{label}`"))
                .payload
        };
        let opt_f64 = |p: &Json, key: &str| p.get(key).and_then(Json::as_f64);

        let mut t = TextTable::new(vec![
            "cell".into(),
            "live".into(),
            "allocs".into(),
            "peak MiB".into(),
            "blocks".into(),
            "holes".into(),
            "bulk runs".into(),
            "ns/op".into(),
        ]);
        for label in &CELLS[..4] {
            let p = by_label(label);
            let live = study::req_u64(p, "live");
            let peak = p.get("peak_bytes").and_then(Json::as_u64).unwrap_or(0);
            let blocks = p.get("blocks_mapped").and_then(Json::as_u64);
            let holes = p.get("holes_recycled").and_then(Json::as_u64);
            let ns = opt_f64(p, "fill_ns_per_alloc").or(opt_f64(p, "churn_ns_per_op"));
            t.row(vec![
                label.to_string(),
                live.to_string(),
                study::req_u64(p, "allocs").to_string(),
                format!("{:.1}", peak as f64 / (1 << 20) as f64),
                blocks.map_or("-".into(), |b| b.to_string()),
                holes.map_or("-".into(), |h| h.to_string()),
                study::req_u64(p, "bulk_poison_runs").to_string(),
                ns.map_or("-".into(), |n| format!("{n:.0}")),
            ]);
        }

        let pair = by_label("poison-pair");
        let mut report = format!(
            "== Alloc study: block/line heap vs free list ==\n\n{}\n\
             block-granular poisoning: {} bulk runs replaced per-object writes on \
             {} allocations\n",
            t.render(),
            study::req_u64(pair, "granular_bulk_runs"),
            study::req_u64(pair, "live"),
        );
        let speedup = match (
            opt_f64(pair, "per_object_ns_per_alloc"),
            opt_f64(pair, "granular_ns_per_alloc"),
        ) {
            (Some(po), Some(gr)) if gr > 0.0 => {
                report.push_str(&format!(
                    "poison path: per-object {po:.0} ns/alloc, block-granular {gr:.0} \
                     ns/alloc ({:.2}x)\n",
                    po / gr
                ));
                Some(po / gr)
            }
            _ => None,
        };

        let mt = by_label("mt-arenas");
        report.push_str(&format!(
            "mt-arenas: {} threads x {} allocs, arena affinity {}, overlap-free {}\n",
            study::req_u64(mt, "threads"),
            study::req_u64(mt, "per_thread"),
            study::req(mt, "arena_affinity").as_bool().unwrap_or(false),
            study::req(mt, "overlap_free").as_bool().unwrap_or(false),
        ));
        let sweep = by_label("kernel-sweep");
        report.push_str(&format!(
            "kernel sweep digest invariance: {}\n",
            study::req(sweep, "digest_invariant")
                .as_bool()
                .unwrap_or(false)
        ));

        let mut bench = Json::obj()
            .field("bench", "BENCH_PR8")
            .field("live_target", live_target(opts.scale))
            .field(
                "cells",
                Json::Array(
                    records
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .field("name", r.label.as_str())
                                .field("payload", r.payload.clone())
                        })
                        .collect(),
                ),
            );
        if let Some(s) = speedup {
            bench = bench
                .field("granular_speedup", s)
                .field("granular_beats_per_object", s > 1.0);
        }
        if let (Some(fill), Some(live)) = (
            opt_f64(by_label("fill-blockline"), "alloc_mops"),
            by_label("fill-blockline")
                .get("live")
                .and_then(Json::as_u64),
        ) {
            bench = bench
                .field("blockline_fill_mops", fill)
                .field("blockline_live_objects", live);
        }

        Ok(StudyOutput {
            report,
            main_artifacts: vec![("BENCH_PR8.json".to_string(), bench.render())],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> StudyOpts {
        StudyOpts::default()
    }

    #[test]
    fn cell_labels_are_stable() {
        let s = AllocEntry;
        let cells = s.cells(&tiny_opts()).unwrap();
        assert_eq!(cells.len(), 7);
        assert_eq!(cells[0], "fill-freelist");
        assert_eq!(cells[4], "poison-pair");
        assert_eq!(cells[6], "kernel-sweep");
    }

    #[test]
    fn churn_cells_recycle_and_balance() {
        // Exercise the two cheap-ish churn cells at a reduced live target by
        // driving the helpers directly (full cells are the CLI's job).
        for backend in [HeapBackend::FreeList, HeapBackend::BlockLine] {
            let mut san = sanitizer(config(1, backend, 1), false);
            let mut held = Vec::new();
            for i in 0..4096u64 {
                let size = FILL_SIZES[(i % 6) as usize];
                held.push(san.alloc(size, Region::Heap).unwrap());
            }
            for a in held.drain(..) {
                san.free(a.base).unwrap();
            }
            let c = san.counters();
            assert_eq!(c.allocs, 4096);
            assert_eq!(c.frees, 4096);
        }
    }

    #[test]
    fn poison_pair_is_count_identical_and_granular_bulk_writes() {
        let mut per_object = sanitizer(config(1, HeapBackend::BlockLine, 1), false);
        let mut granular = sanitizer(config(1, HeapBackend::BlockLine, 1), true);
        for _ in 0..2048 {
            let a = per_object.alloc(POISON_SIZE, Region::Heap).unwrap();
            let b = granular.alloc(POISON_SIZE, Region::Heap).unwrap();
            assert_eq!(a.base, b.base, "identical address streams");
        }
        assert_eq!(per_object.counters().bulk_poison_runs, 0);
        assert!(granular.counters().bulk_poison_runs > 0);
    }

    #[test]
    fn mt_arenas_cell_partitions() {
        let opts = StudyOpts {
            scale: 1,
            ..StudyOpts::default()
        };
        // Shrink through the private helper shape: run the real cell but at
        // the default scale it allocates live/8 per thread, which is fine in
        // release CI but slow under `cargo test`; sample the invariants with
        // a direct mini-run instead.
        let cfg = config(1, HeapBackend::BlockLine, ARENA_THREADS);
        let shared = std::sync::Arc::new(parking_lot::Mutex::new(sanitizer(cfg, false)));
        let mut all = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ARENA_THREADS)
                .map(|arena| {
                    let shared = std::sync::Arc::clone(&shared);
                    scope.spawn(move || {
                        let mut tc = ThreadCachedAllocator::with_arena(shared, arena);
                        let held: Vec<_> = (0..512)
                            .map(|i| tc.alloc(FILL_SIZES[i % 6], Region::Heap).unwrap())
                            .collect();
                        assert!(held
                            .iter()
                            .all(|a| a.placement.map(|p| p.arena) == Some(arena)));
                        let r: Vec<(u64, u64)> = held
                            .iter()
                            .map(|a| (a.base.raw(), a.base.raw() + a.size))
                            .collect();
                        for a in held {
                            tc.free(a);
                        }
                        r
                    })
                })
                .collect();
            for h in handles {
                all.extend(h.join().unwrap());
            }
        });
        all.sort_unstable();
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].0), "overlap");
        let _ = opts;
    }

    #[test]
    fn kernel_sweep_payload_shape() {
        let p = run_kernel_sweep(&tiny_opts());
        assert_eq!(study::req_str(&p, "cell"), "kernel-sweep");
        assert!(study::req(&p, "digest_invariant").as_bool().unwrap());
        assert_eq!(study::req_array(&p, "digests").len(), 3);
        assert!(p.get("cases").is_none(), "timing only under --wall");
    }
}
