//! Supporting study: memory overhead per sanitizer.
//!
//! Location-based sanitizers trade memory for compatibility (§2.1 discusses
//! how larger metadata "causes excessive memory consumption and
//! significantly affects runtime efficiency"). This study measures, over
//! the SPEC-like suite, each tool's arena footprint relative to native:
//! redzone and rounding waste in the heap's high-water mark, quarantine
//! residency, and the fixed 1/8 shadow mapping.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::spec_suite;

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::Tool;

/// Tools measured.
pub const COLUMNS: [Tool; 4] = [Tool::Native, Tool::GiantSan, Tool::Asan, Tool::Lfp];

/// One benchmark's memory footprint per tool.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Benchmark id.
    pub id: String,
    /// Heap high-water marks in bytes, per column tool.
    pub heap_high_water: Vec<u64>,
    /// Bytes resident in quarantine at exit, per column tool.
    pub quarantined: Vec<u64>,
}

/// The study's result.
#[derive(Debug, Clone)]
pub struct MemoryStudy {
    /// Per-benchmark rows.
    pub rows: Vec<MemoryRow>,
    /// Mean heap overhead ratio vs native, per column (native = 1.0).
    pub mean_heap_ratio: Vec<f64>,
}

/// Runs the memory study at `scale`.
pub fn memory_study(scale: u64) -> MemoryStudy {
    memory_study_with(&BatchRunner::default(), scale)
}

/// [`memory_study`] on an explicit runner (one cell per workload; each cell
/// holds its boxed sessions to inspect the worlds afterwards).
pub fn memory_study_with(runner: &BatchRunner, scale: u64) -> MemoryStudy {
    let cfg = RuntimeConfig::default();
    let suite = spec_suite(scale);
    let rows = runner.map(&suite, |_, w| {
        let mut heap_high_water = Vec::new();
        let mut quarantined = Vec::new();
        for tool in COLUMNS {
            let spec = tool.builder().config(cfg.clone()).spec();
            let mut san = spec.session();
            let plan = spec.plan(&w.program);
            let exec = spec.exec_config();
            let _ = giantsan_ir::run_dyn(&w.program, &w.inputs, san.as_mut(), &plan, &exec);
            heap_high_water.push(san.world().heap().high_water());
            quarantined.push(san.world().quarantined_bytes());
        }
        MemoryRow {
            id: w.id.clone(),
            heap_high_water,
            quarantined,
        }
    });
    let mean_heap_ratio = (0..COLUMNS.len())
        .map(|i| {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r.heap_high_water[0] > 0)
                .map(|r| r.heap_high_water[i] as f64 / r.heap_high_water[0] as f64)
                .collect();
            ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
        })
        .collect();
    MemoryStudy {
        rows,
        mean_heap_ratio,
    }
}

impl MemoryStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut headers = vec!["Programs".to_string()];
        for t in COLUMNS {
            headers.push(format!("{} heap(B)", t.name()));
        }
        for t in COLUMNS.iter().skip(1) {
            headers.push(format!("{} quarantine(B)", t.name()));
        }
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut cells = vec![r.id.clone()];
            cells.extend(r.heap_high_water.iter().map(|v| v.to_string()));
            cells.extend(r.quarantined.iter().skip(1).map(|v| v.to_string()));
            t.row(cells);
        }
        let mut s = t.render();
        s.push_str("\nMean heap high-water ratio vs native: ");
        for (tool, ratio) in COLUMNS.iter().zip(self.mean_heap_ratio.iter()) {
            s.push_str(&format!("{} {:.2}x  ", tool.name(), ratio));
        }
        s.push_str(
            "\n(shadow adds a fixed 1/8 of the address space for the location-based tools;\n\
             LFP's waste is size-class rounding instead of redzones.)\n",
        );
        s
    }
}

/// `repro memory` as a [`Study`]: one cell per SPEC-like workload, each
/// running every column tool and inspecting its world afterwards.
#[derive(Debug, Clone, Copy)]
pub struct MemoryEntry;

impl Study for MemoryEntry {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(spec_suite(opts.scale)
            .iter()
            .map(|w| w.id.clone())
            .collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let cfg = RuntimeConfig::default();
        let suite = spec_suite(opts.scale);
        let w = &suite[index];
        let mut heap_high_water = Vec::new();
        let mut quarantined = Vec::new();
        for tool in COLUMNS {
            let spec = tool.builder().config(cfg.clone()).spec();
            let mut san = spec.session();
            let plan = spec.plan(&w.program);
            let exec = spec.exec_config();
            let _ = giantsan_ir::run_dyn(&w.program, &w.inputs, san.as_mut(), &plan, &exec);
            heap_high_water.push(san.world().heap().high_water());
            quarantined.push(san.world().quarantined_bytes());
        }
        Json::obj()
            .field("id", w.id.as_str())
            .field("heap_high_water", study::u64s(&heap_high_water))
            .field("quarantined", study::u64s(&quarantined))
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let rows: Vec<MemoryRow> = records
            .iter()
            .map(|r| MemoryRow {
                id: study::req_str(&r.payload, "id").to_string(),
                heap_high_water: study::req_u64s(&r.payload, "heap_high_water"),
                quarantined: study::req_u64s(&r.payload, "quarantined"),
            })
            .collect();
        let mean_heap_ratio = (0..COLUMNS.len())
            .map(|i| {
                let ratios: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.heap_high_water[0] > 0)
                    .map(|r| r.heap_high_water[i] as f64 / r.heap_high_water[0] as f64)
                    .collect();
                ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
            })
            .collect();
        let s = MemoryStudy {
            rows,
            mean_heap_ratio,
        };
        Ok(StudyOutput {
            report: format!(
                "== Supporting study: memory overhead ==\n\n{}\n",
                s.render()
            ),
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizers_use_more_heap_than_native() {
        let m = memory_study(1);
        assert_eq!(m.rows.len(), 24);
        // Native ratio is exactly 1; every sanitizer pays something.
        assert!((m.mean_heap_ratio[0] - 1.0).abs() < 1e-9);
        for (i, col) in COLUMNS.iter().enumerate().skip(1) {
            assert!(
                m.mean_heap_ratio[i] > 1.0,
                "{} ratio {:.2}",
                col.name(),
                m.mean_heap_ratio[i]
            );
        }
    }

    #[test]
    fn quarantine_only_exists_for_quarantining_tools() {
        let m = memory_study(1);
        // LFP (last column) never quarantines.
        let lfp_q: u64 = m.rows.iter().map(|r| r.quarantined[3]).sum();
        assert_eq!(lfp_q, 0);
        // The churn-heavy kernels leave bytes in GiantSan's quarantine.
        let gs_q: u64 = m.rows.iter().map(|r| r.quarantined[1]).sum();
        assert!(gs_q > 0);
    }
}
