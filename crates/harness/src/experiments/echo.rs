//! Service smoke study: many tiny, independent sanitizer sessions.
//!
//! `repro echo` is the cheap, deterministic workload the sanitizer service
//! is load-tested with: `--scale N` gives `N` cells, each running `--rounds`
//! fuzz-generated memory-safe programs (seeded from `--seed` and the cell
//! index) under `--tool` and digesting the interpreter results. Cells cost
//! microseconds-to-milliseconds, so thousands of submissions saturate the
//! admission queue without each one monopolising a worker — exactly the
//! regime `loadgen` and `BENCH_PR9.json` measure. Because every payload is a
//! pure function of `(seed, index, rounds, tool)`, lost or duplicated cells
//! shift the job digest, which is what the chaos drill checks.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::fuzz::safe_program;

use crate::faults::splitmix64;
use crate::json::Json;
use crate::matrix::Fnv1a;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::run_tool;

/// `repro echo` as a study: `--scale` cells of `--rounds` tiny sessions.
#[derive(Debug, Clone, Copy)]
pub struct EchoEntry;

impl Study for EchoEntry {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn cells(&self, opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok((0..opts.scale).map(|i| format!("echo-{i:04}")).collect())
    }

    fn run_cell(&self, opts: &StudyOpts, index: usize) -> Json {
        let cfg = RuntimeConfig::small();
        let mut state = opts.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut digest = Fnv1a::new();
        let mut steps = 0u64;
        let mut shadow_loads = 0u64;
        for _ in 0..opts.rounds.max(1) {
            // Cooperative cancellation point: tiny fuzz programs can finish
            // in fewer interpreter steps than the watchdog poll interval,
            // so the cell polls once per round to stay cancellable under a
            // per-cell deadline (a no-op when nothing is armed).
            giantsan_ir::watchdog::poll();
            let seed = splitmix64(&mut state);
            let w = safe_program(seed);
            let out = run_tool(opts.tool, &w.program, &w.inputs, &cfg);
            digest.eat(&out.result.digest().to_le_bytes());
            digest.eat(&out.counters.shadow_loads.to_le_bytes());
            steps += out.result.steps;
            shadow_loads += out.counters.shadow_loads;
        }
        Json::obj()
            .field("digest", Json::hex(digest.finish()))
            .field("steps", steps)
            .field("shadow_loads", shadow_loads)
    }

    fn placeholder(&self, _opts: &StudyOpts, _index: usize) -> Option<Json> {
        // A quarantined cell (panic or watchdog timeout) records a fixed
        // synthetic payload, so the service degrades to a deterministic
        // verdict instead of tearing down the whole job.
        Some(
            Json::obj()
                .field("digest", Json::hex(0))
                .field("steps", 0u64)
                .field("shadow_loads", 0u64)
                .field("quarantined", true),
        )
    }

    fn render(&self, opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut t = TextTable::new(vec![
            "Cell".into(),
            "Steps".into(),
            "Shadow loads".into(),
            "Digest".into(),
        ]);
        let mut h = Fnv1a::new();
        let mut steps = 0u64;
        for r in records {
            let d = study::req_hex(&r.payload, "digest");
            h.eat(&d.to_le_bytes());
            steps += study::req_u64(&r.payload, "steps");
            t.row(vec![
                r.label.clone(),
                study::req_u64(&r.payload, "steps").to_string(),
                study::req_u64(&r.payload, "shadow_loads").to_string(),
                format!("{d:#018x}"),
            ]);
        }
        let study_digest = h.finish();
        let mut out = StudyOutput {
            report: format!(
                "== Echo study: {} session cell(s) × {} round(s), tool {} ==\n\n{}\ncampaign \
                 digest: {study_digest:#018x}\n",
                records.len(),
                opts.rounds.max(1),
                opts.tool.name(),
                t.render()
            ),
            json: Some(
                Json::obj()
                    .field("study", "echo")
                    .field("cells", records.len())
                    .field("rounds", opts.rounds.max(1))
                    .field("tool", opts.tool.name())
                    .field("steps", steps)
                    .field("digest", Json::hex(study_digest))
                    .render(),
            ),
            ..Default::default()
        };
        out.artifacts
            .push(("echo_digest.txt".into(), format!("{study_digest:#018x}\n")));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRunner;
    use crate::campaign::Campaign;

    #[test]
    fn echo_cells_are_deterministic_and_thread_invariant() {
        let opts = StudyOpts {
            scale: 6,
            rounds: 2,
            seed: 0xec0,
            ..StudyOpts::default()
        };
        let serial = Campaign::new(&EchoEntry, opts.clone())
            .unwrap()
            .run_all(&BatchRunner::serial());
        let parallel = Campaign::new(&EchoEntry, opts.clone())
            .unwrap()
            .run_all(&BatchRunner::new(4));
        assert_eq!(serial, parallel);
        let a = EchoEntry.render(&opts, &serial).unwrap();
        let b = EchoEntry.render(&opts, &parallel).unwrap();
        assert_eq!(a.report, b.report);
        assert!(a.report.contains("campaign digest"));
    }

    #[test]
    fn different_seeds_give_different_digests() {
        let mk = |seed| {
            let opts = StudyOpts {
                scale: 3,
                seed,
                ..StudyOpts::default()
            };
            let recs = Campaign::new(&EchoEntry, opts.clone())
                .unwrap()
                .run_all(&BatchRunner::serial());
            crate::campaign::records_digest(&recs)
        };
        assert_ne!(mk(1), mk(2));
    }
}
