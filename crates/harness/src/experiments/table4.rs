//! Table 4: detection of Linux-Flaw-Project-like CVE scenarios.

use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::cve_scenarios;

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_tool, Tool};

/// Tools of Table 4, in column order.
pub const COLUMNS: [Tool; 4] = [Tool::GiantSan, Tool::Asan, Tool::AsanMinusMinus, Tool::Lfp];

/// One CVE row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Project name.
    pub project: &'static str,
    /// CVE id.
    pub cve: &'static str,
    /// Per-tool detection verdicts.
    pub detected: Vec<bool>,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Rows in the paper's order.
    pub rows: Vec<Table4Row>,
}

/// Runs every CVE scenario under every tool.
pub fn table4() -> Table4 {
    table4_with(&BatchRunner::default())
}

/// [`table4`] on an explicit runner (one cell per CVE scenario).
pub fn table4_with(runner: &BatchRunner) -> Table4 {
    let cfg = RuntimeConfig::small();
    let scenarios = cve_scenarios();
    let rows = runner.map(&scenarios, |_, c| {
        let detected = COLUMNS
            .iter()
            .map(|tool| run_tool(*tool, &c.program, &c.inputs, &cfg).detected())
            .collect();
        Table4Row {
            project: c.project,
            cve: c.cve,
            detected,
        }
    });
    Table4 { rows }
}

impl Table4 {
    /// Renders the table with ✓/✗ marks like the paper.
    pub fn render(&self) -> String {
        let mut headers = vec!["Program".to_string(), "CVE ID".to_string()];
        headers.extend(COLUMNS.iter().map(|t| t.name().to_string()));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut cells = vec![r.project.to_string(), r.cve.to_string()];
            cells.extend(
                r.detected
                    .iter()
                    .map(|d| if *d { "Y" } else { "-" }.to_string()),
            );
            t.row(cells);
        }
        t.render()
    }

    /// The CVEs a given column tool missed.
    pub fn missed_by(&self, tool: Tool) -> Vec<&'static str> {
        let idx = COLUMNS
            .iter()
            .position(|t| *t == tool)
            .expect("tool not in table");
        self.rows
            .iter()
            .filter(|r| !r.detected[idx])
            .map(|r| r.cve)
            .collect()
    }
}

/// `repro table4` as a [`Study`]: one cell per CVE scenario.
#[derive(Debug, Clone, Copy)]
pub struct Table4Entry;

impl Study for Table4Entry {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(cve_scenarios().iter().map(|c| c.cve.to_string()).collect())
    }

    fn run_cell(&self, _opts: &StudyOpts, index: usize) -> Json {
        let cfg = RuntimeConfig::small();
        let scenarios = cve_scenarios();
        let c = &scenarios[index];
        let detected: Vec<bool> = COLUMNS
            .iter()
            .map(|tool| run_tool(*tool, &c.program, &c.inputs, &cfg).detected())
            .collect();
        Json::obj()
            .field("project", c.project)
            .field("cve", c.cve)
            .field("detected", study::bools(&detected))
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        // Rows carry `&'static str` labels: recover them from the scenario
        // list (records arrive in scenario order) rather than the payload.
        let scenarios = cve_scenarios();
        let rows: Vec<Table4Row> = records
            .iter()
            .map(|r| {
                let c = &scenarios[r.index];
                debug_assert_eq!(c.cve, study::req_str(&r.payload, "cve"));
                Table4Row {
                    project: c.project,
                    cve: c.cve,
                    detected: study::req_bools(&r.payload, "detected"),
                }
            })
            .collect();
        let t = Table4 { rows };
        Ok(StudyOutput {
            report: format!(
                "== Table 4: Linux-Flaw-Project-like CVE detection ==\n\n{}\n",
                t.render()
            ),
            artifacts: vec![("table4.csv".to_string(), crate::csv::table4_csv(&t))],
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_rows() {
        let t = table4();
        assert_eq!(t.rows.len(), 25);
        assert!(t.missed_by(Tool::GiantSan).is_empty());
        assert!(t.missed_by(Tool::Asan).is_empty());
        assert!(t.missed_by(Tool::AsanMinusMinus).is_empty());
        assert_eq!(
            t.missed_by(Tool::Lfp),
            vec!["CVE-2017-12858", "CVE-2017-9165", "CVE-2017-14409"]
        );
    }

    #[test]
    fn render_marks_misses() {
        let t = table4();
        let s = t.render();
        assert!(s.contains("CVE-2017-12858"));
        assert!(s
            .lines()
            .any(|l| l.contains("CVE-2017-9165") && l.contains('-')));
    }
}
