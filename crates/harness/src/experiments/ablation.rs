//! Supporting ablation studies (DESIGN.md §5): the §5.4 reverse-traversal
//! mitigation alternatives, the quarantine-capacity trade-off, and the
//! planner pass-subset sweep.

use giantsan_analysis::{analyze, PassId, SiteFate, ToolProfile};
use giantsan_core::GiantSanOptions;
use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::{figure8_program, quarantine_probe, traversal_program, Pattern};

use crate::batch::BatchRunner;
use crate::cost::CostModel;
use crate::json::Json;
use crate::study::{self, Record, Study, StudyOpts, StudyOutput};
use crate::table::TextTable;
use crate::tool::{run_tool, Tool};

/// One reverse-traversal configuration's outcome.
#[derive(Debug, Clone)]
pub struct ReverseRow {
    /// Configuration label.
    pub label: &'static str,
    /// Modelled time units.
    pub units: f64,
    /// Shadow loads performed.
    pub shadow_loads: u64,
    /// Whether the configuration still catches a redzone-bypassing
    /// underflow (the accuracy half of the trade-off).
    pub catches_bypass: bool,
}

/// The §5.4 study: cost and accuracy of each underflow-handling mode on a
/// reverse traversal, with ASan as the reference point.
pub fn reverse_ablation(size: u64, rounds: u64) -> Vec<ReverseRow> {
    reverse_ablation_with(&BatchRunner::default(), size, rounds)
}

/// [`reverse_ablation`] on an explicit runner (one cell per configuration).
pub fn reverse_ablation_with(runner: &BatchRunner, size: u64, rounds: u64) -> Vec<ReverseRow> {
    let model = CostModel::default();
    let (prog, inputs) = traversal_program(Pattern::Reverse, size, rounds);
    let plan = Tool::GiantSan.plan(&prog);
    let configs: [(&'static str, Option<GiantSanOptions>); 4] = [
        (
            "GiantSan (anchored underflow)",
            Some(GiantSanOptions::default()),
        ),
        (
            "GiantSan + lower-bound cache",
            Some(GiantSanOptions::default().with_reverse_mitigation(true)),
        ),
        (
            "GiantSan, ASan-mode underflow",
            Some(GiantSanOptions::default().with_underflow_anchor(false)),
        ),
        ("ASan", None),
    ];
    runner.map(&configs, |_, (label, options)| {
        let out = match options {
            Some(opts) => Tool::GiantSan
                .builder()
                .options(opts.clone())
                .spec()
                .run_planned(&prog, &plan, &inputs),
            None => run_tool(Tool::Asan, &prog, &inputs, &RuntimeConfig::default()),
        };
        assert!(
            out.result.reports.is_empty(),
            "{label}: clean traversal raised {:?}",
            out.result.reports.first()
        );
        let tool = if options.is_some() {
            Tool::GiantSan
        } else {
            Tool::Asan
        };
        ReverseRow {
            label,
            units: model.native_units(&out) + model.extra_units(tool, &out.counters),
            shadow_loads: out.counters.shadow_loads,
            catches_bypass: catches_underflow_bypass(options.as_ref()),
        }
    })
}

/// Does this configuration catch a redzone-bypassing negative offset?
fn catches_underflow_bypass(options: Option<&GiantSanOptions>) -> bool {
    let (prog, inputs) = giantsan_workloads::underflow_bypass_probe();
    let cfg = RuntimeConfig::small();
    match options {
        Some(opts) => Tool::GiantSan
            .builder()
            .config(cfg)
            .options(opts.clone())
            .spec()
            .run(&prog, &inputs)
            .detected(),
        None => run_tool(Tool::Asan, &prog, &inputs, &cfg).detected(),
    }
}

/// One quarantine-capacity sample.
#[derive(Debug, Clone)]
pub struct QuarantineRow {
    /// Quarantine capacity in bytes.
    pub cap: u64,
    /// Of the churn levels probed, how many UAFs were still detected.
    pub detected: u32,
    /// Number of churn levels probed.
    pub total: u32,
}

/// The quarantine study: UAF detection across churn volumes for several
/// quarantine capacities (the §5.4 "quarantine bypassing" limitation).
pub fn quarantine_ablation() -> Vec<QuarantineRow> {
    quarantine_ablation_with(&BatchRunner::default())
}

/// [`quarantine_ablation`] on an explicit runner (one cell per capacity).
pub fn quarantine_ablation_with(runner: &BatchRunner) -> Vec<QuarantineRow> {
    let churn_levels: Vec<u64> = vec![0, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let caps: Vec<u64> = vec![0, 8 << 10, 128 << 10, 1 << 20, 16 << 20];
    runner.map(&caps, |_, &cap| {
        let spec = Tool::GiantSan
            .builder()
            .config(
                RuntimeConfig::builder()
                    .quarantine_cap(cap)
                    .heap_size(32 << 20)
                    .build(),
            )
            .spec();
        let mut detected = 0;
        for &churn in &churn_levels {
            let (prog, inputs) = quarantine_probe(churn);
            if spec.run(&prog, &inputs).detected() {
                detected += 1;
            }
        }
        QuarantineRow {
            cap,
            detected,
            total: churn_levels.len() as u32,
        }
    })
}

/// One pass-subset variant's static plan shape and dynamic cost on the
/// Figure-8 workload.
#[derive(Debug, Clone)]
pub struct PassAblationRow {
    /// Variant label.
    pub label: &'static str,
    /// Sites hoisted to a pre-header CI.
    pub promoted: usize,
    /// Sites routed through a quasi-bound cache.
    pub cached: usize,
    /// Sites eliminated by merging (leaders not counted).
    pub merged_away: usize,
    /// Sites left as per-execution checks (direct or anchored).
    pub per_access: usize,
    /// Shadow loads the plan actually performed at runtime.
    pub shadow_loads: u64,
}

/// The planner pass-subset sweep: full GiantSan against dropping one
/// optimisation pass at a time. With profiles now declarative
/// [`giantsan_analysis::PassSet`]s, each variant is literally the full
/// profile minus one pass.
pub fn pass_ablation() -> Vec<PassAblationRow> {
    pass_ablation_with(&BatchRunner::default())
}

/// [`pass_ablation`] on an explicit runner (one cell per variant).
pub fn pass_ablation_with(runner: &BatchRunner) -> Vec<PassAblationRow> {
    let variants: [(&'static str, ToolProfile); 5] = [
        ("GiantSan (all passes)", ToolProfile::giantsan()),
        (
            "- cache",
            ToolProfile::giantsan().without_pass(PassId::Cache),
        ),
        (
            "- promote",
            ToolProfile::giantsan().without_pass(PassId::Promote),
        ),
        (
            "- merge",
            ToolProfile::giantsan().without_pass(PassId::Merge),
        ),
        (
            "- anchor",
            ToolProfile::giantsan().without_pass(PassId::Anchor),
        ),
    ];
    let (prog, inputs) = figure8_program(512);
    runner.map(&variants, |_, (label, profile)| {
        let a = analyze(&prog, profile);
        let out = Tool::GiantSan
            .builder()
            .spec()
            .run_planned(&prog, &a.plan, &inputs);
        assert!(
            out.result.reports.is_empty(),
            "{label}: clean workload raised {:?}",
            out.result.reports.first()
        );
        let counts = a.fate_counts();
        let n = |f: SiteFate| counts.get(&f).copied().unwrap_or(0);
        PassAblationRow {
            label,
            promoted: n(SiteFate::Promoted),
            cached: n(SiteFate::Cached),
            merged_away: n(SiteFate::MergedAway),
            per_access: n(SiteFate::Direct) + n(SiteFate::Anchored),
            shadow_loads: out.counters.shadow_loads,
        }
    })
}

/// Renders all three studies.
pub fn render(size: u64, rounds: u64) -> String {
    render_with(&BatchRunner::default(), size, rounds)
}

/// [`render`] on an explicit runner.
pub fn render_with(runner: &BatchRunner, size: u64, rounds: u64) -> String {
    format!(
        "{}{}{}",
        reverse_block(runner, size, rounds),
        quarantine_block(runner),
        pass_block(runner)
    )
}

/// The reverse-traversal section of the report.
pub fn reverse_block(runner: &BatchRunner, size: u64, rounds: u64) -> String {
    let mut out = String::from("-- §5.4 reverse-traversal mitigation alternatives --\n");
    let mut t = TextTable::new(vec![
        "configuration".into(),
        "units".into(),
        "shadow loads".into(),
        "catches redzone-bypass underflow".into(),
    ]);
    for r in reverse_ablation_with(runner, size, rounds) {
        t.row(vec![
            r.label.to_string(),
            format!("{:.0}", r.units),
            r.shadow_loads.to_string(),
            if r.catches_bypass { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe lower-bound cache removes the per-access underflow CI while keeping\n\
         anchored accuracy; dropping the anchor is cheap but reopens the bypass.\n",
    );
    out
}

/// The quarantine-capacity section of the report (leading blank line).
pub fn quarantine_block(runner: &BatchRunner) -> String {
    let mut out = String::from("\n-- quarantine capacity vs use-after-free detection --\n");
    let mut t = TextTable::new(vec![
        "quarantine cap".into(),
        "UAFs detected".into(),
        "churn levels".into(),
    ]);
    for r in quarantine_ablation_with(runner) {
        t.row(vec![
            format!("{} KiB", r.cap >> 10),
            r.detected.to_string(),
            r.total.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nDetection survives exactly as long as the quarantine outlives the churn\n\
         between free and dangling use (§5.4, quarantine bypassing).\n",
    );
    out
}

/// The pass-subset section of the report (leading blank line).
pub fn pass_block(runner: &BatchRunner) -> String {
    let mut out =
        String::from("\n-- planner pass subsets on Figure 8 (full GiantSan minus one pass) --\n");
    let mut t = TextTable::new(vec![
        "variant".into(),
        "promoted".into(),
        "cached".into(),
        "merged away".into(),
        "per-access".into(),
        "shadow loads".into(),
    ]);
    for r in pass_ablation_with(runner) {
        t.row(vec![
            r.label.to_string(),
            r.promoted.to_string(),
            r.cached.to_string(),
            r.merged_away.to_string(),
            r.per_access.to_string(),
            r.shadow_loads.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nEach dropped pass pushes its sites down the pipeline: no promote means\n\
         the affine loop access falls through to the cache; no cache leaves it as\n\
         a per-iteration anchored check and shadow traffic grows accordingly.\n",
    );
    out
}

/// `repro ablation` as a [`Study`]: one cell per section. Each cell renders
/// its whole (deterministic) section serially — the three studies are small;
/// cross-section parallelism is what sharding buys.
#[derive(Debug, Clone, Copy)]
pub struct AblationEntry;

/// The fixed traversal size `repro ablation` has always used.
const ABLATION_SIZE: u64 = 8192;
/// The fixed traversal rounds `repro ablation` has always used.
const ABLATION_ROUNDS: u64 = 2;

impl Study for AblationEntry {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok(vec![
            "reverse".to_string(),
            "quarantine".to_string(),
            "passes".to_string(),
        ])
    }

    fn run_cell(&self, _opts: &StudyOpts, index: usize) -> Json {
        let runner = BatchRunner::serial();
        let (name, block) = match index {
            0 => (
                "reverse",
                reverse_block(&runner, ABLATION_SIZE, ABLATION_ROUNDS),
            ),
            1 => ("quarantine", quarantine_block(&runner)),
            2 => ("passes", pass_block(&runner)),
            other => unreachable!("ablation has 3 cells, asked for {other}"),
        };
        Json::obj().field("name", name).field("block", block)
    }

    fn render(&self, _opts: &StudyOpts, records: &[Record]) -> Result<StudyOutput, String> {
        let mut report = String::from("== Supporting ablations (DESIGN.md §5) ==\n\n");
        for r in records {
            report.push_str(study::req_str(&r.payload, "block"));
        }
        report.push('\n');
        Ok(StudyOutput {
            report,
            ..StudyOutput::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_mitigation_is_cheapest_accurate_mode() {
        let rows = reverse_ablation(4096, 1);
        let by_label = |l: &str| rows.iter().find(|r| r.label.contains(l)).unwrap();
        let anchored = by_label("anchored underflow");
        let mitigated = by_label("lower-bound cache");
        let degraded = by_label("ASan-mode");
        let asan = by_label("ASan");
        // Default anchored mode is slower than ASan on reverse (the paper's
        // 1.39x); both alternatives fix the cost.
        assert!(anchored.units > asan.units);
        assert!(mitigated.units < anchored.units);
        assert!(degraded.units < anchored.units);
        // Accuracy: only the anchored modes catch the bypass.
        assert!(anchored.catches_bypass);
        assert!(mitigated.catches_bypass);
        assert!(!degraded.catches_bypass);
        assert!(!asan.catches_bypass);
        // And the mitigated mode's metadata traffic collapses.
        assert!(mitigated.shadow_loads * 10 < anchored.shadow_loads);
    }

    #[test]
    fn pass_subsets_shift_fates_down_the_pipeline() {
        let rows = pass_ablation();
        let by = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        let full = by("GiantSan (all passes)");
        assert!(full.promoted > 0 && full.cached > 0);
        // Dropping a pass removes exactly its fate; the sites reappear in a
        // later stage.
        let no_cache = by("- cache");
        assert_eq!(no_cache.cached, 0);
        assert!(no_cache.per_access > full.per_access);
        let no_promote = by("- promote");
        assert_eq!(no_promote.promoted, 0);
        assert!(no_promote.cached >= full.cached);
        // Fewer static optimisations can only cost more metadata traffic.
        assert!(no_cache.shadow_loads > full.shadow_loads);
    }

    #[test]
    fn quarantine_detection_is_monotone_in_capacity() {
        let rows = quarantine_ablation();
        for w in rows.windows(2) {
            assert!(
                w[1].detected >= w[0].detected,
                "bigger quarantine must never detect less"
            );
        }
        assert!(rows.first().unwrap().detected < rows.last().unwrap().detected);
        assert_eq!(rows.last().unwrap().detected, rows.last().unwrap().total);
    }
}
