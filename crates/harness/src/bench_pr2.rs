//! Batch-engine benchmark: serial vs parallel matrix execution.
//!
//! `repro bench` runs the PR 2 half of the benchmark suite: the default
//! experiment cell matrix ([`crate::matrix::default_matrix`]) executed once
//! under a serial [`BatchRunner`] and once under the requested thread count,
//! with three artefacts per run emitted to `BENCH_PR2.json`:
//!
//! * **wall-clock** — serial and parallel nanoseconds and their ratio. The
//!   speedup is an honest measurement of *this host*: on a single-core
//!   machine it hovers around 1.0 (there is nothing to parallelise onto),
//!   and the `available_parallelism` field records that context.
//! * **determinism** — the [`crate::matrix::digest`] of both runs, which
//!   must match bit-for-bit, plus byte-equality of the Table 2 CSV emitted
//!   from a serial and a parallel run.
//! * **shape** — cell count and thread counts, so regressions in matrix
//!   coverage are visible in the artefact diff.

use std::fmt::Write as _;
use std::time::Instant;

use giantsan_runtime::RuntimeConfig;

use crate::batch::BatchRunner;
use crate::csv;
use crate::experiments::table2;
use crate::matrix::{default_matrix, digest, run_matrix};

/// The `BENCH_PR2.json` payload.
#[derive(Debug, Clone)]
pub struct BenchPr2Report {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Cells in the matrix.
    pub cells: usize,
    /// Serial wall-clock nanoseconds (best of [`SAMPLES`]).
    pub serial_ns: u128,
    /// Parallel wall-clock nanoseconds (best of [`SAMPLES`]).
    pub parallel_ns: u128,
    /// Matrix digest of the serial run.
    pub digest_serial: u64,
    /// Matrix digest of the parallel run (must equal the serial one).
    pub digest_parallel: u64,
    /// Whether the serial and parallel Table 2 CSVs were byte-identical.
    pub table2_csv_identical: bool,
}

/// Timing samples per configuration (minimum taken).
pub const SAMPLES: u32 = 3;

impl BenchPr2Report {
    /// serial/parallel wall-clock ratio (>1 means the pool won).
    pub fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }

    /// Every determinism check passed.
    pub fn deterministic(&self) -> bool {
        self.digest_serial == self.digest_parallel && self.table2_csv_identical
    }

    /// Renders the artefact as JSON (hand-rolled: numbers and ASCII only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR2\",\n");
        let _ = writeln!(
            s,
            "  \"available_parallelism\": {},\n  \"threads\": {},\n  \"cells\": {},",
            self.available_parallelism, self.threads, self.cells
        );
        let _ = writeln!(
            s,
            "  \"serial_ns\": {},\n  \"parallel_ns\": {},\n  \"speedup\": {:.2},",
            self.serial_ns,
            self.parallel_ns,
            self.speedup()
        );
        let _ = writeln!(
            s,
            "  \"digest_serial\": \"{:016x}\",\n  \"digest_parallel\": \"{:016x}\",",
            self.digest_serial, self.digest_parallel
        );
        let _ = writeln!(
            s,
            "  \"table2_csv_identical\": {},\n  \"deterministic\": {}",
            self.table2_csv_identical,
            self.deterministic()
        );
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "matrix: {} cells | host parallelism: {} | workers: {}",
            self.cells, self.available_parallelism, self.threads
        );
        let _ = writeln!(
            s,
            "serial:   {:>12} ns\nparallel: {:>12} ns  ({:.2}x)",
            self.serial_ns,
            self.parallel_ns,
            self.speedup()
        );
        let _ = writeln!(
            s,
            "digests:  {:016x} (serial) vs {:016x} (parallel) -> {}",
            self.digest_serial,
            self.digest_parallel,
            if self.digest_serial == self.digest_parallel {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        let _ = writeln!(
            s,
            "table2 CSV serial vs parallel: {}",
            if self.table2_csv_identical {
                "byte-identical"
            } else {
                "DIFFERS"
            }
        );
        s
    }
}

/// Runs the batch benchmark with `threads` parallel workers.
pub fn run_bench(threads: usize) -> BenchPr2Report {
    let cells = default_matrix(2, &[0, 1, 2, 3]);
    let cfg = RuntimeConfig::small();
    let serial = BatchRunner::serial();
    let parallel = BatchRunner::new(threads);

    // Warm-up run (also the digest source for the serial side).
    let serial_outcomes = run_matrix(&serial, &cells, &cfg);
    let parallel_outcomes = run_matrix(&parallel, &cells, &cfg);

    let mut serial_ns = u128::MAX;
    let mut parallel_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let _ = run_matrix(&serial, &cells, &cfg);
        serial_ns = serial_ns.min(t.elapsed().as_nanos());
        let t = Instant::now();
        let _ = run_matrix(&parallel, &cells, &cfg);
        parallel_ns = parallel_ns.min(t.elapsed().as_nanos());
    }

    let csv_serial = csv::table2_csv(&table2::table2_with(&serial, 1));
    let csv_parallel = csv::table2_csv(&table2::table2_with(&parallel, 1));

    BenchPr2Report {
        available_parallelism: BatchRunner::available_parallelism(),
        threads: parallel.threads(),
        cells: cells.len(),
        serial_ns,
        parallel_ns,
        digest_serial: digest(&serial_outcomes),
        digest_parallel: digest(&parallel_outcomes),
        table2_csv_identical: csv_serial == csv_parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchPr2Report {
            available_parallelism: 8,
            threads: 4,
            cells: 100,
            serial_ns: 4_000_000,
            parallel_ns: 1_000_000,
            digest_serial: 0xdead,
            digest_parallel: 0xdead,
            table2_csv_identical: true,
        };
        let j = r.to_json();
        assert!(j.contains("\"speedup\": 4.00"), "{j}");
        assert!(j.contains("\"deterministic\": true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(r.deterministic());
    }

    #[test]
    fn digest_mismatch_fails_the_determinism_verdict() {
        let r = BenchPr2Report {
            available_parallelism: 1,
            threads: 4,
            cells: 1,
            serial_ns: 1,
            parallel_ns: 1,
            digest_serial: 1,
            digest_parallel: 2,
            table2_csv_identical: true,
        };
        assert!(!r.deterministic());
    }
}
