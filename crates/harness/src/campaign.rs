//! Durable, shardable campaigns over [`Study`] cell matrices.
//!
//! A *campaign* is a study run turned into an on-disk artifact. The cell
//! range is partitioned into contiguous shards; each shard's records are
//! written as a JSONL blob and committed with an FNV-1a digest into an
//! append-only manifest, so independent processes can each run a slice
//! (`repro <study> --shard i/n --out-dir D`), a killed run can pick up where
//! it left off (`--resume D`), and `repro merge D` recombines the blobs —
//! after digest verification — into a report byte-identical to a monolithic
//! run.
//!
//! Layout of a campaign directory:
//!
//! ```text
//! campaign.json     versioned header: study, params, cell count, shard
//!                   count, spec hash (written once, verified thereafter)
//! manifest.jsonl    one line per completed shard: index, range, digest
//!                   (appending the line is the shard's commit point)
//! shard-0000.jsonl  one compact-JSON record per cell of shard 0
//! ...
//! ```
//!
//! Compatibility is enforced through the **spec hash**: FNV-1a over the
//! format version, the binary version, the study name, every deterministic
//! parameter, and every cell label. Resuming against a changed spec, binary,
//! or cell matrix fails loudly instead of silently merging incompatible
//! results.

use std::fmt;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::batch::BatchRunner;
use crate::json::Json;
use crate::matrix::Fnv1a;
use crate::study::{Record, Study, StudyOpts, StudyRegistry};

/// On-disk format version of `campaign.json` / `manifest.jsonl`.
pub const FORMAT_VERSION: u64 = 1;

/// A `--shard i/n` slice request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index.
    pub index: usize,
    /// Total shard count.
    pub count: usize,
}

impl ShardSpec {
    /// Parses `i/n`, with actionable errors for the classic mistakes.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard `{s}`: expected i/n (e.g. --shard 0/4)"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("bad shard index `{i}` in `{s}`: expected i/n with integer i"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("bad shard count `{n}` in `{s}`: expected i/n with integer n"))?;
        if count == 0 {
            return Err(format!("bad shard `{s}`: shard count must be at least 1"));
        }
        if index >= count {
            return Err(format!(
                "bad shard `{s}`: shard indices are 0-based, so with {count} shards the valid \
                 range is 0/{count} through {}/{count}",
                count - 1
            ));
        }
        Ok(ShardSpec { index, count })
    }
}

/// The contiguous index range of shard `index` out of `count` over `cells`
/// cells: ranges cover `0..cells` exactly once, earlier shards take the
/// remainder, and the partition depends only on `(cells, count)`.
pub fn shard_range(cells: usize, index: usize, count: usize) -> Range<usize> {
    let base = cells / count;
    let extra = cells % count;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..start + len
}

/// What went wrong with a campaign operation.
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O failure on the given path.
    Io(std::io::Error, PathBuf),
    /// A malformed or internally inconsistent campaign artifact.
    Invalid(String),
    /// The on-disk campaign was produced by an incompatible spec (different
    /// study, parameters, cell matrix, or binary).
    SpecMismatch(String),
    /// The campaign has shards that never completed.
    Incomplete {
        /// The missing shard indices.
        missing: Vec<usize>,
    },
    /// One or more shards failed to commit during a resume (for example a
    /// full disk while writing a blob). Every *other* shard still ran and
    /// checkpointed; only the listed shards need a retry.
    ShardsQuarantined {
        /// `(shard index, error)` for every shard whose commit failed.
        failed: Vec<(usize, String)>,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e, p) => write!(f, "{}: {e}", p.display()),
            CampaignError::Invalid(m) => write!(f, "invalid campaign: {m}"),
            CampaignError::SpecMismatch(m) => write!(f, "campaign spec mismatch: {m}"),
            CampaignError::Incomplete { missing } => write!(
                f,
                "campaign is incomplete: shard(s) {missing:?} have not been run (run them with \
                 --shard i/n or finish the campaign with --resume)"
            ),
            CampaignError::ShardsQuarantined { failed } => {
                let indices: Vec<usize> = failed.iter().map(|(s, _)| *s).collect();
                write!(
                    f,
                    "shard(s) {indices:?} failed to commit and were quarantined (first: shard \
                     {}: {}); every other shard checkpointed — re-run --resume to retry only \
                     the quarantined shard(s)",
                    failed[0].0, failed[0].1
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

fn io_err(e: std::io::Error, p: &Path) -> CampaignError {
    CampaignError::Io(e, p.to_path_buf())
}

/// Resume bookkeeping: which shards were reused vs run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Shards found complete in the manifest and loaded from their blobs.
    pub reused: Vec<usize>,
    /// Shards executed by this invocation.
    pub ran: Vec<usize>,
}

/// A study bound to concrete opts, with its cell labels and spec hash.
pub struct Campaign<'a> {
    study: &'a dyn Study,
    opts: StudyOpts,
    labels: Vec<String>,
    spec_hash: u64,
}

impl fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("study", &self.study.name())
            .field("cells", &self.labels.len())
            .field("spec_hash", &format_args!("{:#018x}", self.spec_hash))
            .finish()
    }
}

impl<'a> Campaign<'a> {
    /// Binds `study` to `opts`, materialising the cell labels and the spec
    /// hash.
    pub fn new(study: &'a dyn Study, opts: StudyOpts) -> Result<Campaign<'a>, CampaignError> {
        let labels = study.cells(&opts).map_err(CampaignError::Invalid)?;
        let mut h = Fnv1a::new();
        h.eat(format!("giantsan-campaign-v{FORMAT_VERSION}\n").as_bytes());
        h.eat(env!("CARGO_PKG_VERSION").as_bytes());
        h.eat(b"\n");
        h.eat(study.name().as_bytes());
        h.eat(b"\n");
        for (k, v) in opts.params() {
            h.eat(format!("{k}={v}\n").as_bytes());
        }
        h.eat(&(labels.len() as u64).to_le_bytes());
        for l in &labels {
            h.eat(l.as_bytes());
            h.eat(b"\n");
        }
        Ok(Campaign {
            study,
            opts,
            labels,
            spec_hash: h.finish(),
        })
    }

    /// The bound study.
    pub fn study(&self) -> &dyn Study {
        self.study
    }

    /// The bound opts.
    pub fn opts(&self) -> &StudyOpts {
        &self.opts
    }

    /// The cell labels, in matrix order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The campaign's compatibility fingerprint.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// Runs the whole matrix in one batch (no checkpointing) — the
    /// monolithic path plain `repro <study>` takes. Sharded and resumed runs
    /// must merge to exactly these records.
    pub fn run_all(&self, runner: &BatchRunner) -> Vec<Record> {
        let payloads = self
            .study
            .run_range(&self.opts, 0..self.labels.len(), runner);
        self.records_from(0, payloads)
    }

    fn records_from(&self, start: usize, payloads: Vec<Json>) -> Vec<Record> {
        payloads
            .into_iter()
            .enumerate()
            .map(|(off, payload)| Record {
                index: start + off,
                label: self.labels[start + off].clone(),
                payload,
            })
            .collect()
    }

    fn header_json(&self, shards: usize) -> String {
        let params = self
            .opts
            .params()
            .into_iter()
            .fold(Json::obj(), |o, (k, v)| o.field(k, v));
        Json::obj()
            .field("format", FORMAT_VERSION)
            .field("binary", env!("CARGO_PKG_VERSION"))
            .field("study", self.study.name())
            .field("params", params)
            .field("cells", self.labels.len())
            .field("shards", shards)
            .field("spec_hash", Json::hex(self.spec_hash))
            .render()
    }

    /// Creates (or re-validates) the campaign directory for `shards` shards.
    ///
    /// First caller wins the header write; every later caller — the other
    /// shard processes, resumes, merges — verifies the stored spec hash and
    /// shard count against its own and fails loudly on any drift.
    pub fn init_dir(&self, dir: &Path, shards: usize) -> Result<(), CampaignError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(e, dir))?;
        let path = dir.join("campaign.json");
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => f
                .write_all(self.header_json(shards).as_bytes())
                .map_err(|e| io_err(e, &path)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let header = read_header(dir)?;
                self.check_header(&header, dir)?;
                if header.shards != shards {
                    return Err(CampaignError::SpecMismatch(format!(
                        "campaign at {} was initialised with {} shard(s) but this invocation \
                         asked for {shards}; every shard of one campaign must use the same \
                         --shard denominator",
                        dir.display(),
                        header.shards
                    )));
                }
                Ok(())
            }
            Err(e) => Err(io_err(e, &path)),
        }
    }

    fn check_header(&self, header: &Header, dir: &Path) -> Result<(), CampaignError> {
        if header.spec_hash != self.spec_hash {
            return Err(CampaignError::SpecMismatch(format!(
                "campaign at {} was written for spec {:#018x} (study `{}`, binary {}), but this \
                 invocation computes spec {:#018x} (study `{}`, binary {}). The study flags, the \
                 binary, or the cell matrix changed; results cannot be mixed. Start a fresh \
                 --out-dir, or re-run with the original flags and binary.",
                dir.display(),
                header.spec_hash,
                header.study,
                header.binary,
                self.spec_hash,
                self.study.name(),
                env!("CARGO_PKG_VERSION"),
            )));
        }
        Ok(())
    }

    /// Runs one shard into `dir`, committing its blob to the manifest.
    ///
    /// Returns `false` if the shard was already complete (nothing ran). The
    /// blob is written in full before the manifest line — the commit point —
    /// is appended, so a crash mid-shard leaves at most an uncommitted blob
    /// that the next attempt overwrites.
    pub fn run_shard(
        &self,
        dir: &Path,
        shard: ShardSpec,
        runner: &BatchRunner,
    ) -> Result<bool, CampaignError> {
        self.init_dir(dir, shard.count)?;
        let manifest = read_manifest(dir)?;
        if manifest.iter().any(|m| m.shard == shard.index) {
            return Ok(false);
        }
        let range = shard_range(self.labels.len(), shard.index, shard.count);
        let payloads = self.study.run_range(&self.opts, range.clone(), runner);
        let records = self.records_from(range.start, payloads);
        let mut blob = String::new();
        for r in &records {
            blob.push_str(&record_line(r));
            blob.push('\n');
        }
        let blob_path = dir.join(blob_name(shard.index));
        if let Err(e) = write_blob(&blob_path, &blob) {
            // Never leave a partial blob behind a failed write: it was not
            // committed (no manifest line), but a half-written file sitting
            // at the committed name would shadow the next attempt's state.
            let _ = std::fs::remove_file(&blob_path);
            return Err(io_err(e, &blob_path));
        }
        let digest = crate::matrix::fnv1a(blob.as_bytes());
        let line = Json::obj()
            .field("shard", shard.index)
            .field("start", range.start)
            .field("len", range.end - range.start)
            .field("digest", Json::hex(digest))
            .render_compact();
        let manifest_path = dir.join("manifest.jsonl");
        // A torn final line (crash mid-append) was never a commit; truncate
        // it before appending, or the new commit line would fuse with the
        // half-written one and corrupt both.
        repair_torn_tail(&manifest_path).map_err(|e| io_err(e, &manifest_path))?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)
            .map_err(|e| io_err(e, &manifest_path))?;
        writeln!(f, "{line}").map_err(|e| io_err(e, &manifest_path))?;
        Ok(true)
    }

    /// Resumes the campaign at `dir`: verifies the header, loads every
    /// completed shard from its digest-checked blob, runs the missing ones,
    /// and returns all records in cell order plus what was reused vs run.
    pub fn resume(
        &self,
        dir: &Path,
        runner: &BatchRunner,
    ) -> Result<(Vec<Record>, ResumeStats), CampaignError> {
        let header = read_header(dir)?;
        self.check_header(&header, dir)?;
        let shards = header.shards;
        let manifest = read_manifest(dir)?;
        let mut stats = ResumeStats::default();
        let mut quarantined: Vec<(usize, String)> = Vec::new();
        let mut records = Vec::with_capacity(self.labels.len());
        for shard in 0..shards {
            if manifest.iter().any(|m| m.shard == shard) {
                stats.reused.push(shard);
            } else {
                let spec = ShardSpec {
                    index: shard,
                    count: shards,
                };
                match self.run_shard(dir, spec, runner) {
                    Ok(_) => stats.ran.push(shard),
                    // An I/O failure committing one shard (disk full, torn
                    // write) quarantines that shard but does not abort the
                    // resume: the remaining shards still run and checkpoint,
                    // so the retry only has the quarantined work left.
                    Err(CampaignError::Io(e, p)) => {
                        quarantined.push((shard, format!("{}: {e}", p.display())));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if !quarantined.is_empty() {
            return Err(CampaignError::ShardsQuarantined {
                failed: quarantined,
            });
        }
        let manifest = read_manifest(dir)?;
        for shard in 0..shards {
            let entry = manifest
                .iter()
                .find(|m| m.shard == shard)
                .expect("shard just ran or was complete");
            records.extend(self.load_shard(dir, entry)?);
        }
        Ok((records, stats))
    }

    /// Loads a fully completed campaign's records (the `repro merge` path).
    /// Fails with [`CampaignError::Incomplete`] if any shard is missing.
    pub fn load_records(&self, dir: &Path) -> Result<Vec<Record>, CampaignError> {
        let header = read_header(dir)?;
        self.check_header(&header, dir)?;
        let manifest = read_manifest(dir)?;
        let missing: Vec<usize> = (0..header.shards)
            .filter(|s| !manifest.iter().any(|m| m.shard == *s))
            .collect();
        if !missing.is_empty() {
            return Err(CampaignError::Incomplete { missing });
        }
        let mut records = Vec::with_capacity(self.labels.len());
        for shard in 0..header.shards {
            let entry = manifest.iter().find(|m| m.shard == shard).unwrap();
            records.extend(self.load_shard(dir, entry)?);
        }
        if records.len() != self.labels.len() {
            return Err(CampaignError::Invalid(format!(
                "campaign blobs hold {} record(s) but the matrix has {} cell(s)",
                records.len(),
                self.labels.len()
            )));
        }
        Ok(records)
    }

    fn load_shard(&self, dir: &Path, entry: &ManifestEntry) -> Result<Vec<Record>, CampaignError> {
        let path = dir.join(blob_name(entry.shard));
        let blob = std::fs::read_to_string(&path).map_err(|e| io_err(e, &path))?;
        let digest = crate::matrix::fnv1a(blob.as_bytes());
        if digest != entry.digest {
            return Err(CampaignError::Invalid(format!(
                "{}: blob digest {digest:#018x} does not match the manifest's {:#018x}; the \
                 shard file was modified or truncated after commit",
                path.display(),
                entry.digest
            )));
        }
        let expect = shard_range(self.labels.len(), entry.shard, entry.count);
        let mut records = Vec::new();
        for (i, line) in blob.lines().enumerate() {
            let v = Json::parse(line).map_err(|e| {
                CampaignError::Invalid(format!("{}:{}: {e}", path.display(), i + 1))
            })?;
            let index = v
                .get("cell")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_record(&path, i, "missing `cell`"))?
                as usize;
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| bad_record(&path, i, "missing `label`"))?
                .to_string();
            let payload = v
                .get("payload")
                .cloned()
                .ok_or_else(|| bad_record(&path, i, "missing `payload`"))?;
            if index != entry.start + i {
                return Err(bad_record(&path, i, "cell index out of sequence"));
            }
            if self.labels.get(index) != Some(&label) {
                return Err(CampaignError::SpecMismatch(format!(
                    "{}: cell {index} is labelled `{label}` on disk but the current matrix \
                     computes `{}`; the cell matrix changed",
                    path.display(),
                    self.labels
                        .get(index)
                        .map(String::as_str)
                        .unwrap_or("<out of range>")
                )));
            }
            records.push(Record {
                index,
                label,
                payload,
            });
        }
        if records.len() != entry.len || expect.start != entry.start {
            return Err(CampaignError::Invalid(format!(
                "{}: shard covers cells {}..{} but the manifest promised {}..{}",
                path.display(),
                expect.start,
                expect.start + records.len(),
                entry.start,
                entry.start + entry.len
            )));
        }
        Ok(records)
    }
}

fn bad_record(path: &Path, line: usize, msg: &str) -> CampaignError {
    CampaignError::Invalid(format!("{}:{}: {msg}", path.display(), line + 1))
}

fn blob_name(shard: usize) -> String {
    format!("shard-{shard:04}.jsonl")
}

/// The canonical FNV-1a digest of a record list: the hash of the records
/// rendered exactly as shard-blob lines, in cell order. This is the digest
/// the service reports per job and `loadgen` verifies against a serial run —
/// equality proves zero lost, duplicated, or altered cells.
pub fn records_digest(records: &[Record]) -> u64 {
    let mut h = Fnv1a::new();
    for r in records {
        h.eat(record_line(r).as_bytes());
        h.eat(b"\n");
    }
    h.finish()
}

/// One record rendered as its shard-blob / event-stream line.
pub fn record_line(r: &Record) -> String {
    Json::obj()
        .field("cell", r.index)
        .field("label", r.label.as_str())
        .field("payload", r.payload.clone())
        .render_compact()
}

/// Deterministic write-fault injection for the campaign writer (the
/// disk-full drill). Tests and the chaos harness arm a number of failures;
/// each armed failure makes the next shard-blob write fail after writing a
/// partial prefix — exactly what a full disk does — so the recovery
/// contract can be exercised: a failed write must surface as a quarantined
/// shard, never as a silently committed partial blob.
pub mod faultpoint {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static BLOB_WRITE_FAULTS: AtomicUsize = AtomicUsize::new(0);

    /// Arms `n` blob-write failures (each consumed by one failing write).
    pub fn arm_blob_write_errors(n: usize) {
        BLOB_WRITE_FAULTS.store(n, Ordering::SeqCst);
    }

    /// Consumes one armed failure; `true` means the caller must fail.
    pub(super) fn take_blob_write_error() -> bool {
        BLOB_WRITE_FAULTS
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Disarms any remaining failures (test hygiene).
    pub fn disarm() {
        BLOB_WRITE_FAULTS.store(0, Ordering::SeqCst);
    }
}

/// Writes a shard blob, honouring the [`faultpoint`] injection: an armed
/// fault writes a truncated prefix and then reports `ENOSPC`-style failure,
/// modelling a disk that filled up mid-write.
fn write_blob(path: &Path, blob: &str) -> std::io::Result<()> {
    if faultpoint::take_blob_write_error() {
        let half = blob.len() / 2;
        let _ = std::fs::write(path, &blob.as_bytes()[..half]);
        return Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected disk-full while writing shard blob",
        ));
    }
    std::fs::write(path, blob)
}

/// Parsed `campaign.json`.
#[derive(Debug, Clone)]
pub struct Header {
    /// On-disk format version.
    pub format: u64,
    /// `CARGO_PKG_VERSION` of the writing binary.
    pub binary: String,
    /// Study name.
    pub study: String,
    /// Deterministic study parameters, in written order.
    pub params: Vec<(String, String)>,
    /// Cell count.
    pub cells: usize,
    /// Shard count.
    pub shards: usize,
    /// The spec hash the writer computed.
    pub spec_hash: u64,
}

/// Reads and validates `campaign.json` from `dir`, with an actionable error
/// when the directory was never initialised.
pub fn read_header(dir: &Path) -> Result<Header, CampaignError> {
    let path = dir.join("campaign.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CampaignError::Invalid(format!(
                "{} does not exist — `{}` is not a campaign directory. Point --resume/merge at \
                 the --out-dir of a previous sharded run (it holds campaign.json and \
                 manifest.jsonl).",
                path.display(),
                dir.display()
            )));
        }
        Err(e) => return Err(io_err(e, &path)),
    };
    let v = Json::parse(&text)
        .map_err(|e| CampaignError::Invalid(format!("{}: {e}", path.display())))?;
    let format = v
        .get("format")
        .and_then(Json::as_u64)
        .ok_or_else(|| CampaignError::Invalid(format!("{}: missing `format`", path.display())))?;
    if format != FORMAT_VERSION {
        return Err(CampaignError::Invalid(format!(
            "{}: format version {format} is not supported by this binary (wants {FORMAT_VERSION})",
            path.display()
        )));
    }
    let field_str = |k: &str| -> Result<String, CampaignError> {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| CampaignError::Invalid(format!("{}: missing `{k}`", path.display())))
    };
    let field_u64 = |k: &str| -> Result<u64, CampaignError> {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| CampaignError::Invalid(format!("{}: missing `{k}`", path.display())))
    };
    let params = match v.get("params") {
        Some(Json::Object(fields)) => fields
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| {
                        CampaignError::Invalid(format!(
                            "{}: param `{k}` is not a string",
                            path.display()
                        ))
                    })
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => {
            return Err(CampaignError::Invalid(format!(
                "{}: missing `params` object",
                path.display()
            )))
        }
    };
    Ok(Header {
        format,
        binary: field_str("binary")?,
        study: field_str("study")?,
        params,
        cells: field_u64("cells")? as usize,
        shards: field_u64("shards")? as usize,
        spec_hash: v.get("spec_hash").and_then(Json::as_hex).ok_or_else(|| {
            CampaignError::Invalid(format!("{}: missing `spec_hash`", path.display()))
        })?,
    })
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    shard: usize,
    start: usize,
    len: usize,
    count: usize,
    digest: u64,
}

/// Truncates a torn (newline-less) final line off a manifest file. The
/// half-written line was never a commit — [`read_manifest`] already ignores
/// it — but it must not stay on disk once another commit is appended, or
/// the two would fuse into one unparseable line.
fn repair_torn_tail(path: &Path) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if text.is_empty() || text.ends_with('\n') {
        return Ok(());
    }
    let keep = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep as u64)?;
    Ok(())
}

/// Reads `manifest.jsonl`, deduplicating repeated shard lines (a shard
/// re-run after a crash-before-commit) and rejecting conflicting ones.
///
/// A **torn final line** — the file does not end in a newline and its last
/// line does not parse, the signature of a crash mid-append — is tolerated:
/// the half-written commit simply never happened, the shard reads as
/// incomplete, and the next `--resume` re-runs it. A malformed line anywhere
/// else (or a complete, newline-terminated final line that does not parse)
/// is still corruption and fails loudly.
fn read_manifest(dir: &Path) -> Result<Vec<ManifestEntry>, CampaignError> {
    let path = dir.join("manifest.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(e, &path)),
    };
    let header = read_header(dir)?;
    let lines: Vec<&str> = text.lines().collect();
    let torn_tail_at = if text.ends_with('\n') {
        None
    } else {
        Some(lines.len().saturating_sub(1))
    };
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let tolerate_torn = torn_tail_at == Some(i);
        let parsed = (|| -> Result<ManifestEntry, CampaignError> {
            let v = Json::parse(line).map_err(|e| {
                CampaignError::Invalid(format!("{}:{}: {e}", path.display(), i + 1))
            })?;
            let get = |k: &str| -> Result<u64, CampaignError> {
                v.get(k).and_then(Json::as_u64).ok_or_else(|| {
                    CampaignError::Invalid(format!("{}:{}: missing `{k}`", path.display(), i + 1))
                })
            };
            Ok(ManifestEntry {
                shard: get("shard")? as usize,
                start: get("start")? as usize,
                len: get("len")? as usize,
                count: header.shards,
                digest: v.get("digest").and_then(Json::as_hex).ok_or_else(|| {
                    CampaignError::Invalid(format!(
                        "{}:{}: missing `digest`",
                        path.display(),
                        i + 1
                    ))
                })?,
            })
        })();
        let entry = match parsed {
            Ok(e) => e,
            Err(_) if tolerate_torn => continue,
            Err(e) => return Err(e),
        };
        match entries.iter().find(|e| e.shard == entry.shard) {
            None => entries.push(entry),
            Some(prev) if prev.digest == entry.digest => {}
            Some(prev) => {
                return Err(CampaignError::Invalid(format!(
                    "{}: shard {} committed twice with different digests ({:#018x} vs \
                     {:#018x}); the campaign directory is corrupt",
                    path.display(),
                    entry.shard,
                    prev.digest,
                    entry.digest
                )));
            }
        }
    }
    Ok(entries)
}

/// Opens the campaign at `dir` for merging: reads the header, rebuilds the
/// study opts from the stored parameters, resolves the study in `registry`,
/// and verifies the spec hash before returning the bound campaign.
pub fn open_for_merge<'a>(
    registry: &'a StudyRegistry,
    dir: &Path,
) -> Result<Campaign<'a>, CampaignError> {
    let header = read_header(dir)?;
    let opts = StudyOpts::from_params(&header.params).map_err(CampaignError::Invalid)?;
    let study = registry.get(&header.study).ok_or_else(|| {
        CampaignError::Invalid(format!(
            "campaign study `{}` is not in this binary's registry (knows: {})",
            header.study,
            registry.names().join(", ")
        ))
    })?;
    let campaign = Campaign::new(study, opts)?;
    campaign.check_header(&header, dir)?;
    Ok(campaign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for cells in [0usize, 1, 7, 24, 1050] {
            for count in [1usize, 2, 3, 4, 7, 16] {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..count {
                    let r = shard_range(cells, i, count);
                    assert_eq!(r.start, next, "cells={cells} count={count} shard={i}");
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, cells);
                assert_eq!(next, cells);
            }
        }
    }

    #[test]
    fn shard_spec_errors_are_actionable() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(
            ShardSpec::parse("3/4").unwrap(),
            ShardSpec { index: 3, count: 4 }
        );
        let e = ShardSpec::parse("4/4").unwrap_err();
        assert!(e.contains("0-based"), "{e}");
        assert!(e.contains("3/4"), "{e}");
        let e = ShardSpec::parse("nope").unwrap_err();
        assert!(e.contains("i/n"), "{e}");
        let e = ShardSpec::parse("1/0").unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        assert!(ShardSpec::parse("x/2").is_err());
        assert!(ShardSpec::parse("1/y").is_err());
    }

    #[test]
    fn missing_dir_error_mentions_the_manifest() {
        let e = read_header(Path::new("/nonexistent/campaign-dir")).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("campaign.json"), "{msg}");
        assert!(msg.contains("--out-dir"), "{msg}");
    }
}
