//! Analytic cost model for the performance study.
//!
//! The paper measures seconds on a Xeon workstation; a simulator cannot
//! reproduce absolute times, so Table 2's *shape* is reproduced two ways:
//! wall-clock time of the instrumented interpreter (reported by the
//! criterion benches) and this analytic model, which converts the runtime
//! counters into abstract time units using per-operation weights.
//!
//! The weights are order-of-magnitude estimates of x86 costs for each
//! operation class (a shadow load + compare, a quasi-bound compare, an LFP
//! bounds computation, …), chosen once, before looking at per-benchmark
//! results; they are **not** fitted per workload. The model's honesty test
//! is that the orderings the paper reports emerge from the counter
//! differences, not from the constants.

use giantsan_runtime::Counters;

use crate::tool::{RunOutcome, Tool};

/// Per-operation weights (arbitrary time units; think "nanoseconds").
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Native cost of one executed IR statement (dispatch + ALU).
    pub step: f64,
    /// Native cost of one memory access or memop segment.
    pub access: f64,
    /// One shadow byte load (includes the address arithmetic).
    pub shadow_load: f64,
    /// Branch/compare sequence of a fast check.
    pub fast_check: f64,
    /// Extra branch work of a slow check (on top of its loads).
    pub slow_check: f64,
    /// Quasi-bound cache hit (one compare against a register).
    pub cache_hit: f64,
    /// Quasi-bound refresh (on top of the region check it performs).
    pub cache_update: f64,
    /// Dedicated underflow check overhead (on top of loads).
    pub underflow: f64,
    /// LFP bounds computation (mask/multiply/compare, no memory).
    pub arith_check: f64,
    /// LFP stack-simulation instruction overhead.
    pub stack_sim: f64,
    /// One shadow byte written while poisoning.
    pub shadow_store: f64,
    /// Allocator bookkeeping added by redzones + quarantine (per alloc/free
    /// pair half).
    pub alloc_overhead: f64,
    /// Cost of a *native* `malloc`/`free` call: the baseline a sanitizer's
    /// allocator overhead is measured against.
    pub native_alloc: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            step: 1.0,
            access: 1.0,
            shadow_load: 1.25,
            fast_check: 0.55,
            slow_check: 1.3,
            cache_hit: 0.3,
            cache_update: 0.6,
            underflow: 0.5,
            arith_check: 1.05,
            stack_sim: 2.4,
            // Poisoning runs at memset speed: a fraction of a unit per byte.
            shadow_store: 0.08,
            alloc_overhead: 6.0,
            native_alloc: 8.0,
        }
    }
}

impl CostModel {
    /// Native (baseline) time of a run: interpreter work with no checks,
    /// including the cost of the allocator calls the program makes anyway.
    pub fn native_units(&self, out: &RunOutcome) -> f64 {
        out.result.steps as f64 * self.step
            + out.result.native_work as f64 * self.access
            + (out.counters.allocs + out.counters.frees) as f64 * self.native_alloc
    }

    /// Sanitizer-added time from the counters.
    pub fn extra_units(&self, tool: Tool, c: &Counters) -> f64 {
        let alloc = match tool {
            Tool::Native => 0.0,
            // LFP's allocator only rounds sizes; no redzones or quarantine.
            Tool::Lfp => 2.0,
            _ => self.alloc_overhead,
        };
        c.shadow_loads as f64 * self.shadow_load
            + c.fast_checks as f64 * self.fast_check
            + c.slow_checks as f64 * self.slow_check
            + c.cache_hits as f64 * self.cache_hit
            + c.cache_updates as f64 * self.cache_update
            + c.underflow_checks as f64 * self.underflow
            + c.arith_checks as f64 * self.arith_check
            + c.stack_sim_ops as f64 * self.stack_sim
            + c.shadow_stores as f64 * self.shadow_store
            + (c.allocs + c.frees) as f64 * alloc
    }

    /// Modelled runtime ratio vs. native, as the paper's `R` percentage
    /// (native = 100%).
    pub fn ratio_percent(&self, tool: Tool, native: &RunOutcome, run: &RunOutcome) -> f64 {
        let base = self.native_units(native);
        let total = self.native_units(run) + self.extra_units(tool, &run.counters);
        100.0 * total / base
    }
}

/// Geometric mean of ratio percentages.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::run_tool;
    use giantsan_ir::{Expr, ProgramBuilder};
    use giantsan_runtime::RuntimeConfig;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[100.0, 100.0]) - 100.0).abs() < 1e-9);
        assert!((geomean(&[100.0, 400.0]) - 200.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn model_orders_tools_on_a_promotable_loop() {
        // A bounded affine loop: GiantSan ≈ native, ASan pays per access.
        let mut b = ProgramBuilder::new("loop");
        let p = b.alloc_heap(8192);
        b.for_loop(0i64, 1024i64, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        b.free(p);
        let prog = b.build();
        let m = CostModel::default();
        let cfg = RuntimeConfig::small();
        let native = run_tool(Tool::Native, &prog, &[], &cfg);
        let gs = m.ratio_percent(
            Tool::GiantSan,
            &native,
            &run_tool(Tool::GiantSan, &prog, &[], &cfg),
        );
        let asan = m.ratio_percent(Tool::Asan, &native, &run_tool(Tool::Asan, &prog, &[], &cfg));
        assert!(gs < asan, "GiantSan {gs:.1}% !< ASan {asan:.1}%");
        assert!(gs < 115.0, "promoted loop should be nearly free: {gs:.1}%");
        assert!(asan > 150.0, "ASan pays per access: {asan:.1}%");
    }

    #[test]
    fn native_ratio_is_100() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(64);
        b.store(p, 0i64, 8, 1i64);
        let prog = b.build();
        let m = CostModel::default();
        let native = run_tool(Tool::Native, &prog, &[], &RuntimeConfig::small());
        let r = m.ratio_percent(Tool::Native, &native, &native);
        assert!((r - 100.0).abs() < 1e-9);
    }
}
