#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artefact | Function | CLI |
//! |---|---|---|
//! | Table 2 (SPEC overhead + ablation) | [`experiments::table2::table2`] | `repro table2` |
//! | Figure 10 (check breakdown) | [`experiments::fig10::fig10`] | `repro fig10` |
//! | Table 3 (Juliet detection) | [`experiments::table3::table3`] | `repro table3` |
//! | Table 4 (CVE detection) | [`experiments::table4::table4`] | `repro table4` |
//! | Table 5 (Magma redzones) | [`experiments::table5::table5`] | `repro table5` |
//! | Figure 11 (traversals) | [`experiments::fig11::fig11`] | `repro fig11` |
//! | Fault-injection campaign | [`experiments::fault_study::fault_study`] | `repro faults` |
//! | Telemetry trace (JSONL + Chrome + Prometheus) | [`experiments::trace::trace_study`] | `repro trace` |
//!
//! Timing experiments report both an analytic cost model
//! ([`CostModel`], paper-style overhead percentages) and wall-clock ratios.
//!
//! # Example
//!
//! ```no_run
//! use giantsan_harness::experiments::table2::table2;
//! let t = table2(1);
//! println!("{}", t.render());
//! ```

pub mod batch;
pub mod bench_pr1;
pub mod bench_pr2;
pub mod bench_pr4;
pub mod bench_pr5;
pub mod bench_pr6;
pub mod bench_pr9;
pub mod campaign;
pub mod cli;
pub mod cost;
pub mod csv;
pub mod experiments;
pub mod faults;
pub mod json;
pub mod matrix;
pub mod perfgate;
pub mod serve;
pub mod session;
pub mod study;
mod table;
mod tool;

pub use batch::{
    BatchOutcome, BatchRunner, BatchSpan, BatchTrace, CellFailure, CellSpan, FailureSummary,
    TraceSink,
};
pub use campaign::{Campaign, CampaignError, ResumeStats, ShardSpec};
pub use cli::CliOpts;
pub use cost::{geomean, CostModel};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultySanitizer};
pub use session::{SessionSpec, ToolBuilder};
pub use study::{Record, Study, StudyOpts, StudyOutput, StudyRegistry};
pub use table::{pct, TextTable};
pub use tool::{run_planned, run_tool, RunOutcome, Tool};
