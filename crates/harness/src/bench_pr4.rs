//! Recover-mode overhead benchmark: halt vs recover policy on clean runs.
//!
//! `repro bench` runs the PR 4 half of the benchmark suite: the same clean
//! (bug-free) workload executed under GiantSan with
//! [`RecoveryPolicy::Halt`] and with [`RecoveryPolicy::recover`], emitted to
//! `BENCH_PR4.json`. On a clean run the recover machinery is pure standby —
//! no report is ever admitted, so the dedup table stays empty and the only
//! cost is the policy check on the (never-taken) report path. The artefact
//! asserts that standby cost stays small (< 5% on interpreter throughput)
//! and that both policies produce byte-identical interpreter results.
//!
//! Wall-clock fields vary run to run and host to host; the digest and
//! checksum fields are deterministic.

use std::fmt::Write as _;
use std::time::Instant;

use giantsan_runtime::{RecoveryPolicy, RuntimeConfig};
use giantsan_workloads::spec_workload;

use crate::tool::Tool;

/// Timing samples per configuration (minimum taken).
pub const SAMPLES: u32 = 5;

/// The `BENCH_PR4.json` payload.
#[derive(Debug, Clone)]
pub struct BenchPr4Report {
    /// Interpreter steps of one run (same for both policies).
    pub steps: u64,
    /// Clean-run wall-clock under [`RecoveryPolicy::Halt`] (best of
    /// [`SAMPLES`], nanoseconds).
    pub halt_ns: u128,
    /// Clean-run wall-clock under [`RecoveryPolicy::recover`] (best of
    /// [`SAMPLES`], nanoseconds).
    pub recover_ns: u128,
    /// [`giantsan_ir::ExecResult::digest`] under halt.
    pub digest_halt: u64,
    /// [`giantsan_ir::ExecResult::digest`] under recover (must match).
    pub digest_recover: u64,
}

impl BenchPr4Report {
    /// Recover-mode overhead on clean runs, percent (positive = slower).
    pub fn overhead_pct(&self) -> f64 {
        (self.recover_ns as f64 / self.halt_ns.max(1) as f64 - 1.0) * 100.0
    }

    /// Both policies produced identical interpreter results.
    pub fn deterministic(&self) -> bool {
        self.digest_halt == self.digest_recover
    }

    /// Interpreter steps per second under recover mode.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.recover_ns.max(1) as f64 / 1e9)
    }

    /// Renders the artefact as JSON (hand-rolled: numbers and ASCII only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR4\",\n");
        let _ = writeln!(
            s,
            "  \"steps\": {},\n  \"halt_ns\": {},\n  \"recover_ns\": {},",
            self.steps, self.halt_ns, self.recover_ns
        );
        let _ = writeln!(
            s,
            "  \"overhead_pct\": {:.2},\n  \"recover_steps_per_sec\": {:.0},",
            self.overhead_pct(),
            self.steps_per_sec()
        );
        let _ = writeln!(
            s,
            "  \"digest_halt\": \"{:016x}\",\n  \"digest_recover\": \"{:016x}\",",
            self.digest_halt, self.digest_recover
        );
        let _ = writeln!(s, "  \"deterministic\": {}", self.deterministic());
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "workload: clean SPEC-like mix, {} steps", self.steps);
        let _ = writeln!(
            s,
            "halt:    {:>12} ns\nrecover: {:>12} ns  ({:+.2}% overhead)",
            self.halt_ns,
            self.recover_ns,
            self.overhead_pct()
        );
        let _ = writeln!(
            s,
            "digests: {:016x} (halt) vs {:016x} (recover) -> {}",
            self.digest_halt,
            self.digest_recover,
            if self.deterministic() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        s
    }
}

fn config_with(policy: RecoveryPolicy) -> RuntimeConfig {
    RuntimeConfig::small().to_builder().recovery(policy).build()
}

/// Runs the recover-mode overhead benchmark.
pub fn run_bench() -> BenchPr4Report {
    // A clean workload mix: recover mode must not tax runs that never
    // report. Plans are precomputed so only interpretation is timed.
    let workloads: Vec<_> = ["519.lbm_r", "505.mcf_r", "557.xz_r"]
        .iter()
        .map(|id| spec_workload(id, 2).expect("known workload"))
        .collect();
    let plans: Vec<_> = workloads
        .iter()
        .map(|w| Tool::GiantSan.plan(&w.program))
        .collect();

    let run_all = |policy: RecoveryPolicy| {
        let spec = Tool::GiantSan.builder().config(config_with(policy)).spec();
        let mut steps = 0u64;
        let mut digest = 0u64;
        for (w, plan) in workloads.iter().zip(&plans) {
            let out = spec.run_planned(&w.program, plan, &w.inputs);
            assert!(
                out.result.reports.is_empty(),
                "benchmark workload must be clean"
            );
            steps += out.result.steps;
            digest ^= out.result.digest().rotate_left(steps as u32 % 63);
        }
        (steps, digest)
    };

    // Warm-up (also the digest source).
    let (steps, digest_halt) = run_all(RecoveryPolicy::Halt);
    let (_, digest_recover) = run_all(RecoveryPolicy::recover());

    let mut halt_ns = u128::MAX;
    let mut recover_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let _ = run_all(RecoveryPolicy::Halt);
        halt_ns = halt_ns.min(t.elapsed().as_nanos());
        let t = Instant::now();
        let _ = run_all(RecoveryPolicy::recover());
        recover_ns = recover_ns.min(t.elapsed().as_nanos());
    }

    BenchPr4Report {
        steps,
        halt_ns,
        recover_ns,
        digest_halt,
        digest_recover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchPr4Report {
            steps: 1000,
            halt_ns: 1_000_000,
            recover_ns: 1_020_000,
            digest_halt: 0xbeef,
            digest_recover: 0xbeef,
        };
        let j = r.to_json();
        assert!(j.contains("\"overhead_pct\": 2.00"), "{j}");
        assert!(j.contains("\"deterministic\": true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn policies_agree_on_clean_runs() {
        let r = run_bench();
        assert!(r.deterministic(), "{}", r.render());
        assert!(r.steps > 0);
    }
}
