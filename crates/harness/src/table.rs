//! Minimal fixed-width text tables for experiment output.

/// A simple text table builder.
///
/// # Example
///
/// ```
/// use giantsan_harness::TextTable;
/// let mut t = TextTable::new(vec!["tool".into(), "R".into()]);
/// t.row(vec!["GiantSan".into(), "146.0%".into()]);
/// let s = t.render();
/// assert!(s.contains("GiantSan"));
/// assert!(s.contains("146.0%"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a separator row rendered as dashes.
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                out.push_str(&fmt_row(row, &widths));
            }
        }
        out
    }
}

/// Formats a ratio as the paper prints them, e.g. `146.04%`.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into(), "c".into()]);
        t.row(vec!["x".into(), "1".into(), "2".into()]);
        t.separator();
        t.row(vec!["longer".into(), "10".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("bb"));
        assert!(lines[2].starts_with('x'));
        assert!(lines[4].starts_with("longer"));
        // All data lines are the same width.
        assert_eq!(lines[2].len(), lines[0].len());
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(146.0401), "146.04%");
    }
}
