//! The shared `repro` flag parser: one grammar for every subcommand.
//!
//! Historically each experiment grew its own flag subset; this module gives
//! the uniform surface — [`StudyOpts`] knobs (`--scale`, `--div`,
//! `--rounds`, `--seed`, `--threads`, `--workload`, `--tool`, `--wall`) plus
//! the cross-cutting flags (`--format text|json`, `--out-dir DIR`,
//! `--telemetry PATH`, `--shard i/n`, `--resume DIR`) — on every
//! subcommand. Flag validation happens here so every subcommand reports the
//! same actionable errors.
//!
//! `--out` is kept as an alias of `--out-dir` for existing scripts and CI.

use std::path::PathBuf;
use std::sync::Arc;

use crate::batch::{BatchRunner, TraceSink};
use crate::campaign::ShardSpec;
use crate::matrix::fnv1a;
use crate::study::StudyOpts;
use crate::tool::Tool;

/// The flags shared by every `repro` subcommand.
#[derive(Debug)]
pub struct CliOpts {
    /// The study parameters.
    pub study: StudyOpts,
    /// `--format json`: print the machine-readable document instead of the
    /// text report.
    pub json: bool,
    /// `--out-dir DIR` (alias `--out DIR`): where CSVs, digests, and — for
    /// sharded runs — the campaign checkpoint land.
    pub out_dir: Option<PathBuf>,
    /// `--telemetry PATH`: write the whole invocation's batch-scheduling
    /// spans as a Chrome trace to PATH.
    pub telemetry: Option<PathBuf>,
    /// `--shard i/n`: run only the i-th of n shards into the campaign at
    /// `--out-dir`.
    pub shard: Option<ShardSpec>,
    /// `--resume DIR`: finish the campaign checkpointed at DIR.
    pub resume: Option<PathBuf>,
    /// The scheduling sink created when `--telemetry` was given.
    pub sink: Option<Arc<TraceSink>>,
}

/// Parses a campaign seed: hex with an `0x` prefix, plain decimal, or —
/// for any other spelling — the FNV-1a hash of the raw string, so seeds
/// like `0xg1an75an` are accepted and reproducible.
pub fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    fnv1a(s.as_bytes())
}

/// Parses a tool by its paper column name, listing the alternatives on
/// failure.
pub fn parse_tool(s: &str) -> Result<Tool, String> {
    Tool::parse(s).ok_or_else(|| {
        let names: Vec<&str> = Tool::ALL.iter().map(|t| t.name()).collect();
        format!("unknown tool `{s}` (one of: {})", names.join(", "))
    })
}

/// The one-line flag summary shared by usage strings.
pub const FLAG_USAGE: &str = "[--scale N] [--div N] [--rounds N] [--threads N] [--seed S] \
[--wall] [--out-dir DIR] [--workload W] [--tool T] [--telemetry PATH] [--format text|json] \
[--shard i/n] [--resume DIR]";

/// Parses the flags following the subcommand, cross-validating the
/// combinations that cannot work (`--shard` without `--out-dir`, `--shard`
/// with `--resume`, `--resume` on a directory that does not exist).
pub fn parse_opts(args: &[String]) -> Result<CliOpts, String> {
    let mut opts = CliOpts {
        study: StudyOpts::default(),
        json: false,
        out_dir: None,
        telemetry: None,
        shard: None,
        resume: None,
        sink: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.study.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--div" => {
                opts.study.div = it
                    .next()
                    .ok_or("--div needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --div: {e}"))?
            }
            "--rounds" => {
                opts.study.rounds = it
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?
            }
            "--threads" => {
                opts.study.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--seed" => {
                opts.study.seed = parse_seed(it.next().ok_or("--seed needs a value")?);
            }
            "--wall" => opts.study.wall = true,
            "--out-dir" | "--out" => {
                opts.out_dir = Some(it.next().ok_or("--out-dir needs a directory")?.into());
            }
            "--workload" => {
                opts.study.workload = it.next().ok_or("--workload needs an id")?.clone();
            }
            "--tool" => {
                opts.study.tool = parse_tool(it.next().ok_or("--tool needs a name")?)?;
            }
            "--telemetry" => {
                opts.telemetry = Some(it.next().ok_or("--telemetry needs a path")?.into());
                opts.sink = Some(TraceSink::new());
            }
            "--format" => match it.next().ok_or("--format needs text|json")?.as_str() {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => return Err(format!("bad --format `{other}` (text or json)")),
            },
            "--shard" => {
                opts.shard = Some(ShardSpec::parse(it.next().ok_or("--shard needs i/n")?)?);
            }
            "--resume" => {
                opts.resume = Some(it.next().ok_or("--resume needs a directory")?.into());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.shard.is_some() && opts.out_dir.is_none() {
        return Err(
            "--shard checkpoints into a campaign directory; pass --out-dir DIR (every shard \
             of one campaign must use the same directory)"
                .to_string(),
        );
    }
    if opts.shard.is_some() && opts.resume.is_some() {
        return Err(
            "--shard and --resume are mutually exclusive: --shard runs one slice, --resume \
             finishes whatever slices are missing. Run shards first, then --resume (or `repro \
             merge`) on the same directory."
                .to_string(),
        );
    }
    if let Some(dir) = &opts.resume {
        if !dir.is_dir() {
            return Err(format!(
                "--resume {}: directory does not exist. Point --resume at the --out-dir of a \
                 previous sharded run (it holds campaign.json and manifest.jsonl).",
                dir.display()
            ));
        }
    }
    Ok(opts)
}

impl CliOpts {
    /// Builds the batch runner for this invocation, attaching the
    /// `--telemetry` sink when one was requested.
    pub fn runner(&self) -> BatchRunner {
        let runner = BatchRunner::new(self.study.threads);
        match &self.sink {
            Some(sink) => runner.with_sink(Arc::clone(sink)),
            None => runner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOpts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_opts(&owned)
    }

    #[test]
    fn seed_spellings() {
        assert_eq!(parse_seed("0xff"), 0xff);
        assert_eq!(parse_seed("42"), 42);
        assert_eq!(parse_seed("0xg1an75an"), fnv1a(b"0xg1an75an"));
        assert_eq!(parse_seed("badge"), fnv1a(b"badge"));
    }

    #[test]
    fn out_keeps_its_alias() {
        let a = parse(&["--out", "/tmp/x"]).unwrap();
        let b = parse(&["--out-dir", "/tmp/x"]).unwrap();
        assert_eq!(a.out_dir, b.out_dir);
    }

    #[test]
    fn shard_requires_out_dir() {
        let e = parse(&["--shard", "0/2"]).unwrap_err();
        assert!(e.contains("--out-dir"), "{e}");
        assert!(parse(&["--shard", "0/2", "--out-dir", "/tmp/x"]).is_ok());
    }

    #[test]
    fn shard_and_resume_conflict() {
        let e = parse(&[
            "--shard",
            "0/2",
            "--out-dir",
            "/tmp/x",
            "--resume",
            "/tmp/x",
        ])
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn resume_requires_an_existing_directory() {
        let e = parse(&["--resume", "/nonexistent/campaign"]).unwrap_err();
        assert!(e.contains("does not exist"), "{e}");
        assert!(e.contains("campaign.json"), "{e}");
    }

    #[test]
    fn study_knobs_land_in_study_opts() {
        let o = parse(&[
            "--scale",
            "3",
            "--div",
            "2",
            "--rounds",
            "8",
            "--threads",
            "5",
            "--seed",
            "0x9",
            "--wall",
            "--workload",
            "519.lbm_r",
            "--tool",
            "asan--",
            "--format",
            "json",
        ])
        .unwrap();
        assert_eq!(o.study.scale, 3);
        assert_eq!(o.study.div, 2);
        assert_eq!(o.study.rounds, 8);
        assert_eq!(o.study.threads, 5);
        assert_eq!(o.study.seed, 9);
        assert!(o.study.wall);
        assert_eq!(o.study.workload, "519.lbm_r");
        assert_eq!(o.study.tool, Tool::AsanMinusMinus);
        assert!(o.json);
    }
}
