//! The experiment cell matrix: the unit of work the batch engine shards.
//!
//! A *cell* is one independent run — a tool on a workload at a size with a
//! seed. Every experiment in the harness is some fold over such a matrix;
//! this module gives the cross-cutting form used by the PR 2 batch benchmark
//! (`repro bench` → `BENCH_PR2.json`), the determinism differential test,
//! and the CI smoke job: build the matrix, run it under a
//! [`BatchRunner`], and digest the deterministic outcome fields.
//!
//! Cells carry *descriptions*, not programs: each worker materialises its
//! own [`Program`] from the cell, so the matrix itself is tiny and trivially
//! `Send + Sync`. All outcome fields are modelled quantities (checksums,
//! step counts, counters) — wall-clock never enters a digest, which is what
//! lets serial and parallel runs compare byte-for-byte.

use giantsan_ir::Program;
use giantsan_runtime::{Counters, RuntimeConfig};
use giantsan_workloads::fuzz::{buggy_program, safe_program, InjectedBug};
use giantsan_workloads::{spec_workload, traversal_program, Pattern};

use crate::batch::BatchRunner;
use crate::tool::Tool;

/// What a cell executes (the workload axis of the matrix).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellWorkload {
    /// A SPEC-like workload by id (`"519.lbm_r"`); the cell's size is the
    /// suite scale.
    Spec(&'static str),
    /// A Figure 11 traversal; the cell's size is the buffer size in bytes.
    Traversal(Pattern),
    /// A generated safe program (differential-fuzzing corpus); the cell's
    /// seed picks the program.
    FuzzSafe,
    /// A generated program with one injected bug of the given geometry.
    FuzzBuggy(InjectedBug),
}

/// One independent run: tool × workload × size × seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// The sanitizer configuration under test.
    pub tool: Tool,
    /// What to execute.
    pub workload: CellWorkload,
    /// Scale or buffer size, per [`CellWorkload`].
    pub size: u64,
    /// Program seed (meaningful for the fuzz workloads; recorded for all).
    pub seed: u64,
}

impl Cell {
    /// A stable, human-readable cell id (sorts with the matrix order).
    pub fn label(&self) -> String {
        let w = match &self.workload {
            CellWorkload::Spec(id) => (*id).to_string(),
            CellWorkload::Traversal(p) => format!("traversal-{}", p.name()),
            CellWorkload::FuzzSafe => "fuzz-safe".to_string(),
            CellWorkload::FuzzBuggy(bug) => format!("fuzz-{}", bug.name()),
        };
        format!("{}/{w}/s{}/r{}", self.tool.name(), self.size, self.seed)
    }

    /// Materialises the cell's program and inputs (deterministic).
    pub fn materialize(&self) -> (Program, Vec<i64>) {
        match &self.workload {
            CellWorkload::Spec(id) => {
                let w = spec_workload(id, self.size).expect("unknown SPEC workload id");
                (w.program, w.inputs)
            }
            CellWorkload::Traversal(p) => traversal_program(*p, self.size, 1 + self.seed % 2),
            CellWorkload::FuzzSafe => {
                let fp = safe_program(self.seed);
                (fp.program, fp.inputs)
            }
            CellWorkload::FuzzBuggy(bug) => {
                let fp = buggy_program(self.seed, *bug);
                (fp.program, fp.inputs)
            }
        }
    }

    /// Runs the cell in a fresh session and keeps the deterministic fields.
    pub fn run(&self, config: &RuntimeConfig) -> CellOutcome {
        let (program, inputs) = self.materialize();
        let out = self
            .tool
            .builder()
            .config(config.clone())
            .spec()
            .run(&program, &inputs);
        CellOutcome {
            label: self.label(),
            detected: out.detected(),
            result_digest: out.result.digest(),
            counters: out.counters,
        }
    }
}

/// The deterministic residue of one cell run (no wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell's [`Cell::label`].
    pub label: String,
    /// Whether the run raised a report or crashed.
    pub detected: bool,
    /// [`giantsan_ir::ExecResult::digest`] of the interpreter result.
    pub result_digest: u64,
    /// Sanitizer counters.
    pub counters: Counters,
}

/// The default PR 2 matrix: every tool crossed with a spread of workloads.
///
/// `scale` sizes the SPEC workloads; each fuzz workload contributes one cell
/// per seed in `seeds`. The order is fixed (tool-major) and is the order
/// [`run_matrix`] returns outcomes in, for every thread count.
pub fn default_matrix(scale: u64, seeds: &[u64]) -> Vec<Cell> {
    const SPEC_IDS: [&str; 4] = ["519.lbm_r", "505.mcf_r", "557.xz_r", "520.omnetpp_r"];
    let mut cells = Vec::new();
    for tool in Tool::ALL {
        for id in SPEC_IDS {
            cells.push(Cell {
                tool,
                workload: CellWorkload::Spec(id),
                size: scale,
                seed: 0,
            });
        }
        for pattern in Pattern::ALL {
            cells.push(Cell {
                tool,
                workload: CellWorkload::Traversal(pattern),
                size: 4096,
                seed: 0,
            });
        }
        for &seed in seeds {
            cells.push(Cell {
                tool,
                workload: CellWorkload::FuzzSafe,
                size: 0,
                seed,
            });
            for bug in InjectedBug::ALL {
                cells.push(Cell {
                    tool,
                    workload: CellWorkload::FuzzBuggy(bug),
                    size: 0,
                    seed,
                });
            }
        }
    }
    cells
}

/// Runs a matrix under `runner`, returning outcomes in cell order.
pub fn run_matrix(
    runner: &BatchRunner,
    cells: &[Cell],
    config: &RuntimeConfig,
) -> Vec<CellOutcome> {
    runner.map(cells, |_, cell| cell.run(config))
}

/// FNV-1a digest over every deterministic outcome field, in cell order.
///
/// Equal digests ⇒ the two runs agree on every label, verdict, interpreter
/// result, and counter of every cell — the batch engine's end-to-end
/// determinism check.
pub fn digest(outcomes: &[CellOutcome]) -> u64 {
    let mut h = Fnv1a::new();
    for o in outcomes {
        h.eat(o.label.as_bytes());
        h.eat(&[o.detected as u8]);
        h.eat(&o.result_digest.to_le_bytes());
        // Counters is plain data with a stable Debug form within a build.
        h.eat(format!("{:?}", o.counters).as_bytes());
    }
    h.finish()
}

/// Incremental FNV-1a hasher — the repo's single digest discipline, shared
/// by the matrix digest above, the fault campaign, the telemetry JSONL
/// export, and the campaign layer's spec hashes and shard blobs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    /// Folds `bytes` into the running hash.
    pub fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_outcomes_are_thread_count_invariant() {
        let cells = default_matrix(1, &[0, 1]);
        let cfg = RuntimeConfig::small();
        let serial = run_matrix(&BatchRunner::serial(), &cells, &cfg);
        let parallel = run_matrix(&BatchRunner::new(4), &cells, &cfg);
        assert_eq!(serial, parallel);
        assert_eq!(digest(&serial), digest(&parallel));
    }

    #[test]
    fn digest_is_sensitive_to_any_cell() {
        let cells = default_matrix(1, &[0]);
        let cfg = RuntimeConfig::small();
        let mut outcomes = run_matrix(&BatchRunner::serial(), &cells, &cfg);
        let base = digest(&outcomes);
        outcomes[0].detected = !outcomes[0].detected;
        assert_ne!(base, digest(&outcomes));
    }

    #[test]
    fn labels_are_unique() {
        let cells = default_matrix(1, &[0, 1, 2]);
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert(c.label()), "duplicate cell {}", c.label());
        }
    }

    #[test]
    fn giantsan_detects_every_buggy_fuzz_cell() {
        let cfg = RuntimeConfig::small();
        for seed in 0..3 {
            for bug in InjectedBug::ALL {
                let cell = Cell {
                    tool: Tool::GiantSan,
                    workload: CellWorkload::FuzzBuggy(bug),
                    size: 0,
                    seed,
                };
                assert!(cell.run(&cfg).detected, "missed {}", cell.label());
            }
        }
    }
}
