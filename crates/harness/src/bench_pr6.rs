//! Kernel backend sweep: `scalar` vs `swar` vs `simd` shadow kernels.
//!
//! `repro bench` runs the PR 6 half of the benchmark suite in two parts,
//! emitted to `BENCH_PR6.json`:
//!
//! 1. **Microbenches** — each kernel (`first_ne`, `first_ge`, `fill`,
//!    `write_folded_run`) timed on shadow slices sized to the paper's
//!    region-check scales (1 KiB – 64 KiB of application memory, i.e.
//!    128 – 8192 shadow bytes), once per backend through
//!    [`kernel::select`]. The headline figure is `simd_vs_swar` on the
//!    region scans: ≥ 1.5× on an AVX2 host, honestly ~1.0× where the
//!    `simd` backend resolves to the portable fallback.
//! 2. **Digest parity** — the same clean SPEC-like mix as `BENCH_PR5`, run
//!    end-to-end under each backend via [`kernel::force`]: the interpreter
//!    digest and the sanitizer-counter digest must be byte-identical across
//!    all three, pinning the backend contract ("speed only") at the level
//!    the campaign digests observe.
//!
//! Wall-clock fields vary run to run and host to host; the digest fields
//! and the resolved kernel names are deterministic.

use std::fmt::Write as _;
use std::time::Instant;

use giantsan_shadow::kernel::{self, Backend};
use giantsan_telemetry::NoopRecorder;
use giantsan_workloads::spec_workload;

use crate::experiments::fault_study::fnv1a;
use crate::tool::Tool;

/// Application-region sizes swept (bytes); shadow slices are 1/8 of these.
pub const REGION_SIZES: [u64; 4] = [1024, 4096, 16384, 65536];

/// One (kernel × region size) microbench row.
#[derive(Debug, Clone)]
pub struct KernelCase {
    /// Kernel under test (`first_ne`, `first_ge`, `fill`,
    /// `write_folded_run`).
    pub kernel: String,
    /// Application-region size the shadow slice models (bytes).
    pub region_bytes: u64,
    /// Best-of-5 ns/call per backend.
    pub scalar_ns: f64,
    /// Best-of-5 ns/call, `swar` backend.
    pub swar_ns: f64,
    /// Best-of-5 ns/call, `simd` backend (whatever width resolved).
    pub simd_ns: f64,
}

impl KernelCase {
    /// Speedup of the simd backend over the swar baseline.
    pub fn simd_vs_swar(&self) -> f64 {
        self.swar_ns / self.simd_ns.max(1e-9)
    }

    /// Speedup of the swar backend over the scalar reference.
    pub fn swar_vs_scalar(&self) -> f64 {
        self.scalar_ns / self.swar_ns.max(1e-9)
    }
}

/// End-to-end digests of the clean mix under one forced backend.
#[derive(Debug, Clone)]
pub struct BackendDigest {
    /// Backend label (`scalar` / `swar` / `simd`).
    pub backend: &'static str,
    /// Resolved kernel-table name (e.g. `simd-avx2`).
    pub kernel: &'static str,
    /// XOR-mixed interpreter digests across the mix.
    pub exec_digest: u64,
    /// FNV-1a over the summed sanitizer counters.
    pub counters_digest: u64,
}

/// The `BENCH_PR6.json` payload.
#[derive(Debug, Clone)]
pub struct BenchPr6Report {
    /// What `Backend::Simd` resolved to on this host.
    pub simd_kernel: &'static str,
    /// Microbench rows, kernel-major then size-ascending.
    pub cases: Vec<KernelCase>,
    /// Per-backend end-to-end digests (scalar, swar, simd order).
    pub digests: Vec<BackendDigest>,
}

impl BenchPr6Report {
    /// All backends produced identical interpreter and counter digests.
    pub fn digest_invariant(&self) -> bool {
        self.digests.windows(2).all(|w| {
            w[0].exec_digest == w[1].exec_digest && w[0].counters_digest == w[1].counters_digest
        })
    }

    /// Whether the host's `simd` backend is real vector code (false when it
    /// resolved to the portable fallback, where ~1.0× is the honest result).
    pub fn simd_is_vector(&self) -> bool {
        self.simd_kernel != "simd-portable"
    }

    /// The headline metric: worst simd-vs-swar speedup across the *scan*
    /// kernels at regions of 4 KiB and up.
    pub fn scan_speedup_floor(&self) -> f64 {
        self.cases
            .iter()
            .filter(|c| c.region_bytes >= 4096 && c.kernel.starts_with("first_"))
            .map(KernelCase::simd_vs_swar)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the artefact as JSON (hand-rolled: numbers and ASCII only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR6\",\n");
        let _ = writeln!(s, "  \"simd_kernel\": \"{}\",", self.simd_kernel);
        let _ = writeln!(s, "  \"simd_is_vector\": {},", self.simd_is_vector());
        s.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"kernel\": \"{}\", \"region_bytes\": {}, \"scalar_ns\": {:.1}, \
                 \"swar_ns\": {:.1}, \"simd_ns\": {:.1}, \"swar_vs_scalar\": {:.2}, \
                 \"simd_vs_swar\": {:.2}}}",
                c.kernel,
                c.region_bytes,
                c.scalar_ns,
                c.swar_ns,
                c.simd_ns,
                c.swar_vs_scalar(),
                c.simd_vs_swar()
            );
            s.push_str(if i + 1 < self.cases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"digests\": [\n");
        for (i, d) in self.digests.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"backend\": \"{}\", \"kernel\": \"{}\", \"exec_digest\": \"{:016x}\", \
                 \"counters_digest\": \"{:016x}\"}}",
                d.backend, d.kernel, d.exec_digest, d.counters_digest
            );
            s.push_str(if i + 1 < self.digests.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(
            s,
            "  \"scan_speedup_floor_4k\": {:.2},",
            self.scan_speedup_floor()
        );
        let _ = writeln!(s, "  \"digest_invariant\": {}", self.digest_invariant());
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "simd backend resolved to `{}`{}",
            self.simd_kernel,
            if self.simd_is_vector() {
                ""
            } else {
                " (no vector unit: ~1.0x expected)"
            }
        );
        let _ = writeln!(
            s,
            "{:<18} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8}",
            "kernel", "region", "scalar ns", "swar ns", "simd ns", "sw/sc", "si/sw"
        );
        for c in &self.cases {
            let _ = writeln!(
                s,
                "{:<18} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x {:>7.2}x",
                c.kernel,
                c.region_bytes,
                c.scalar_ns,
                c.swar_ns,
                c.simd_ns,
                c.swar_vs_scalar(),
                c.simd_vs_swar()
            );
        }
        let _ = writeln!(
            s,
            "scan speedup floor (>=4 KiB): {:.2}x",
            self.scan_speedup_floor()
        );
        for d in &self.digests {
            let _ = writeln!(
                s,
                "digests under {:<6} ({:<13}): exec {:016x}, counters {:016x}",
                d.backend, d.kernel, d.exec_digest, d.counters_digest
            );
        }
        let _ = writeln!(
            s,
            "digest invariance across backends: {}",
            if self.digest_invariant() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        s
    }
}

/// Times `f`, returning the best-of-5 nanoseconds per call (batch size grown
/// until one batch takes >= 1 ms; minimum over samples).
fn time_ns<F: FnMut() -> u64>(mut f: F) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if start.elapsed().as_micros() >= 1000 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
    }
    best
}

/// Times one kernel on one backend over a `segs`-byte shadow slice.
///
/// The scan inputs are clean-shadow worst cases (no early exit): a uniform
/// GOOD slice for `first_ne`, and `first_ge` with threshold `GOOD + 1` —
/// exactly the region-check and guardian-walk loops.
fn time_backend(op: &str, backend: Backend, segs: usize) -> f64 {
    use giantsan_shadow::codes::GOOD;
    let k = kernel::select(backend);
    let clean = vec![GOOD; segs];
    let mut out = vec![0u8; segs];
    match op {
        "first_ne" => time_ns(|| k.first_ne(&clean, GOOD).map_or(0, |i| i as u64)),
        "first_ge" => time_ns(|| k.first_ge(&clean, GOOD + 1).map_or(0, |i| i as u64)),
        "fill" => time_ns(|| {
            k.fill(&mut out, GOOD);
            out[segs - 1] as u64
        }),
        "write_folded_run" => time_ns(|| {
            k.write_folded_run(&mut out);
            out[segs - 1] as u64
        }),
        other => unreachable!("unknown kernel op {other}"),
    }
}

/// Runs the clean SPEC-like mix under the *currently active* backend and
/// returns `(exec_digest, counters_digest)`.
fn end_to_end_digests() -> (u64, u64) {
    let workloads: Vec<_> = ["519.lbm_r", "505.mcf_r", "557.xz_r"]
        .iter()
        .map(|id| spec_workload(id, 2).expect("known workload"))
        .collect();
    let spec = Tool::GiantSan.builder().spec();
    let mut steps = 0u64;
    let mut digest = 0u64;
    let mut counter_bytes = Vec::new();
    for w in &workloads {
        let plan = Tool::GiantSan.plan(&w.program);
        let out = spec.run_planned_recorded(&w.program, &plan, &w.inputs, &mut NoopRecorder);
        assert!(
            out.result.reports.is_empty(),
            "benchmark workload must be clean"
        );
        steps += out.result.steps;
        digest ^= out.result.digest().rotate_left(steps as u32 % 63);
        for (name, value) in out.counters.fields() {
            counter_bytes.extend_from_slice(name.as_bytes());
            counter_bytes.extend_from_slice(&value.to_le_bytes());
        }
    }
    (digest, fnv1a(&counter_bytes))
}

/// Runs only the digest-parity half of the sweep: the clean mix end-to-end
/// under each forced backend, restoring the backend that was active on entry
/// (the forced windows are benign: every backend returns identical results
/// by contract). The alloc study backfills these rows into `BENCH_PR8.json`
/// without paying for the timing half.
pub fn digest_parity() -> Vec<BackendDigest> {
    let restore = kernel::active().backend();
    let mut digests = Vec::new();
    for backend in Backend::ALL {
        kernel::force(backend);
        let (exec_digest, counters_digest) = end_to_end_digests();
        digests.push(BackendDigest {
            backend: backend.label(),
            kernel: kernel::active().name(),
            exec_digest,
            counters_digest,
        });
    }
    kernel::force(restore);
    digests
}

/// Runs the timing half of the sweep: every kernel on every backend over the
/// region-size ladder.
pub fn timing_sweep() -> Vec<KernelCase> {
    let mut cases = Vec::new();
    for op in ["first_ne", "first_ge", "fill", "write_folded_run"] {
        for region in REGION_SIZES {
            let segs = (region / 8) as usize;
            cases.push(KernelCase {
                kernel: op.to_string(),
                region_bytes: region,
                scalar_ns: time_backend(op, Backend::Scalar, segs),
                swar_ns: time_backend(op, Backend::Swar, segs),
                simd_ns: time_backend(op, Backend::Simd, segs),
            });
        }
    }
    cases
}

/// Runs the kernel backend sweep (timing + digest parity).
pub fn run_bench() -> BenchPr6Report {
    BenchPr6Report {
        simd_kernel: kernel::select(Backend::Simd).name(),
        cases: timing_sweep(),
        digests: digest_parity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchPr6Report {
            simd_kernel: "simd-avx2",
            cases: vec![KernelCase {
                kernel: "first_ge".into(),
                region_bytes: 4096,
                scalar_ns: 400.0,
                swar_ns: 100.0,
                simd_ns: 40.0,
            }],
            digests: vec![
                BackendDigest {
                    backend: "scalar",
                    kernel: "scalar",
                    exec_digest: 0xbeef,
                    counters_digest: 0xcafe,
                },
                BackendDigest {
                    backend: "simd",
                    kernel: "simd-avx2",
                    exec_digest: 0xbeef,
                    counters_digest: 0xcafe,
                },
            ],
        };
        let j = r.to_json();
        assert!(j.contains("\"simd_vs_swar\": 2.50"), "{j}");
        assert!(j.contains("\"swar_vs_scalar\": 4.00"), "{j}");
        assert!(j.contains("\"digest_invariant\": true"), "{j}");
        assert!(j.contains("\"scan_speedup_floor_4k\": 2.50"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!((r.scan_speedup_floor() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn backends_produce_identical_end_to_end_digests() {
        // The digest-parity half of the bench, without the timing half (which
        // is too slow for the test suite at full sizes).
        let restore = kernel::active().backend();
        let mut digests = Vec::new();
        for backend in Backend::ALL {
            kernel::force(backend);
            digests.push(end_to_end_digests());
        }
        kernel::force(restore);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "backend changed execution: {digests:?}"
        );
    }
}
