//! Telemetry overhead benchmark: [`NoopRecorder`] vs [`TraceRecorder`].
//!
//! `repro bench` runs the PR 5 half of the benchmark suite: the same clean
//! workload mix executed once with the default [`NoopRecorder`] (the
//! recorder monomorphizes out — this is byte-for-byte the historical
//! untraced path) and once with a live [`TraceRecorder`] capturing every
//! check, quasi-bound refresh, and allocator event. The artefact, emitted
//! to `BENCH_PR5.json`, pins the layer's two claims:
//!
//! 1. **Tracing never perturbs execution**: the interpreter digests under
//!    noop and traced runs are identical (asserted in tests, recorded in
//!    the artefact).
//! 2. **Disabled means free**: the noop path carries no telemetry work at
//!    all, so the traced-vs-noop delta *is* the full cost of observation —
//!    reported as `trace_overhead_pct` alongside per-event cost.
//!
//! Wall-clock fields vary run to run and host to host; the digest and
//! event-count fields are deterministic.

use std::fmt::Write as _;
use std::time::Instant;

use giantsan_telemetry::{NoopRecorder, TraceRecorder};
use giantsan_workloads::spec_workload;

use crate::tool::Tool;

/// Timing samples per configuration (minimum taken).
pub const SAMPLES: u32 = 5;

/// The `BENCH_PR5.json` payload.
#[derive(Debug, Clone)]
pub struct BenchPr5Report {
    /// Interpreter steps of one run (same under both recorders).
    pub steps: u64,
    /// Telemetry events one traced run captures (0 dropped at this scale).
    pub events: u64,
    /// Clean-run wall-clock with [`NoopRecorder`] (best of [`SAMPLES`],
    /// nanoseconds).
    pub noop_ns: u128,
    /// Clean-run wall-clock with [`TraceRecorder`] (best of [`SAMPLES`],
    /// nanoseconds).
    pub traced_ns: u128,
    /// [`giantsan_ir::ExecResult::digest`] mix with the recorder compiled
    /// out.
    pub digest_noop: u64,
    /// [`giantsan_ir::ExecResult::digest`] mix with live tracing (must
    /// match).
    pub digest_traced: u64,
}

impl BenchPr5Report {
    /// Cost of live tracing over the compiled-out path, percent
    /// (positive = tracing slower).
    pub fn trace_overhead_pct(&self) -> f64 {
        (self.traced_ns as f64 / self.noop_ns.max(1) as f64 - 1.0) * 100.0
    }

    /// Tracing produced interpreter results identical to the noop path.
    pub fn deterministic(&self) -> bool {
        self.digest_noop == self.digest_traced
    }

    /// Interpreter steps per second on the noop (production) path.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / (self.noop_ns.max(1) as f64 / 1e9)
    }

    /// Marginal wall-clock cost per captured event, nanoseconds.
    pub fn ns_per_event(&self) -> f64 {
        self.traced_ns.saturating_sub(self.noop_ns) as f64 / self.events.max(1) as f64
    }

    /// Renders the artefact as JSON (hand-rolled: numbers and ASCII only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR5\",\n");
        let _ = writeln!(
            s,
            "  \"steps\": {},\n  \"events\": {},\n  \"noop_ns\": {},\n  \"traced_ns\": {},",
            self.steps, self.events, self.noop_ns, self.traced_ns
        );
        let _ = writeln!(
            s,
            "  \"trace_overhead_pct\": {:.2},\n  \"ns_per_event\": {:.1},\n  \"noop_steps_per_sec\": {:.0},",
            self.trace_overhead_pct(),
            self.ns_per_event(),
            self.steps_per_sec()
        );
        let _ = writeln!(
            s,
            "  \"digest_noop\": \"{:016x}\",\n  \"digest_traced\": \"{:016x}\",",
            self.digest_noop, self.digest_traced
        );
        let _ = writeln!(s, "  \"deterministic\": {}", self.deterministic());
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "workload: clean SPEC-like mix, {} steps, {} events when traced",
            self.steps, self.events
        );
        let _ = writeln!(
            s,
            "noop:   {:>12} ns\ntraced: {:>12} ns  ({:+.2}% overhead, {:.1} ns/event)",
            self.noop_ns,
            self.traced_ns,
            self.trace_overhead_pct(),
            self.ns_per_event()
        );
        let _ = writeln!(
            s,
            "digests: {:016x} (noop) vs {:016x} (traced) -> {}",
            self.digest_noop,
            self.digest_traced,
            if self.deterministic() {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        s
    }
}

/// Runs the telemetry overhead benchmark.
pub fn run_bench() -> BenchPr5Report {
    // The same clean mix bench_pr4 times: plans precomputed so only
    // interpretation (and, on the traced arm, event capture) is timed.
    let workloads: Vec<_> = ["519.lbm_r", "505.mcf_r", "557.xz_r"]
        .iter()
        .map(|id| spec_workload(id, 2).expect("known workload"))
        .collect();
    let plans: Vec<_> = workloads
        .iter()
        .map(|w| Tool::GiantSan.plan(&w.program))
        .collect();
    let spec = Tool::GiantSan.builder().spec();

    let run_noop = || {
        let mut steps = 0u64;
        let mut digest = 0u64;
        for (w, plan) in workloads.iter().zip(&plans) {
            let out = spec.run_planned_recorded(&w.program, plan, &w.inputs, &mut NoopRecorder);
            assert!(
                out.result.reports.is_empty(),
                "benchmark workload must be clean"
            );
            steps += out.result.steps;
            digest ^= out.result.digest().rotate_left(steps as u32 % 63);
        }
        (steps, digest)
    };
    let run_traced = || {
        let mut steps = 0u64;
        let mut digest = 0u64;
        let mut events = 0u64;
        for (cell, (w, plan)) in workloads.iter().zip(&plans).enumerate() {
            let mut rec = TraceRecorder::for_cell(cell as u32);
            let out = spec.run_planned_recorded(&w.program, plan, &w.inputs, &mut rec);
            steps += out.result.steps;
            digest ^= out.result.digest().rotate_left(steps as u32 % 63);
            events += rec.events().len() as u64 + rec.dropped();
        }
        (steps, digest, events)
    };

    // Warm-up (also the digest source).
    let (steps, digest_noop) = run_noop();
    let (_, digest_traced, events) = run_traced();

    let mut noop_ns = u128::MAX;
    let mut traced_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let _ = run_noop();
        noop_ns = noop_ns.min(t.elapsed().as_nanos());
        let t = Instant::now();
        let _ = run_traced();
        traced_ns = traced_ns.min(t.elapsed().as_nanos());
    }

    BenchPr5Report {
        steps,
        events,
        noop_ns,
        traced_ns,
        digest_noop,
        digest_traced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchPr5Report {
            steps: 1000,
            events: 250,
            noop_ns: 1_000_000,
            traced_ns: 1_050_000,
            digest_noop: 0xbeef,
            digest_traced: 0xbeef,
        };
        let j = r.to_json();
        assert!(j.contains("\"trace_overhead_pct\": 5.00"), "{j}");
        assert!(j.contains("\"ns_per_event\": 200.0"), "{j}");
        assert!(j.contains("\"deterministic\": true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn tracing_never_perturbs_execution() {
        let r = run_bench();
        assert!(r.deterministic(), "{}", r.render());
        assert!(r.steps > 0);
        assert!(r.events > 0, "traced run must capture events");
    }
}
