//! Hot-path before/after benchmark: the `repro bench` subcommand.
//!
//! Times the word-wide scanning substrate and the monomorphized interpreter
//! against the retained reference implementations, and emits the results as
//! `BENCH_PR1.json`. Three sections:
//!
//! * **region-heavy substrate** — ASan's guardian walk and GiantSan's
//!   byte-wise blame scan, word-wide vs the byte-at-a-time references kept
//!   precisely for this comparison ([`giantsan_baselines::Asan::check_region_reference`],
//!   [`giantsan_core::check_region_bytewise_reference`]);
//! * **dispatch** — one traversal program run through the statically
//!   dispatched interpreter vs the `dyn Sanitizer` instantiation;
//! * **ordering** — GiantSan vs ASan end-to-end, to confirm the
//!   optimisation moved both tools without flipping the paper's relative
//!   results on forward/random traversals.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use giantsan_baselines::Asan;
use giantsan_core::{check, GiantSan};
use giantsan_ir::{run_dyn, ExecConfig};
use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
use giantsan_workloads::{traversal_program, Pattern};

use crate::tool::{run_planned, Tool};

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Case label, `<subject>/<param>`.
    pub name: String,
    /// Reference (pre-optimisation) nanoseconds per iteration.
    pub before_ns: f64,
    /// Optimised nanoseconds per iteration.
    pub after_ns: f64,
}

impl BenchCase {
    /// before/after ratio (>1 means the optimisation won).
    pub fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

/// One relative-ordering probe: the same workload under both tools.
#[derive(Debug, Clone)]
pub struct OrderingCase {
    /// Workload label, `<pattern>/<size>`.
    pub workload: String,
    /// GiantSan nanoseconds per run.
    pub giantsan_ns: f64,
    /// ASan nanoseconds per run.
    pub asan_ns: f64,
}

/// The full artefact.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Before/after cases.
    pub cases: Vec<BenchCase>,
    /// GiantSan-vs-ASan ordering probes.
    pub ordering: Vec<OrderingCase>,
}

/// Times `f`, returning the best-of-5 nanoseconds per call.
///
/// Batch size is grown until one batch takes ≥1 ms so the `Instant` overhead
/// vanishes; the minimum over samples is the standard noise-robust estimator
/// for a deterministic kernel.
fn time_ns<F: FnMut() -> u64>(mut f: F) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_micros() >= 1000 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
    }
    best
}

fn asan_region_cases(out: &mut Vec<BenchCase>) {
    for size in [1024u64, 4096, 16384] {
        let mut san = Asan::new(RuntimeConfig::default());
        let a = san.alloc(size, Region::Heap).expect("bench alloc");
        let before = time_ns(|| {
            san.check_region_reference(a.base, a.base + size, AccessKind::Read)
                .expect("in-bounds");
            size
        });
        let after = time_ns(|| {
            san.check_region(a.base, a.base + size, AccessKind::Read)
                .expect("in-bounds");
            size
        });
        out.push(BenchCase {
            name: format!("asan_region_check/{size}"),
            before_ns: before,
            after_ns: after,
        });
    }
}

fn giantsan_blame_cases(out: &mut Vec<BenchCase>) {
    // The byte-wise blame scan runs on the report path and as the fuzzing
    // oracle; time it over an interior (unaligned, slow-path) window.
    for size in [1024u64, 4096, 16384] {
        let mut san = GiantSan::new(RuntimeConfig::default());
        let a = san.alloc(size + 64, Region::Heap).expect("bench alloc");
        let (lo, hi) = (a.base + 8, a.base + 8 + size);
        let shadow = san.shadow();
        let before = time_ns(|| {
            check::check_region_bytewise_reference(shadow, lo, hi).expect("in-bounds");
            size
        });
        let after = time_ns(|| {
            check::check_region_bytewise(shadow, lo, hi).expect("in-bounds");
            size
        });
        out.push(BenchCase {
            name: format!("giantsan_blame_scan/{size}"),
            before_ns: before,
            after_ns: after,
        });
    }
}

fn dispatch_cases(out: &mut Vec<BenchCase>) {
    let cfg = RuntimeConfig::default();
    let exec = ExecConfig::default();
    for pattern in Pattern::ALL {
        let (prog, inputs) = traversal_program(pattern, 16384, 1);
        let plan = Tool::GiantSan.plan(&prog);
        let before = time_ns(|| {
            let mut san = Tool::GiantSan.sanitizer(&cfg);
            run_dyn(&prog, &inputs, san.as_mut(), &plan, &exec).checksum
        });
        let after = time_ns(|| {
            run_planned(Tool::GiantSan, &prog, &plan, &inputs, &cfg)
                .result
                .checksum
        });
        out.push(BenchCase {
            name: format!("interp_dispatch/{}", pattern.name()),
            before_ns: before,
            after_ns: after,
        });
    }
}

fn ordering_cases(out: &mut Vec<OrderingCase>) {
    let cfg = RuntimeConfig::default();
    for pattern in Pattern::ALL {
        let (prog, inputs) = traversal_program(pattern, 16384, 1);
        let gplan = Tool::GiantSan.plan(&prog);
        let aplan = Tool::Asan.plan(&prog);
        let gs = time_ns(|| {
            run_planned(Tool::GiantSan, &prog, &gplan, &inputs, &cfg)
                .result
                .checksum
        });
        let asan = time_ns(|| {
            run_planned(Tool::Asan, &prog, &aplan, &inputs, &cfg)
                .result
                .checksum
        });
        out.push(OrderingCase {
            workload: format!("{}/16384", pattern.name()),
            giantsan_ns: gs,
            asan_ns: asan,
        });
    }
}

/// Runs every case. Takes a minute or two of pure timing loops.
pub fn run_bench() -> BenchReport {
    let mut cases = Vec::new();
    asan_region_cases(&mut cases);
    giantsan_blame_cases(&mut cases);
    dispatch_cases(&mut cases);
    let mut ordering = Vec::new();
    ordering_cases(&mut ordering);
    BenchReport { cases, ordering }
}

impl BenchReport {
    /// Renders the artefact as JSON (hand-rolled: all fields are numbers and
    /// ASCII labels, no escaping needed).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"BENCH_PR1\",\n  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let sep = if i + 1 < self.cases.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.2}}}{sep}",
                c.name,
                c.before_ns,
                c.after_ns,
                c.speedup()
            );
        }
        s.push_str("  ],\n  \"ordering\": [\n");
        for (i, o) in self.ordering.iter().enumerate() {
            let sep = if i + 1 < self.ordering.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"workload\": \"{}\", \"giantsan_ns\": {:.1}, \"asan_ns\": {:.1}, \"giantsan_faster\": {}}}{sep}",
                o.workload,
                o.giantsan_ns,
                o.asan_ns,
                o.giantsan_ns < o.asan_ns
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable table for the console.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<32} {:>12} {:>12} {:>8}",
            "case", "before ns", "after ns", "speedup"
        );
        for c in &self.cases {
            let _ = writeln!(
                s,
                "{:<32} {:>12.1} {:>12.1} {:>7.2}x",
                c.name,
                c.before_ns,
                c.after_ns,
                c.speedup()
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{:<32} {:>12} {:>12} {:>8}",
            "ordering", "GiantSan ns", "ASan ns", "GS wins"
        );
        for o in &self.ordering {
            let _ = writeln!(
                s,
                "{:<32} {:>12.1} {:>12.1} {:>8}",
                o.workload,
                o.giantsan_ns,
                o.asan_ns,
                o.giantsan_ns < o.asan_ns
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let report = BenchReport {
            cases: vec![BenchCase {
                name: "x/1".into(),
                before_ns: 10.0,
                after_ns: 4.0,
            }],
            ordering: vec![OrderingCase {
                workload: "forward/1".into(),
                giantsan_ns: 1.0,
                asan_ns: 2.0,
            }],
        };
        let j = report.to_json();
        assert!(j.contains("\"speedup\": 2.50"), "{j}");
        assert!(j.contains("\"giantsan_faster\": true"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
