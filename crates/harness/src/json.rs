//! Minimal JSON serialisation shared by the machine-readable exports
//! (`repro plan --format json`, `repro faults --format json`).
//!
//! The repo vendors no serde; studies that expose JSON build a [`Json`]
//! value tree and render it with [`Json::render`]. Rendering is
//! deterministic — object keys keep insertion order, integers and hex
//! digests print exactly, and the studies deliberately exclude wall-clock
//! fields — so the emitted document is byte-identical run to run and can be
//! diffed or digested like the CSVs.
//!
//! # Example
//!
//! ```
//! use giantsan_harness::json::Json;
//! let doc = Json::obj()
//!     .field("study", "demo")
//!     .field("ok", true)
//!     .field("cells", Json::Array(vec![Json::from(1u64), Json::from(2u64)]));
//! assert_eq!(
//!     doc.render(),
//!     "{\n  \"study\": \"demo\",\n  \"ok\": true,\n  \"cells\": [\n    1,\n    2\n  ]\n}\n"
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value tree with a deterministic pretty renderer.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly).
    U64(u64),
    /// A finite float (rendered via Rust's shortest round-trip formatting;
    /// non-finite values render as `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair (builder style). Panics if `self` is not an
    /// object — the misuse is a programming error, not a data error.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// A 64-bit digest as the repo prints them: `0x`-prefixed, zero-padded
    /// hex inside a string (JSON numbers cannot carry u64 exactly).
    pub fn hex(v: u64) -> Json {
        Json::Str(format!("{v:#018x}"))
    }

    /// Renders the tree as pretty-printed JSON (2-space indent, trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the tree as single-line compact JSON (no whitespace, no
    /// trailing newline) — the record format of campaign shard blobs, where
    /// one line is one cell. `Json::parse(&v.render_compact())` round-trips
    /// every value this module can produce (non-finite floats degrade to
    /// `null` on render, as with [`Json::render`]).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document produced by [`Json::render`] or
    /// [`Json::render_compact`] back into a value tree.
    ///
    /// This is a small, strict parser for the dialect this module emits:
    /// objects (insertion order preserved), arrays, strings with the escapes
    /// [`Json::render`] writes (plus `\uXXXX`, `\/`, `\b`, `\f`),
    /// non-negative integers as [`Json::U64`], fractional/exponent numbers as
    /// [`Json::F64`], `true`/`false`/`null`. Returns an error describing the
    /// byte offset on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` ([`Json::U64`] widens losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Decodes a digest string written by [`Json::hex`] (`0x`-prefixed hex).
    pub fn as_hex(&self) -> Option<u64> {
        let s = self.as_str()?;
        let hex = s.strip_prefix("0x")?;
        u64::from_str_radix(hex, 16).ok()
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Campaign blobs never emit surrogate pairs
                            // (escape() only \u-encodes control bytes), so
                            // lone surrogates are rejected rather than paired.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid \\u codepoint at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so this is
                    // always at a char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float && !text.starts_with('-') {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        } else {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_exactly() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(2.5).render(), "2.5\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::hex(0xabc).render(), "\"0x0000000000000abc\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nesting_keeps_key_order_and_balances() {
        let doc = Json::obj()
            .field("b", 1u64)
            .field("a", Json::Array(vec![]))
            .field("c", Json::obj().field("inner", "x"));
        let s = doc.render();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\"a\": []"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_non_object_panics() {
        let _ = Json::Null.field("k", 1u64);
    }

    #[test]
    fn compact_round_trips() {
        let doc = Json::obj()
            .field("u", 18446744073709551615u64)
            .field("f", 123.456789)
            .field("neg", Json::F64(-2.5))
            .field("s", "a\"b\\c\nd\u{1}é")
            .field("digest", Json::hex(0xdeadbeef))
            .field("arr", Json::Array(vec![Json::Null, Json::from(true)]))
            .field("empty_obj", Json::obj())
            .field("empty_arr", Json::Array(vec![]));
        let compact = doc.render_compact();
        assert!(!compact.contains('\n'));
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        // The pretty form parses back to the same tree too.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(Json::parse("-3").unwrap(), Json::F64(-3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn accessors() {
        let doc = Json::obj()
            .field("n", 7u64)
            .field("s", "x")
            .field("b", true)
            .field("h", Json::hex(0xff))
            .field("a", Json::Array(vec![Json::U64(1)]));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("h").and_then(Json::as_hex), Some(0xff));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn float_display_round_trips_through_parse() {
        for &v in &[0.1, 1.0 / 3.0, 9_007_199_254_740_993.0, 1e-12, 123456.789] {
            let rendered = Json::F64(v).render_compact();
            assert_eq!(Json::parse(&rendered).unwrap().as_f64(), Some(v));
        }
    }
}
