//! Minimal JSON serialisation shared by the machine-readable exports
//! (`repro plan --format json`, `repro faults --format json`).
//!
//! The repo vendors no serde; studies that expose JSON build a [`Json`]
//! value tree and render it with [`Json::render`]. Rendering is
//! deterministic — object keys keep insertion order, integers and hex
//! digests print exactly, and the studies deliberately exclude wall-clock
//! fields — so the emitted document is byte-identical run to run and can be
//! diffed or digested like the CSVs.
//!
//! # Example
//!
//! ```
//! use giantsan_harness::json::Json;
//! let doc = Json::obj()
//!     .field("study", "demo")
//!     .field("ok", true)
//!     .field("cells", Json::Array(vec![Json::from(1u64), Json::from(2u64)]));
//! assert_eq!(
//!     doc.render(),
//!     "{\n  \"study\": \"demo\",\n  \"ok\": true,\n  \"cells\": [\n    1,\n    2\n  ]\n}\n"
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value tree with a deterministic pretty renderer.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly).
    U64(u64),
    /// A finite float (rendered via Rust's shortest round-trip formatting;
    /// non-finite values render as `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair (builder style). Panics if `self` is not an
    /// object — the misuse is a programming error, not a data error.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// A 64-bit digest as the repo prints them: `0x`-prefixed, zero-padded
    /// hex inside a string (JSON numbers cannot carry u64 exactly).
    pub fn hex(v: u64) -> Json {
        Json::Str(format!("{v:#018x}"))
    }

    /// Renders the tree as pretty-printed JSON (2-space indent, trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_exactly() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(2.5).render(), "2.5\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::hex(0xabc).render(), "\"0x0000000000000abc\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nesting_keeps_key_order_and_balances() {
        let doc = Json::obj()
            .field("b", 1u64)
            .field("a", Json::Array(vec![]))
            .field("c", Json::obj().field("inner", "x"));
        let s = doc.render();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\"a\": []"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_non_object_panics() {
        let _ = Json::Null.field("k", 1u64);
    }
}
