//! The tool registry: every sanitizer configuration the paper evaluates.

use std::time::{Duration, Instant};

use giantsan_analysis::{analyze, ToolProfile};
use giantsan_baselines::{Asan, AsanMinusMinus, Lfp};
use giantsan_core::GiantSan;
use giantsan_ir::{run, CheckPlan, ExecConfig, ExecResult, Program};
use giantsan_runtime::{Counters, NullSanitizer, RuntimeConfig, Sanitizer};

/// A sanitizer configuration (one column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// Uninstrumented execution (the overhead baseline).
    Native,
    /// Full GiantSan.
    GiantSan,
    /// AddressSanitizer.
    Asan,
    /// ASan-- (elimination-only instrumentation on the ASan runtime).
    AsanMinusMinus,
    /// Low-fat pointers.
    Lfp,
    /// Ablation: GiantSan with history caching only.
    CacheOnly,
    /// Ablation: GiantSan with check elimination only.
    EliminationOnly,
}

impl Tool {
    /// The five columns of the performance study plus the two ablations.
    pub const ALL: [Tool; 7] = [
        Tool::Native,
        Tool::GiantSan,
        Tool::Asan,
        Tool::AsanMinusMinus,
        Tool::Lfp,
        Tool::CacheOnly,
        Tool::EliminationOnly,
    ];

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Native => "Native",
            Tool::GiantSan => "GiantSan",
            Tool::Asan => "ASan",
            Tool::AsanMinusMinus => "ASan--",
            Tool::Lfp => "LFP",
            Tool::CacheOnly => "CacheOnly",
            Tool::EliminationOnly => "EliminationOnly",
        }
    }

    /// The instrumentation capabilities this tool's compiler pass has.
    pub fn profile(self) -> ToolProfile {
        match self {
            Tool::Native => ToolProfile::native(),
            Tool::GiantSan => ToolProfile::giantsan(),
            Tool::Asan => ToolProfile::asan(),
            Tool::AsanMinusMinus => ToolProfile::asan_minus_minus(),
            Tool::Lfp => ToolProfile::lfp(),
            Tool::CacheOnly => ToolProfile::giantsan_cache_only(),
            Tool::EliminationOnly => ToolProfile::giantsan_elimination_only(),
        }
    }

    /// Computes this tool's instrumentation plan for `program`.
    pub fn plan(self, program: &Program) -> CheckPlan {
        match self {
            Tool::Native => CheckPlan::none(program),
            _ => analyze(program, &self.profile()).plan,
        }
    }

    /// Instantiates the runtime over a fresh world.
    pub fn sanitizer(self, config: &RuntimeConfig) -> Box<dyn Sanitizer> {
        match self {
            Tool::Native => Box::new(NullSanitizer::new(config.clone())),
            Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => {
                Box::new(GiantSan::new(config.clone()))
            }
            Tool::Asan => Box::new(Asan::new(config.clone())),
            Tool::AsanMinusMinus => Box::new(AsanMinusMinus::new(config.clone())),
            Tool::Lfp => Box::new(Lfp::new(config.clone())),
        }
    }
}

/// Everything observed from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Interpreter result (reports, termination, work).
    pub result: ExecResult,
    /// Sanitizer counters (shadow loads, check paths, poisoning).
    pub counters: Counters,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl RunOutcome {
    /// `true` if the run raised a report or crashed.
    pub fn detected(&self) -> bool {
        self.result.detected()
    }
}

/// Runs `program` under `tool` with a pre-computed plan (reuse plans when
/// running many inputs against one template).
///
/// Dispatches on the tool *here*, outside the interpreter, so each arm
/// instantiates [`run`] at a concrete sanitizer type: the per-access check
/// calls inline instead of costing a vtable hop per load/store.
pub fn run_planned(
    tool: Tool,
    program: &Program,
    plan: &CheckPlan,
    inputs: &[i64],
    config: &RuntimeConfig,
) -> RunOutcome {
    let exec = ExecConfig {
        halt_on_error: config.halt_on_error,
        ..ExecConfig::default()
    };
    match tool {
        Tool::Native => timed_run(
            &mut NullSanitizer::new(config.clone()),
            program,
            plan,
            inputs,
            &exec,
        ),
        Tool::GiantSan | Tool::CacheOnly | Tool::EliminationOnly => timed_run(
            &mut GiantSan::new(config.clone()),
            program,
            plan,
            inputs,
            &exec,
        ),
        Tool::Asan => timed_run(&mut Asan::new(config.clone()), program, plan, inputs, &exec),
        Tool::AsanMinusMinus => timed_run(
            &mut AsanMinusMinus::new(config.clone()),
            program,
            plan,
            inputs,
            &exec,
        ),
        Tool::Lfp => timed_run(&mut Lfp::new(config.clone()), program, plan, inputs, &exec),
    }
}

fn timed_run<S: Sanitizer>(
    san: &mut S,
    program: &Program,
    plan: &CheckPlan,
    inputs: &[i64],
    exec: &ExecConfig,
) -> RunOutcome {
    let start = Instant::now();
    let result = run(program, inputs, san, plan, exec);
    let wall = start.elapsed();
    RunOutcome {
        result,
        counters: *san.counters(),
        wall,
    }
}

/// Plans and runs in one step.
pub fn run_tool(
    tool: Tool,
    program: &Program,
    inputs: &[i64],
    config: &RuntimeConfig,
) -> RunOutcome {
    let plan = tool.plan(program);
    run_planned(tool, program, &plan, inputs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::ProgramBuilder;

    fn tiny_program() -> (Program, Vec<i64>) {
        let mut b = ProgramBuilder::new("tiny");
        let p = b.alloc_heap(64);
        b.for_loop(0i64, 8i64, |b, i| {
            b.store(p, giantsan_ir::Expr::var(i) * 8, 8, 1i64);
        });
        b.free(p);
        (b.build(), vec![])
    }

    #[test]
    fn every_tool_runs_the_same_program() {
        let (prog, inputs) = tiny_program();
        for tool in Tool::ALL {
            let out = run_tool(tool, &prog, &inputs, &RuntimeConfig::small());
            assert!(!out.detected(), "{} raised on clean code", tool.name());
        }
    }

    #[test]
    fn check_counts_reflect_capabilities() {
        let (prog, inputs) = tiny_program();
        let native = run_tool(Tool::Native, &prog, &inputs, &RuntimeConfig::small());
        let asan = run_tool(Tool::Asan, &prog, &inputs, &RuntimeConfig::small());
        let gs = run_tool(Tool::GiantSan, &prog, &inputs, &RuntimeConfig::small());
        assert_eq!(native.counters.shadow_loads, 0);
        assert_eq!(asan.counters.shadow_loads, 8, "one per store");
        assert!(
            gs.counters.shadow_loads <= 2,
            "promoted loop: one region check"
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in Tool::ALL {
            assert!(seen.insert(t.name()));
        }
    }
}
