//! The tool registry: every sanitizer configuration the paper evaluates.
//!
//! `Tool` is the identity half of the session API: it names a column of
//! Table 2 and knows nothing about configuration. [`Tool::builder`] starts a
//! [`crate::ToolBuilder`], which produces a [`crate::SessionSpec`] — the
//! complete description workers of the batch engine build sessions from. The
//! free functions here ([`run_planned`], [`run_tool`]) are the historical
//! entry points, kept as thin wrappers over the spec API.

use std::time::Duration;

use giantsan_analysis::ToolProfile;
use giantsan_ir::{CheckPlan, ExecResult, Program};
use giantsan_runtime::{Counters, RuntimeConfig, Sanitizer};

use crate::session::ToolBuilder;

/// A sanitizer configuration (one column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// Uninstrumented execution (the overhead baseline).
    Native,
    /// Full GiantSan.
    GiantSan,
    /// AddressSanitizer.
    Asan,
    /// ASan-- (elimination-only instrumentation on the ASan runtime).
    AsanMinusMinus,
    /// Low-fat pointers.
    Lfp,
    /// Ablation: GiantSan with history caching only.
    CacheOnly,
    /// Ablation: GiantSan with check elimination only.
    EliminationOnly,
}

impl Tool {
    /// The five columns of the performance study plus the two ablations.
    pub const ALL: [Tool; 7] = [
        Tool::Native,
        Tool::GiantSan,
        Tool::Asan,
        Tool::AsanMinusMinus,
        Tool::Lfp,
        Tool::CacheOnly,
        Tool::EliminationOnly,
    ];

    /// Parses a tool by its display name, case-insensitively.
    ///
    /// This is the single CLI-facing lookup every `repro` subcommand shares
    /// (`--tool asan--`, `--tool GiantSan`, …).
    pub fn parse(name: &str) -> Option<Tool> {
        Tool::ALL
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(name))
    }

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Native => "Native",
            Tool::GiantSan => "GiantSan",
            Tool::Asan => "ASan",
            Tool::AsanMinusMinus => "ASan--",
            Tool::Lfp => "LFP",
            Tool::CacheOnly => "CacheOnly",
            Tool::EliminationOnly => "EliminationOnly",
        }
    }

    /// Starts building a [`crate::SessionSpec`] for this tool.
    pub fn builder(self) -> ToolBuilder {
        ToolBuilder::new(self)
    }

    /// The instrumentation capabilities this tool's compiler pass has.
    pub fn profile(self) -> ToolProfile {
        self.builder().spec().profile()
    }

    /// Computes this tool's instrumentation plan for `program`.
    pub fn plan(self, program: &Program) -> CheckPlan {
        self.builder().spec().plan(program)
    }

    /// Instantiates the runtime over a fresh world.
    pub fn sanitizer(self, config: &RuntimeConfig) -> Box<dyn Sanitizer> {
        self.builder().config(config.clone()).spec().session()
    }
}

/// Everything observed from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Interpreter result (reports, termination, work).
    pub result: ExecResult,
    /// Sanitizer counters (shadow loads, check paths, poisoning).
    pub counters: Counters,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl RunOutcome {
    /// `true` if the run raised a report or crashed.
    pub fn detected(&self) -> bool {
        self.result.detected()
    }
}

/// Runs `program` under `tool` with a pre-computed plan (reuse plans when
/// running many inputs against one template).
///
/// Thin wrapper over [`crate::SessionSpec::run_planned`], which keeps the
/// monomorphized dispatch: the tool match happens once, outside the
/// interpreter, and per-access checks inline.
pub fn run_planned(
    tool: Tool,
    program: &Program,
    plan: &CheckPlan,
    inputs: &[i64],
    config: &RuntimeConfig,
) -> RunOutcome {
    tool.builder()
        .config(config.clone())
        .spec()
        .run_planned(program, plan, inputs)
}

/// Plans and runs in one step.
pub fn run_tool(
    tool: Tool,
    program: &Program,
    inputs: &[i64],
    config: &RuntimeConfig,
) -> RunOutcome {
    tool.builder()
        .config(config.clone())
        .spec()
        .run(program, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::ProgramBuilder;

    fn tiny_program() -> (Program, Vec<i64>) {
        let mut b = ProgramBuilder::new("tiny");
        let p = b.alloc_heap(64);
        b.for_loop(0i64, 8i64, |b, i| {
            b.store(p, giantsan_ir::Expr::var(i) * 8, 8, 1i64);
        });
        b.free(p);
        (b.build(), vec![])
    }

    #[test]
    fn every_tool_runs_the_same_program() {
        let (prog, inputs) = tiny_program();
        for tool in Tool::ALL {
            let out = run_tool(tool, &prog, &inputs, &RuntimeConfig::small());
            assert!(!out.detected(), "{} raised on clean code", tool.name());
        }
    }

    #[test]
    fn check_counts_reflect_capabilities() {
        let (prog, inputs) = tiny_program();
        let native = run_tool(Tool::Native, &prog, &inputs, &RuntimeConfig::small());
        let asan = run_tool(Tool::Asan, &prog, &inputs, &RuntimeConfig::small());
        let gs = run_tool(Tool::GiantSan, &prog, &inputs, &RuntimeConfig::small());
        assert_eq!(native.counters.shadow_loads, 0);
        assert_eq!(asan.counters.shadow_loads, 8, "one per store");
        assert!(
            gs.counters.shadow_loads <= 2,
            "promoted loop: one region check"
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in Tool::ALL {
            assert!(seen.insert(t.name()));
        }
    }

    #[test]
    fn wrappers_agree_with_the_spec_api() {
        let (prog, inputs) = tiny_program();
        let cfg = RuntimeConfig::small();
        for tool in Tool::ALL {
            let via_wrapper = run_tool(tool, &prog, &inputs, &cfg);
            let via_spec = tool
                .builder()
                .config(cfg.clone())
                .spec()
                .run(&prog, &inputs);
            assert_eq!(via_wrapper.counters, via_spec.counters, "{}", tool.name());
            assert_eq!(
                via_wrapper.result.checksum,
                via_spec.result.checksum,
                "{}",
                tool.name()
            );
        }
    }
}
