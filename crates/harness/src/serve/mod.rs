//! `repro serve`: the sanitizer-as-a-service HTTP front-end.
//!
//! A long-lived HTTP/1.1 server, hand-rolled over `std::net` +
//! `std::thread` (the repo vendors no async runtime or HTTP stack), that
//! accepts study submissions as JSON, schedules them onto the existing
//! campaign/batch machinery, and degrades gracefully under overload:
//!
//! * [`admission`] — per-client token-bucket rate limits and a bounded
//!   admission queue; past saturation requests are shed in O(1) with
//!   `429 + Retry-After` instead of queueing without bound.
//! * [`scheduler`] — a worker pool that drives each job shard-by-shard
//!   through the durable campaign checkpoint path, bounding runaway cells
//!   with the per-cell watchdog and parking in-flight jobs at shard
//!   boundaries when a drain begins.
//! * [`jobs`] — durable job state: every job directory is resumable, so a
//!   crash or SIGKILL loses at most the uncommitted shard.
//! * [`router`] — the URL space, including `/metrics` (Prometheus text),
//!   `/healthz`, `/readyz`, and JSONL event streams.
//! * [`signal`] — SIGTERM/SIGINT → graceful drain, no libc crate needed.
//!
//! The accept loop itself lives here: nonblocking accepts polled against
//! the shutdown flags, thread-per-connection handling capped by a
//! connection limit (excess connections get an immediate `503`), and a
//! drain sequence that keeps `/metrics` scrapeable while the workers park.

pub mod admission;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod router;
pub mod scheduler;
pub mod signal;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::serve::admission::BoundedQueue;
use crate::serve::http::{ParseError, Response};
use crate::serve::jobs::JobRegistry;
use crate::serve::metrics::ServiceMetrics;
use crate::serve::router::Router;
use crate::serve::scheduler::{Scheduler, SchedulerConfig, SchedulerShared};
use crate::study::StudyRegistry;

/// Everything `repro serve` can tune from the command line.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7341` by default; port 0 for tests).
    pub addr: String,
    /// Durable state root (job descriptors + campaign checkpoints).
    pub data_dir: PathBuf,
    /// Admission queue capacity; beyond it submissions shed with 429.
    pub queue_capacity: usize,
    /// Per-client submissions/second (0 disables rate limiting).
    pub rate: u32,
    /// Per-client burst allowance.
    pub burst: u32,
    /// Concurrent handler connections; beyond it connections get 503.
    pub max_connections: usize,
    /// Job worker threads.
    pub workers: usize,
    /// `BatchRunner` threads per job.
    pub threads_per_job: usize,
    /// Per-cell watchdog budget.
    pub cell_deadline: Duration,
    /// Job deadline applied when a submission names none.
    pub default_job_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7341".to_string(),
            data_dir: PathBuf::from("serve-data"),
            queue_capacity: 64,
            rate: 0,
            burst: 8,
            max_connections: 128,
            workers: 2,
            threads_per_job: 2,
            cell_deadline: Duration::from_secs(10),
            default_job_deadline: Duration::from_secs(300),
        }
    }
}

/// The `repro serve` flag grammar, for the usage string.
pub const FLAG_USAGE: &str = "[--addr HOST:PORT] [--data-dir DIR] [--queue-cap N] \
     [--rate N/S] [--burst N] [--max-conns N] [--workers N] [--threads-per-job N] \
     [--cell-deadline-ms N] [--job-deadline-ms N]";

impl ServeConfig {
    /// Parses `repro serve` flags into a config. Unknown flags, missing
    /// values, and malformed numbers are usage errors.
    pub fn parse(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().cloned().ok_or(format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => cfg.addr = value("--addr")?,
                "--data-dir" => cfg.data_dir = PathBuf::from(value("--data-dir")?),
                "--queue-cap" => cfg.queue_capacity = parse_num(&value("--queue-cap")?)?,
                "--rate" => cfg.rate = parse_num(&value("--rate")?)?,
                "--burst" => cfg.burst = parse_num(&value("--burst")?)?,
                "--max-conns" => cfg.max_connections = parse_num(&value("--max-conns")?)?,
                "--workers" => cfg.workers = parse_num(&value("--workers")?)?,
                "--threads-per-job" => {
                    cfg.threads_per_job = parse_num(&value("--threads-per-job")?)?
                }
                "--cell-deadline-ms" => {
                    cfg.cell_deadline =
                        Duration::from_millis(parse_num(&value("--cell-deadline-ms")?)?)
                }
                "--job-deadline-ms" => {
                    cfg.default_job_deadline =
                        Duration::from_millis(parse_num(&value("--job-deadline-ms")?)?)
                }
                other => return Err(format!("unknown serve flag `{other}`")),
            }
        }
        if cfg.queue_capacity == 0 || cfg.workers == 0 || cfg.threads_per_job == 0 {
            return Err("--queue-cap/--workers/--threads-per-job must be >= 1".to_string());
        }
        Ok(cfg)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

/// The blocking entry point `repro serve` calls: install signal handlers,
/// start, print the bound address, and serve until SIGTERM/SIGINT or
/// `/admin/drain`, then drain gracefully.
pub fn run(config: ServeConfig) -> std::io::Result<()> {
    signal::install_handlers();
    let server = Server::start(config)?;
    println!("repro serve: listening on http://{}", server.addr());
    println!(
        "repro serve: data dir {}",
        server.shared().jobs.data_dir().display()
    );
    server.join();
    println!("repro serve: drained; durable jobs are resumable on restart");
    Ok(())
}

/// A running server instance.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<SchedulerShared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scheduler: Option<Scheduler>,
}

impl Server {
    /// Binds, recovers durable jobs, starts the workers and the accept
    /// loop, and returns without blocking ([`Server::join`] blocks).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SchedulerShared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServiceMetrics::default(),
            studies: StudyRegistry::builtin(),
            jobs: JobRegistry::open(&config.data_dir)?,
            draining: AtomicBool::new(false),
            config: SchedulerConfig {
                workers: config.workers,
                threads_per_job: config.threads_per_job,
                cell_deadline: config.cell_deadline,
                default_job_deadline: config.default_job_deadline,
            },
            flight: Arc::new(giantsan_telemetry::FlightRecorder::new(
                config.threads_per_job.max(1),
                giantsan_telemetry::DEFAULT_FLIGHT_CAPACITY,
            )),
            active_job: std::sync::Mutex::new(None),
        });
        // A watchdog-cancelled cell requests a flight dump before its panic
        // unwinds: the supervisor loop (join) writes the bundle, exactly as
        // if the operator had sent SIGUSR1 at the moment of the timeout.
        giantsan_ir::watchdog::set_timeout_hook(signal::request_dump);
        // Recovery: every job left queued or mid-run by the previous
        // process goes back onto the queue; its campaign directory already
        // holds the committed shards, so the re-run resumes, not restarts.
        for job in shared.jobs.recover(&shared.studies) {
            shared.metrics.jobs_resumed.fetch_add(1, Ordering::Relaxed);
            if shared.queue.push(Arc::clone(&job)).is_err() {
                // Stays `queued` on disk; the next restart retries it.
                eprintln!(
                    "repro serve: queue full during recovery; {} deferred to next restart",
                    job.id
                );
            }
        }
        let scheduler = Scheduler::start(Arc::clone(&shared));
        let router = Arc::new(Router::new(Arc::clone(&shared), config.rate, config.burst));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(listener, router, &stop, max_connections))
                .expect("spawn acceptor")
        };
        Ok(Server {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler state (metrics, registries).
    pub fn shared(&self) -> &Arc<SchedulerShared> {
        &self.shared
    }

    /// Requests shutdown from code (tests; signals and `/admin/drain` are
    /// the production paths).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested, then drains: stops admitting,
    /// closes the queue, waits for the workers to park or finish their
    /// jobs at a shard boundary, and finally stops the accept loop — in
    /// that order, so `/metrics` and `/readyz` stay scrapeable while the
    /// drain runs.
    pub fn join(mut self) {
        while !(self.stop.load(Ordering::SeqCst)
            || signal::shutdown_requested()
            || self.shared.draining.load(Ordering::SeqCst))
        {
            if signal::take_dump_request() {
                Self::dump_flight_now(&self.shared);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        // One last chance: a dump requested during the final poll interval
        // (e.g. by a watchdog timeout racing the drain) still lands.
        if signal::take_dump_request() {
            Self::dump_flight_now(&self.shared);
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(s) = self.scheduler.take() {
            s.join();
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Dumps the flight recorder into the most recently started job's
    /// directory (the job most likely wedged), or the data dir when no job
    /// has started yet. Fired by SIGUSR1 and by the watchdog timeout hook.
    fn dump_flight_now(shared: &Arc<SchedulerShared>) {
        let target = shared
            .active_job
            .lock()
            .expect("active job poisoned")
            .clone();
        match target {
            Some(job) => {
                scheduler::dump_flight(&shared.flight, &job.dir, &job.id);
                eprintln!(
                    "repro serve: flight recorder dumped to {}",
                    job.dir.display()
                );
            }
            None => {
                scheduler::dump_flight(&shared.flight, shared.jobs.data_dir(), "serve");
                eprintln!(
                    "repro serve: flight recorder dumped to {}",
                    shared.jobs.data_dir().display()
                );
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    stop: &Arc<AtomicBool>,
    max_connections: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, peer)) => {
                let _ = http::configure_stream(&stream);
                if active.load(Ordering::SeqCst) >= max_connections {
                    // Last-ditch shed: never queue connections we cannot
                    // serve promptly.
                    router.shared().metrics.count_response(503);
                    let _ = Response::error(503, "connection limit reached")
                        .header("Retry-After", 1)
                        .write_to(&mut stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let router = Arc::clone(&router);
                let active_in = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(&router, stream, peer);
                        active_in.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept errors (EMFILE under load, aborted
                // connections) must not kill the acceptor.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(router: &Router, mut stream: TcpStream, peer: SocketAddr) {
    let started = std::time::Instant::now();
    let metrics = &router.shared().metrics;
    let response = match http::read_request(&mut stream) {
        Ok(req) => {
            let client = peer.ip().to_string();
            router.handle(&req, &client)
        }
        // The client connected and went away (or sent nothing): no
        // response to write, nothing to count.
        Err(ParseError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => return,
        Err(ParseError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Response::error(408, "timed out reading the request")
        }
        Err(ParseError::Io(_)) => return,
        Err(ParseError::Malformed(m)) => Response::error(400, m),
        Err(ParseError::TooLarge(m)) => Response::error(413, m),
    };
    metrics.count_response(response.status);
    metrics.observe_request(started);
    let _ = response.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "giantsan-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let status: u16 = out
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn end_to_end_submit_poll_report_drain() {
        let dir = tmpdir("e2e");
        let srv = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = srv.addr();
        let (st, _) = request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 200);
        let body = r#"{"study":"echo","params":{"scale":3,"rounds":1},"shards":3}"#;
        let (st, resp) = request(
            addr,
            &format!(
                "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(st, 202, "{resp}");
        let id = crate::json::Json::parse(&resp)
            .unwrap()
            .get("id")
            .and_then(crate::json::Json::as_str)
            .unwrap()
            .to_string();
        // Poll to completion.
        let t0 = std::time::Instant::now();
        loop {
            let (st, body) = request(
                addr,
                &format!("GET /v1/jobs/{id} HTTP/1.1\r\nHost: x\r\n\r\n"),
            );
            assert_eq!(st, 200);
            if body.contains("\"completed\"") {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "job never completed: {body}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let (st, report) = request(
            addr,
            &format!("GET /v1/jobs/{id}/report HTTP/1.1\r\nHost: x\r\n\r\n"),
        );
        assert_eq!(st, 200);
        assert!(report.contains("campaign digest"));
        let (st, metrics) = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 200);
        assert!(metrics.contains("giantsan_serve_jobs_completed_total 1"));
        assert!(metrics.contains("giantsan_serve_responses_5xx_total 0"));
        // Exemplar-style linkage: the completed job is addressable from the
        // exposition by id and root span.
        assert!(metrics.contains(&format!("giantsan_serve_last_job_info{{job_id=\"{id}\"")));
        assert!(metrics.contains("repro_build_info{"));
        // Drain via the admin endpoint: readyz flips, submissions bounce.
        let (st, _) = request(addr, "POST /admin/drain HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 202);
        let (st, _) = request(addr, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 503);
        srv.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_requests_get_4xx_not_hangs() {
        let dir = tmpdir("malformed");
        let srv = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = srv.addr();
        let (st, _) = request(addr, "NONSENSE\r\n\r\n");
        assert_eq!(st, 400);
        let (st, _) = request(addr, "PUT /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 405);
        srv.stop();
        srv.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
