//! Service counters and histograms behind `/metrics`.
//!
//! All counters are relaxed atomics — a scrape sees a consistent-enough
//! snapshot, and the hot path (one `fetch_add` per event) never contends.
//! Latency histograms reuse the telemetry crate's deterministic
//! [`Log2Hist`] under a mutex taken once per completed request/job; the
//! exposition itself reuses `giantsan_telemetry::export::service_exposition`
//! so the service and the sanitizer speak one scrape format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use giantsan_telemetry::export::service_exposition;
use giantsan_telemetry::Log2Hist;

/// Every counter, gauge, and histogram the service exports.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Completed HTTP responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses that were not admission sheds (bad requests, 404s).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (a healthy service emits none; CI asserts zero).
    pub responses_5xx: AtomicU64,
    /// Submissions shed by the per-client rate limiter (429).
    pub shed_rate_limited: AtomicU64,
    /// Submissions shed because the admission queue was full (429).
    pub shed_queue_full: AtomicU64,
    /// Submissions refused because the server was draining (503).
    pub shed_draining: AtomicU64,
    /// Jobs accepted into the queue.
    pub jobs_admitted: AtomicU64,
    /// Jobs that ran to completion.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (spec errors, quarantined shards).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by the per-request deadline.
    pub jobs_timed_out: AtomicU64,
    /// Cells executed across all jobs.
    pub cells_run: AtomicU64,
    /// Cells quarantined mid-job (panic or watchdog `Timeout` verdict).
    pub cells_quarantined: AtomicU64,
    /// Shards committed through the campaign checkpoint path.
    pub shards_committed: AtomicU64,
    /// Jobs resumed from a checkpoint at startup.
    pub jobs_resumed: AtomicU64,
    /// HTTP request service time, admission decision included (µs).
    pub request_latency_us: Mutex<Log2Hist>,
    /// Whole-job latency from admission to terminal state (µs).
    pub job_latency_us: Mutex<Log2Hist>,
}

impl ServiceMetrics {
    /// Bumps the status-class counter for a response code.
    pub fn count_response(&self, status: u16) {
        let c = match status {
            200..=299 => &self.responses_2xx,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's service time.
    pub fn observe_request(&self, started: Instant) {
        let us = started.elapsed().as_micros() as u64;
        self.request_latency_us
            .lock()
            .expect("metrics poisoned")
            .record(us);
    }

    /// Records one job's admission-to-terminal latency.
    pub fn observe_job(&self, started: Instant) {
        let us = started.elapsed().as_micros() as u64;
        self.job_latency_us
            .lock()
            .expect("metrics poisoned")
            .record(us);
    }

    /// Renders the Prometheus text exposition, with live gauges supplied by
    /// the caller (queue depth and readiness are scheduler state).
    pub fn exposition(&self, queue_depth: usize, queue_capacity: usize, ready: bool) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let counters: Vec<(&str, &str, u64)> = vec![
            (
                "giantsan_serve_responses_total_2xx",
                "HTTP responses with a 2xx status.",
                c(&self.responses_2xx),
            ),
            (
                "giantsan_serve_responses_total_4xx",
                "HTTP responses with a non-shed 4xx status.",
                c(&self.responses_4xx),
            ),
            (
                "giantsan_serve_responses_total_5xx",
                "HTTP responses with a 5xx status.",
                c(&self.responses_5xx),
            ),
            (
                "giantsan_serve_shed_rate_limited_total",
                "Submissions shed by the per-client token bucket (429).",
                c(&self.shed_rate_limited),
            ),
            (
                "giantsan_serve_shed_queue_full_total",
                "Submissions shed because the admission queue was full (429).",
                c(&self.shed_queue_full),
            ),
            (
                "giantsan_serve_shed_draining_total",
                "Submissions refused during graceful drain (503).",
                c(&self.shed_draining),
            ),
            (
                "giantsan_serve_jobs_admitted_total",
                "Jobs accepted into the admission queue.",
                c(&self.jobs_admitted),
            ),
            (
                "giantsan_serve_jobs_completed_total",
                "Jobs that ran to completion.",
                c(&self.jobs_completed),
            ),
            (
                "giantsan_serve_jobs_failed_total",
                "Jobs that ended in an error state.",
                c(&self.jobs_failed),
            ),
            (
                "giantsan_serve_jobs_timed_out_total",
                "Jobs cancelled by their deadline.",
                c(&self.jobs_timed_out),
            ),
            (
                "giantsan_serve_cells_run_total",
                "Study cells executed across all jobs.",
                c(&self.cells_run),
            ),
            (
                "giantsan_serve_cells_quarantined_total",
                "Cells quarantined mid-job (panic or watchdog Timeout verdict).",
                c(&self.cells_quarantined),
            ),
            (
                "giantsan_serve_shards_committed_total",
                "Campaign shards committed through the checkpoint path.",
                c(&self.shards_committed),
            ),
            (
                "giantsan_serve_jobs_resumed_total",
                "Durable jobs resumed from checkpoints at startup.",
                c(&self.jobs_resumed),
            ),
        ];
        let gauges: Vec<(&str, &str, u64)> = vec![
            (
                "giantsan_serve_queue_depth",
                "Jobs waiting in the admission queue.",
                queue_depth as u64,
            ),
            (
                "giantsan_serve_queue_capacity",
                "Admission queue capacity.",
                queue_capacity as u64,
            ),
            (
                "giantsan_serve_ready",
                "1 while admitting, 0 while draining.",
                u64::from(ready),
            ),
        ];
        let req = self
            .request_latency_us
            .lock()
            .expect("metrics poisoned")
            .clone();
        let job = self
            .job_latency_us
            .lock()
            .expect("metrics poisoned")
            .clone();
        service_exposition(
            &counters,
            &gauges,
            &[
                (
                    "giantsan_serve_request_latency_us",
                    "HTTP request service time in microseconds.",
                    &req,
                ),
                (
                    "giantsan_serve_job_latency_us",
                    "Job latency from admission to terminal state in microseconds.",
                    &job,
                ),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_family() {
        let m = ServiceMetrics::default();
        m.count_response(200);
        m.count_response(404);
        m.count_response(503);
        m.shed_queue_full.fetch_add(3, Ordering::Relaxed);
        m.observe_request(Instant::now());
        let s = m.exposition(5, 64, true);
        assert!(s.contains("giantsan_serve_responses_total_2xx 1"));
        assert!(s.contains("giantsan_serve_responses_total_4xx 1"));
        assert!(s.contains("giantsan_serve_responses_total_5xx 1"));
        assert!(s.contains("giantsan_serve_shed_queue_full_total 3"));
        assert!(s.contains("giantsan_serve_queue_depth 5"));
        assert!(s.contains("giantsan_serve_queue_capacity 64"));
        assert!(s.contains("giantsan_serve_ready 1"));
        assert!(s.contains("giantsan_serve_request_latency_us_count 1"));
    }
}
