//! Service counters and histograms behind `/metrics`.
//!
//! All counters are relaxed atomics — a scrape sees a consistent-enough
//! snapshot, and the hot path (one `fetch_add` per event) never contends.
//! Latency histograms reuse the telemetry crate's deterministic
//! [`Log2Hist`] under a mutex taken once per completed request/job; the
//! exposition itself reuses `giantsan_telemetry::export::service_exposition`
//! so the service and the sanitizer speak one scrape format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use giantsan_telemetry::export::service_exposition;
use giantsan_telemetry::Log2Hist;

/// Every counter, gauge, and histogram the service exports.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Completed HTTP responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses that were not admission sheds (bad requests, 404s).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (a healthy service emits none; CI asserts zero).
    pub responses_5xx: AtomicU64,
    /// Submissions shed by the per-client rate limiter (429).
    pub shed_rate_limited: AtomicU64,
    /// Submissions shed because the admission queue was full (429).
    pub shed_queue_full: AtomicU64,
    /// Submissions refused because the server was draining (503).
    pub shed_draining: AtomicU64,
    /// Jobs accepted into the queue.
    pub jobs_admitted: AtomicU64,
    /// Jobs that ran to completion.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (spec errors, quarantined shards).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by the per-request deadline.
    pub jobs_timed_out: AtomicU64,
    /// Cells executed across all jobs.
    pub cells_run: AtomicU64,
    /// Cells quarantined mid-job (panic or watchdog `Timeout` verdict).
    pub cells_quarantined: AtomicU64,
    /// Shards committed through the campaign checkpoint path.
    pub shards_committed: AtomicU64,
    /// Jobs resumed from a checkpoint at startup.
    pub jobs_resumed: AtomicU64,
    /// HTTP request service time, admission decision included (µs).
    pub request_latency_us: Mutex<Log2Hist>,
    /// Whole-job latency from admission to terminal state (µs).
    pub job_latency_us: Mutex<Log2Hist>,
    /// Most recent terminal job and its root span id — the exemplar the
    /// exposition links its families to, so a scrape can jump from an
    /// aggregate counter to the exact causal chain behind it.
    pub last_job: Mutex<Option<(String, u64)>>,
}

impl ServiceMetrics {
    /// Bumps the status-class counter for a response code.
    pub fn count_response(&self, status: u16) {
        let c = match status {
            200..=299 => &self.responses_2xx,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's service time.
    pub fn observe_request(&self, started: Instant) {
        let us = started.elapsed().as_micros() as u64;
        self.request_latency_us
            .lock()
            .expect("metrics poisoned")
            .record(us);
    }

    /// Records one job's admission-to-terminal latency.
    pub fn observe_job(&self, started: Instant) {
        let us = started.elapsed().as_micros() as u64;
        self.job_latency_us
            .lock()
            .expect("metrics poisoned")
            .record(us);
    }

    /// Remembers the most recent terminal job and its root span id for the
    /// exemplar gauge in the exposition.
    pub fn note_job(&self, job_id: &str, root_span: u64) {
        *self.last_job.lock().expect("metrics poisoned") = Some((job_id.to_string(), root_span));
    }

    /// Renders the Prometheus text exposition, with live gauges supplied by
    /// the caller (queue depth and readiness are scheduler state).
    pub fn exposition(&self, queue_depth: usize, queue_capacity: usize, ready: bool) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let counters: Vec<(&str, &str, u64)> = vec![
            // Family names follow the Prometheus text-format rules: the
            // `_total` suffix terminates a counter name (a `_2xx` tail
            // after it would make the family a non-counter to parsers).
            (
                "giantsan_serve_responses_2xx_total",
                "HTTP responses with a 2xx status.",
                c(&self.responses_2xx),
            ),
            (
                "giantsan_serve_responses_4xx_total",
                "HTTP responses with a non-shed 4xx status.",
                c(&self.responses_4xx),
            ),
            (
                "giantsan_serve_responses_5xx_total",
                "HTTP responses with a 5xx status.",
                c(&self.responses_5xx),
            ),
            (
                "giantsan_serve_shed_rate_limited_total",
                "Submissions shed by the per-client token bucket (429).",
                c(&self.shed_rate_limited),
            ),
            (
                "giantsan_serve_shed_queue_full_total",
                "Submissions shed because the admission queue was full (429).",
                c(&self.shed_queue_full),
            ),
            (
                "giantsan_serve_shed_draining_total",
                "Submissions refused during graceful drain (503).",
                c(&self.shed_draining),
            ),
            (
                "giantsan_serve_jobs_admitted_total",
                "Jobs accepted into the admission queue.",
                c(&self.jobs_admitted),
            ),
            (
                "giantsan_serve_jobs_completed_total",
                "Jobs that ran to completion.",
                c(&self.jobs_completed),
            ),
            (
                "giantsan_serve_jobs_failed_total",
                "Jobs that ended in an error state.",
                c(&self.jobs_failed),
            ),
            (
                "giantsan_serve_jobs_timed_out_total",
                "Jobs cancelled by their deadline.",
                c(&self.jobs_timed_out),
            ),
            (
                "giantsan_serve_cells_run_total",
                "Study cells executed across all jobs.",
                c(&self.cells_run),
            ),
            (
                "giantsan_serve_cells_quarantined_total",
                "Cells quarantined mid-job (panic or watchdog Timeout verdict).",
                c(&self.cells_quarantined),
            ),
            (
                "giantsan_serve_shards_committed_total",
                "Campaign shards committed through the checkpoint path.",
                c(&self.shards_committed),
            ),
            (
                "giantsan_serve_jobs_resumed_total",
                "Durable jobs resumed from checkpoints at startup.",
                c(&self.jobs_resumed),
            ),
        ];
        let gauges: Vec<(&str, &str, u64)> = vec![
            (
                "giantsan_serve_queue_depth",
                "Jobs waiting in the admission queue.",
                queue_depth as u64,
            ),
            (
                "giantsan_serve_queue_capacity",
                "Admission queue capacity.",
                queue_capacity as u64,
            ),
            (
                "giantsan_serve_ready",
                "1 while admitting, 0 while draining.",
                u64::from(ready),
            ),
        ];
        let req = self
            .request_latency_us
            .lock()
            .expect("metrics poisoned")
            .clone();
        let job = self
            .job_latency_us
            .lock()
            .expect("metrics poisoned")
            .clone();
        let mut out = service_exposition(
            &counters,
            &gauges,
            &[
                (
                    "giantsan_serve_request_latency_us",
                    "HTTP request service time in microseconds.",
                    &req,
                ),
                (
                    "giantsan_serve_job_latency_us",
                    "Job latency from admission to terminal state in microseconds.",
                    &job,
                ),
            ],
        );
        // Build identity: which binary produced these numbers. The kernel
        // label reports the runtime-dispatched shadow backend, the heap
        // label the default allocator backend jobs execute under.
        let heap = match giantsan_runtime::RuntimeConfig::default().heap_backend {
            giantsan_runtime::HeapBackend::FreeList => "freelist",
            giantsan_runtime::HeapBackend::BlockLine => "blockline",
        };
        out.push_str(
            "# HELP repro_build_info Build and backend identity of the serving binary.\n\
             # TYPE repro_build_info gauge\n",
        );
        out.push_str(&format!(
            "repro_build_info{{version=\"{}\",kernel=\"{}\",heap=\"{heap}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            giantsan_shadow::kernel::active().name(),
        ));
        // Exemplar-style linkage: the most recent terminal job and its root
        // span, so a scrape can resolve aggregate families against
        // `/v1/jobs/<job_id>/spans`.
        if let Some((job_id, span)) = self.last_job.lock().expect("metrics poisoned").clone() {
            out.push_str(
                "# HELP giantsan_serve_last_job_info Most recent terminal job and its root span.\n\
                 # TYPE giantsan_serve_last_job_info gauge\n",
            );
            out.push_str(&format!(
                "giantsan_serve_last_job_info{{job_id=\"{job_id}\",span_id=\"{span:#018x}\"}} 1\n"
            ));
        }
        out
    }
}

/// Lints a Prometheus text exposition against the format rules the scrape
/// contract depends on. Returns one message per violation (empty = clean):
///
/// * every sample belongs to a family declared with both `# HELP` and
///   `# TYPE` before its first sample;
/// * counter family names end in `_total`;
/// * no family is declared twice.
pub fn lint_exposition(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut families: Vec<(String, String, bool)> = Vec::new(); // (name, type, has_help)
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            match families.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, _, has_help)) if *has_help => {
                    violations.push(format!("duplicate HELP for family {name}"));
                }
                Some((_, _, has_help)) => *has_help = true,
                None => families.push((name, String::new(), true)),
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("").to_string();
            let ty = it.next().unwrap_or("").to_string();
            match families.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, t, _)) if !t.is_empty() => {
                    violations.push(format!("duplicate TYPE for family {name}"));
                }
                Some((_, t, _)) => *t = ty.clone(),
                None => families.push((name.clone(), ty.clone(), false)),
            }
            if ty == "counter" && !name.ends_with("_total") {
                violations.push(format!("counter family {name} does not end in _total"));
            }
        } else if !line.starts_with('#') {
            let sample = line.split(['{', ' ']).next().unwrap_or("").to_string();
            // Histogram samples belong to their base family.
            let base = sample
                .strip_suffix("_bucket")
                .or_else(|| sample.strip_suffix("_sum"))
                .or_else(|| sample.strip_suffix("_count"))
                .filter(|b| families.iter().any(|(n, _, _)| n == b))
                .unwrap_or(&sample);
            match families.iter().find(|(n, _, _)| n == base) {
                None => violations.push(format!("sample {sample} has no declared family")),
                Some((name, ty, has_help)) => {
                    if ty.is_empty() {
                        violations.push(format!("family {name} has no TYPE"));
                    }
                    if !has_help {
                        violations.push(format!("family {name} has no HELP"));
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_family() {
        let m = ServiceMetrics::default();
        m.count_response(200);
        m.count_response(404);
        m.count_response(503);
        m.shed_queue_full.fetch_add(3, Ordering::Relaxed);
        m.observe_request(Instant::now());
        m.note_job("job-000007", 0xabcd);
        let s = m.exposition(5, 64, true);
        assert!(s.contains("giantsan_serve_responses_2xx_total 1"));
        assert!(s.contains("giantsan_serve_responses_4xx_total 1"));
        assert!(s.contains("giantsan_serve_responses_5xx_total 1"));
        assert!(s.contains("giantsan_serve_shed_queue_full_total 3"));
        assert!(s.contains("giantsan_serve_queue_depth 5"));
        assert!(s.contains("giantsan_serve_queue_capacity 64"));
        assert!(s.contains("giantsan_serve_ready 1"));
        assert!(s.contains("giantsan_serve_request_latency_us_count 1"));
        assert!(s.contains("repro_build_info{version=\""));
        assert!(s.contains("kernel=\""));
        assert!(s.contains("heap=\"freelist\""));
        assert!(s.contains(
            "giantsan_serve_last_job_info{job_id=\"job-000007\",span_id=\"0x000000000000abcd\"} 1"
        ));
    }

    #[test]
    fn exposition_passes_the_text_format_lint() {
        let m = ServiceMetrics::default();
        m.count_response(200);
        m.observe_request(Instant::now());
        m.observe_job(Instant::now());
        m.note_job("job-000001", 1);
        let s = m.exposition(0, 64, true);
        let violations = lint_exposition(&s);
        assert!(violations.is_empty(), "{violations:?}\n{s}");
    }

    #[test]
    fn lint_catches_the_violations_it_exists_for() {
        // Counter not ending in _total (the pre-rename bug).
        let bad = "# HELP x_total_2xx c\n# TYPE x_total_2xx counter\nx_total_2xx 1\n";
        assert!(lint_exposition(bad)
            .iter()
            .any(|v| v.contains("does not end in _total")));
        // Sample with no declared family.
        assert!(lint_exposition("orphan 1\n")
            .iter()
            .any(|v| v.contains("no declared family")));
        // Missing HELP.
        let no_help = "# TYPE y gauge\ny 1\n";
        assert!(lint_exposition(no_help)
            .iter()
            .any(|v| v.contains("no HELP")));
        // Duplicate family declaration.
        let dup = "# HELP z g\n# TYPE z gauge\n# HELP z g\n# TYPE z gauge\nz 1\n";
        let v = lint_exposition(dup);
        assert!(v.iter().any(|m| m.contains("duplicate")), "{v:?}");
    }
}
