//! SIGTERM/SIGINT-triggered graceful shutdown, without a libc crate.
//!
//! `std` already links the platform C library, so on Unix the `signal(2)`
//! entry point can be declared directly. The handler does the only thing an
//! async-signal-safe handler may: set a flag (a `static AtomicBool` store is
//! signal-safe). The accept loop polls [`shutdown_requested`] between
//! accepts and starts the drain when it flips.
//!
//! On non-Unix targets the hooks compile to no-ops — the server then only
//! stops via `/admin/drain` or process kill, which is acceptable for a
//! reproduction harness whose CI runs on Linux.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT was delivered (or [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Flags shutdown from ordinary code (the `/admin/drain` endpoint, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // Values from the Linux/POSIX ABI; stable across the platforms CI runs.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers for SIGTERM and SIGINT.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Installs signal handlers where the platform supports them.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handlers_install_without_touching_the_flag() {
        // The flag is process-global, so this test must NOT set it — other
        // tests in the same binary run live servers that watch it. Setting
        // and observing the flag is covered by the `serve` integration
        // test, which owns its whole process.
        install_handlers();
        assert!(!shutdown_requested());
    }
}
