//! SIGTERM/SIGINT-triggered graceful shutdown, without a libc crate.
//!
//! `std` already links the platform C library, so on Unix the `signal(2)`
//! entry point can be declared directly. The handler does the only thing an
//! async-signal-safe handler may: set a flag (a `static AtomicBool` store is
//! signal-safe). The accept loop polls [`shutdown_requested`] between
//! accepts and starts the drain when it flips.
//!
//! On non-Unix targets the hooks compile to no-ops — the server then only
//! stops via `/admin/drain` or process kill, which is acceptable for a
//! reproduction harness whose CI runs on Linux.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static DUMP: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM/SIGINT was delivered (or [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Flags shutdown from ordinary code (the `/admin/drain` endpoint, tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Flags a flight-recorder dump from ordinary code (the watchdog timeout
/// hook, tests). Equivalent to delivering SIGUSR1.
pub fn request_dump() {
    DUMP.store(true, Ordering::SeqCst);
}

/// `true` while a flight-recorder dump is pending (SIGUSR1 delivered or
/// [`request_dump`] ran).
pub fn dump_requested() -> bool {
    DUMP.load(Ordering::SeqCst)
}

/// Consumes a pending dump request, returning `true` if one was pending.
/// The supervisor loop calls this so each SIGUSR1 produces one dump.
pub fn take_dump_request() -> bool {
    DUMP.swap(false, Ordering::SeqCst)
}

#[cfg(unix)]
mod unix {
    use super::{DUMP, SHUTDOWN};
    use std::sync::atomic::Ordering;

    // Values from the Linux/POSIX ABI; stable across the platforms CI runs.
    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_dump_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store. The actual
        // dump I/O happens on the supervisor thread that polls the flag.
        DUMP.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers for SIGTERM, SIGINT, and SIGUSR1.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGUSR1, on_dump_signal as *const () as usize);
        }
    }
}

/// Installs signal handlers where the platform supports them.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handlers_install_without_touching_the_flag() {
        // The flag is process-global, so this test must NOT set it — other
        // tests in the same binary run live servers that watch it. Setting
        // and observing the flag is covered by the `serve` integration
        // test, which owns its whole process.
        install_handlers();
        assert!(!shutdown_requested());
    }

    #[test]
    fn dump_request_is_consumed_by_take() {
        // The dump flag is process-global and the watchdog timeout hook
        // (installed by server tests in this binary) can set it at any
        // moment, so this test only asserts the set → observe → consume
        // path and never asserts the flag is clear.
        request_dump();
        assert!(dump_requested());
        assert!(take_dump_request());
        // Drain best-effort so later tests start from a (likely) clear flag.
        let _ = take_dump_request();
    }
}
