//! The worker pool that turns queued jobs into committed campaign shards.
//!
//! Each worker pops one job at a time off the bounded admission queue and
//! drives it shard-by-shard through [`Campaign::run_shard`] — the PR 7
//! checkpoint path. Between shards the worker polls two conditions:
//!
//! * **Shutdown** — if the server is draining, the job is *parked*: its
//!   current shard finishes and commits, its descriptor goes back to
//!   `queued`, and the worker moves on. A restart re-queues the job and the
//!   resume path skips every committed shard, so graceful shutdown loses no
//!   work and repeats none.
//! * **Deadline** — a job past its deadline transitions to `timed-out` and
//!   stops scheduling further shards. Already-committed shards stay on
//!   disk; the client can resubmit with a longer deadline and resume them.
//!
//! Inside a shard, runaway cells are bounded by the per-cell watchdog
//! ([`BatchRunner::with_cell_deadline`]): they get a quarantined placeholder
//! payload instead of hanging the pool.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use giantsan_telemetry::{span_id, FlightEventKind, FlightRecorder, SpanKind, SpanSet};

use crate::batch::BatchRunner;
use crate::campaign::{records_digest, shard_range, Campaign, ShardSpec};
use crate::json::Json;
use crate::serve::admission::BoundedQueue;
use crate::serve::jobs::{JobEntry, JobPhase, JobRegistry};
use crate::serve::metrics::ServiceMetrics;
use crate::study::StudyRegistry;

/// Worker-pool tunables, fixed at server start.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent jobs (worker threads popping the queue).
    pub workers: usize,
    /// `BatchRunner` threads given to each job.
    pub threads_per_job: usize,
    /// Per-cell watchdog budget.
    pub cell_deadline: Duration,
    /// Job deadline applied when a submission names none.
    pub default_job_deadline: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            threads_per_job: 2,
            cell_deadline: Duration::from_secs(10),
            default_job_deadline: Duration::from_secs(300),
        }
    }
}

/// Everything a worker thread shares with the front-end.
#[derive(Debug)]
pub struct SchedulerShared {
    /// The admission queue.
    pub queue: BoundedQueue<Arc<JobEntry>>,
    /// Service counters and histograms.
    pub metrics: ServiceMetrics,
    /// Study lookup (shared with request validation).
    pub studies: StudyRegistry,
    /// Durable job index.
    pub jobs: JobRegistry,
    /// Set once when draining begins; workers park instead of running.
    pub draining: AtomicBool,
    /// Pool tunables.
    pub config: SchedulerConfig,
    /// Crash flight recorder shared by every worker's batch runners; dumped
    /// into the job directory when cells quarantine or SIGUSR1 arrives.
    pub flight: Arc<FlightRecorder>,
    /// The most recently started job — the directory a SIGUSR1 dump lands
    /// in (the job most likely to be wedged when the operator asks).
    pub active_job: Mutex<Option<Arc<JobEntry>>>,
}

impl SchedulerShared {
    /// `true` while the server should admit new work.
    pub fn accepting(&self) -> bool {
        !self.draining.load(Ordering::SeqCst)
    }
}

/// The causal span chain of one job, plus the two ids the scheduler needs
/// while driving it (shard spans are `span_id(job, Shard, index)` and cell
/// spans hang under those — the batch runner derives them the same way).
#[derive(Debug)]
pub struct JobSpans {
    /// The full request → admission → scheduler → job → shard → cell set,
    /// rendered into the job directory as `spans.jsonl`.
    pub set: SpanSet,
    /// The root (request) span id.
    pub root: u64,
    /// The job span id.
    pub job: u64,
}

/// Builds the deterministic span chain for one job.
///
/// Every id derives from the campaign spec hash — no wall-clock, no thread
/// identity — so the set is byte-identical across thread counts, resumes,
/// and processes. That is what lets `spans.jsonl` be written **before** the
/// first shard runs: when a cell later wedges, the post-mortem dump already
/// has the causal chain on disk.
pub fn job_spans(spec_hash: u64, labels: &[String], job_id: &str, shards: usize) -> JobSpans {
    let mut set = SpanSet::new();
    let root = set.root(spec_hash, format!("POST /v1/jobs -> {job_id}"));
    let admission = set.child(root, SpanKind::Admission, 0, "admission queue");
    let sched = set.child(admission, SpanKind::Scheduler, 0, "worker pool");
    let job = set.child(sched, SpanKind::Job, 0, job_id);
    for shard in 0..shards.max(1) {
        let range = shard_range(labels.len(), shard, shards.max(1));
        let s = set.child(
            job,
            SpanKind::Shard,
            shard as u64,
            format!("shard {shard} (cells {}..{})", range.start, range.end),
        );
        for i in range {
            set.child(s, SpanKind::Cell, i as u64, &labels[i]);
        }
    }
    JobSpans { set, root, job }
}

/// Writes the flight recorder's retained events into `dir` as a
/// self-contained JSONL + Chrome-trace bundle (`flight.jsonl`,
/// `flight_chrome.json` — the latter loads in Perfetto).
pub fn dump_flight(flight: &FlightRecorder, dir: &Path, process: &str) {
    // Dumps are re-fired (SIGUSR1, watchdog) while readers may already be
    // loading a previous bundle, so each file lands via rename: a reader
    // never observes a truncated-but-unwritten artifact.
    write_atomic(dir, "flight.jsonl", &flight.to_jsonl());
    write_atomic(dir, "flight_chrome.json", &flight.to_chrome(process));
}

fn write_atomic(dir: &Path, name: &str, contents: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    if std::fs::write(&tmp, contents).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join(name));
    }
}

/// The running worker pool.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    handles: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `config.workers` worker threads over `shared`.
    pub fn start(shared: Arc<SchedulerShared>) -> Scheduler {
        let mut handles = Vec::new();
        for w in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }
        Scheduler { shared, handles }
    }

    /// Begins the drain: stop admitting, close the queue, let the workers
    /// park their in-flight jobs at the next shard boundary.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Waits for every worker to exit (drain must have been requested).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &SchedulerShared) {
    while let Some(job) = shared.queue.pop() {
        if shared.draining.load(Ordering::SeqCst) {
            // Draining: everything still queued stays `queued` on disk and
            // is re-queued by the next process; do not start new work.
            job.push_event("parked", Json::obj().field("reason", "drain"));
            continue;
        }
        run_job(shared, &job);
    }
}

/// Runs (or resumes) one job to a terminal or parked state.
pub fn run_job(shared: &SchedulerShared, job: &Arc<JobEntry>) {
    job.update(|st| st.phase = JobPhase::Running);
    job.push_event(
        "started",
        Json::obj().field("shards", job.spec.shards as u64),
    );
    let study = match shared.studies.get(&job.spec.study) {
        Some(s) => s,
        None => return fail(shared, job, format!("study `{}` vanished", job.spec.study)),
    };
    let mut opts = job.spec.opts.clone();
    opts.threads = shared.config.threads_per_job;
    let campaign = match Campaign::new(study, opts) {
        Ok(c) => c,
        Err(e) => return fail(shared, job, e.to_string()),
    };
    let dir = job.campaign_dir();
    // The causal span chain is fully determined by the spec, so it goes to
    // disk *now*: if a cell wedges mid-shard, the post-mortem flight dump
    // already has spans.jsonl to chain back through.
    let spans = job_spans(
        campaign.spec_hash(),
        campaign.labels(),
        &job.id,
        job.spec.shards,
    );
    let _ = std::fs::write(job.dir.join("spans.jsonl"), spans.set.to_jsonl());
    shared.metrics.note_job(&job.id, spans.root);
    *shared.active_job.lock().expect("active job poisoned") = Some(Arc::clone(job));
    let job_seq = job
        .id
        .strip_prefix("job-")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    shared
        .flight
        .record(0, FlightEventKind::JobStart, spans.job, job_seq, 0);
    let runner = BatchRunner::new(shared.config.threads_per_job)
        .with_cell_deadline(shared.config.cell_deadline);
    let deadline = job
        .spec
        .deadline
        .unwrap_or(shared.config.default_job_deadline);
    let cells = campaign.labels().len();
    let shards = job.spec.shards;
    for shard in 0..shards {
        if shared.draining.load(Ordering::SeqCst) {
            // Park: committed shards are checkpointed; the descriptor goes
            // back to `queued` so the next process resumes right here.
            job.update(|st| st.phase = JobPhase::Queued);
            job.push_event(
                "parked",
                Json::obj()
                    .field("reason", "drain")
                    .field("next_shard", shard as u64),
            );
            return;
        }
        if job.admitted.elapsed() > deadline {
            shared
                .metrics
                .jobs_timed_out
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.observe_job(job.admitted);
            job.update(|st| {
                st.phase = JobPhase::TimedOut;
                st.error = Some(format!(
                    "deadline of {}ms exceeded after {} of {shards} shard(s)",
                    deadline.as_millis(),
                    shard
                ));
            });
            job.push_event("timed_out", Json::obj().field("after_shards", shard as u64));
            return;
        }
        let spec = ShardSpec {
            index: shard,
            count: shards,
        };
        let range = shard_range(cells, shard, shards);
        let shard_span = span_id(spans.job, SpanKind::Shard, shard as u64);
        shared.flight.record(
            0,
            FlightEventKind::ShardStart,
            shard_span,
            shard as u64,
            range.len() as u64,
        );
        // Each shard gets a flight-armed runner: cell lifecycle events land
        // in the ring attributed to spans the batch engine derives exactly
        // as `job_spans` did, so dumps resolve against spans.jsonl.
        let shard_runner =
            runner
                .clone()
                .with_flight(Arc::clone(&shared.flight), shard_span, range.start as u64);
        match campaign.run_shard(&dir, spec, &shard_runner) {
            Ok(ran) => {
                if ran {
                    shared
                        .metrics
                        .shards_committed
                        .fetch_add(1, Ordering::Relaxed);
                }
                shared.flight.record(
                    0,
                    FlightEventKind::ShardEnd,
                    shard_span,
                    shard as u64,
                    range.len() as u64,
                );
                let len = range.len();
                shared
                    .metrics
                    .cells_run
                    .fetch_add(len as u64, Ordering::Relaxed);
                job.update(|st| {
                    st.shards_done += 1;
                    st.cells_done += len;
                });
                job.push_event(
                    "shard",
                    Json::obj()
                        .field("shard", shard as u64)
                        .field("cells", len as u64)
                        .field("ran", ran),
                );
            }
            Err(e) => return fail(shared, job, e.to_string()),
        }
    }
    let records = match campaign.load_records(&dir) {
        Ok(r) => r,
        Err(e) => return fail(shared, job, e.to_string()),
    };
    let quarantined = records
        .iter()
        .filter(|r| {
            r.payload
                .get("quarantined")
                .and_then(Json::as_bool)
                .unwrap_or(false)
        })
        .count();
    shared
        .metrics
        .cells_quarantined
        .fetch_add(quarantined as u64, Ordering::Relaxed);
    if quarantined > 0 {
        // Cells wedged or crashed inside this job: preserve the black box
        // alongside the records, before anything overwrites the rings.
        dump_flight(&shared.flight, &job.dir, &job.id);
        job.push_event(
            "flight_dumped",
            Json::obj()
                .field("reason", "quarantine")
                .field("quarantined", quarantined as u64),
        );
    }
    shared
        .flight
        .record(0, FlightEventKind::JobEnd, spans.job, job_seq, 0);
    let digest = records_digest(&records);
    shared
        .metrics
        .jobs_completed
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.observe_job(job.admitted);
    job.update(|st| {
        st.phase = JobPhase::Completed;
        st.digest = Some(digest);
    });
    job.push_event(
        "completed",
        Json::obj()
            .field("digest", Json::hex(digest))
            .field("cells", records.len() as u64)
            .field("quarantined", quarantined as u64),
    );
}

fn fail(shared: &SchedulerShared, job: &Arc<JobEntry>, error: String) {
    shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.observe_job(job.admitted);
    job.update(|st| {
        st.phase = JobPhase::Failed;
        st.error = Some(error.clone());
    });
    job.push_event("failed", Json::obj().field("error", error));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::jobs::JobSpec;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "giantsan-sched-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn shared_with_cell_deadline(dir: &Path, cell_deadline: Duration) -> Arc<SchedulerShared> {
        Arc::new(SchedulerShared {
            queue: BoundedQueue::new(16),
            metrics: ServiceMetrics::default(),
            studies: StudyRegistry::builtin(),
            jobs: JobRegistry::open(dir).unwrap(),
            draining: AtomicBool::new(false),
            config: SchedulerConfig {
                workers: 1,
                threads_per_job: 2,
                cell_deadline,
                default_job_deadline: Duration::from_secs(60),
            },
            flight: Arc::new(FlightRecorder::new(
                2,
                giantsan_telemetry::DEFAULT_FLIGHT_CAPACITY,
            )),
            active_job: Mutex::new(None),
        })
    }

    fn shared(dir: &Path) -> Arc<SchedulerShared> {
        shared_with_cell_deadline(dir, Duration::from_secs(10))
    }

    fn echo_spec(shared: &SchedulerShared, body: &str) -> JobSpec {
        JobSpec::from_json(&Json::parse(body).unwrap(), &shared.studies).unwrap()
    }

    #[test]
    fn job_runs_to_completion_with_digest() {
        let dir = tmpdir("complete");
        let sh = shared(&dir);
        let spec = echo_spec(
            &sh,
            r#"{"study":"echo","params":{"scale":4,"rounds":1},"shards":2}"#,
        );
        let job = sh.jobs.create(spec).unwrap();
        run_job(&sh, &job);
        let st = job.status();
        assert_eq!(st.phase, JobPhase::Completed);
        assert!(st.digest.is_some());
        assert_eq!(st.shards_done, 2);
        assert_eq!(st.cells_done, 4);
        assert_eq!(sh.metrics.jobs_completed.load(Ordering::Relaxed), 1);
        assert_eq!(sh.metrics.shards_committed.load(Ordering::Relaxed), 2);
        // Digest matches a monolithic serial run of the same spec.
        let study = sh.studies.get("echo").unwrap();
        let mut opts = job.spec.opts.clone();
        opts.threads = 1;
        let serial = Campaign::new(study, opts)
            .unwrap()
            .run_all(&BatchRunner::serial());
        assert_eq!(st.digest.unwrap(), records_digest(&serial));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_jsonl_is_written_at_start_and_chains_cells_to_the_request() {
        let dir = tmpdir("spans");
        let sh = shared(&dir);
        let spec = echo_spec(
            &sh,
            r#"{"study":"echo","params":{"scale":4,"rounds":1},"shards":2}"#,
        );
        let job = sh.jobs.create(spec).unwrap();
        run_job(&sh, &job);
        assert_eq!(job.status().phase, JobPhase::Completed);
        let text = std::fs::read_to_string(job.dir.join("spans.jsonl")).unwrap();
        let spans = job_spans(
            {
                let study = sh.studies.get("echo").unwrap();
                let mut opts = job.spec.opts.clone();
                opts.threads = sh.config.threads_per_job;
                Campaign::new(study, opts).unwrap().spec_hash()
            },
            &["echo-0000", "echo-0001", "echo-0002", "echo-0003"].map(String::from),
            &job.id,
            2,
        );
        // The file is exactly the deterministic set: request + admission +
        // scheduler + job + 2 shards + 4 cells = 10 spans.
        assert_eq!(text, spans.set.to_jsonl());
        assert_eq!(text.lines().count(), 10);
        // Every cell span's ancestry walks back to the request root.
        for span in spans.set.spans() {
            if span.kind == SpanKind::Cell {
                let chain = spans.set.ancestry(span.id);
                assert_eq!(*chain.last().unwrap(), spans.root);
            }
        }
        // Completion also registered the job on /metrics exemplars.
        assert_eq!(
            sh.metrics.last_job.lock().unwrap().as_ref().unwrap().0,
            job.id
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_cell_deadline_quarantines_and_dumps_the_flight_recorder() {
        let dir = tmpdir("flight");
        let sh = shared_with_cell_deadline(&dir, Duration::from_millis(0));
        let spec = echo_spec(
            &sh,
            r#"{"study":"echo","params":{"scale":3,"rounds":2},"shards":1}"#,
        );
        let job = sh.jobs.create(spec).unwrap();
        run_job(&sh, &job);
        // Quarantined cells degrade to placeholder records; the job still
        // completes, and the black box lands next to the records.
        let st = job.status();
        assert_eq!(st.phase, JobPhase::Completed);
        assert!(sh.metrics.cells_quarantined.load(Ordering::Relaxed) > 0);
        let flight = std::fs::read_to_string(job.dir.join("flight.jsonl")).unwrap();
        assert!(flight.lines().next().unwrap().contains("\"flight\":\"v1\""));
        assert!(flight.contains("\"ev\":\"timeout\""));
        assert!(flight.contains("\"ev\":\"quarantine\""));
        assert!(job.dir.join("flight_chrome.json").exists());
        // Every cell event's span resolves in spans.jsonl and chains back
        // to a request root — the acceptance criterion for post-mortems.
        let spans_text = std::fs::read_to_string(job.dir.join("spans.jsonl")).unwrap();
        let mut set = std::collections::HashMap::new();
        for line in spans_text.lines() {
            let (id, parent) = giantsan_telemetry::parse_span_line(line).unwrap();
            set.insert(id, parent);
        }
        let mut checked = 0;
        for line in flight.lines().skip(1) {
            if !line.contains("\"ev\":\"quarantine\"") {
                continue;
            }
            let span = line
                .split("\"span\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                .unwrap();
            let mut cur = span;
            while let Some(Some(parent)) = set.get(&cur) {
                cur = *parent;
            }
            assert!(set.contains_key(&cur), "span {span:#x} dangles");
            checked += 1;
        }
        assert!(checked > 0, "no quarantine events found in the dump");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_deadline_times_out_before_any_shard() {
        let dir = tmpdir("deadline");
        let sh = shared(&dir);
        let spec = echo_spec(
            &sh,
            r#"{"study":"echo","params":{"scale":2,"rounds":1},"deadline_ms":0}"#,
        );
        let job = sh.jobs.create(spec).unwrap();
        run_job(&sh, &job);
        assert_eq!(job.status().phase, JobPhase::TimedOut);
        assert_eq!(sh.metrics.jobs_timed_out.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_parks_job_and_resume_completes_it() {
        let dir = tmpdir("park");
        let sh = shared(&dir);
        let spec = echo_spec(
            &sh,
            r#"{"study":"echo","params":{"scale":4,"rounds":1},"shards":4}"#,
        );
        let job = sh.jobs.create(spec).unwrap();
        // Drain before the job starts a single shard: it must park, leaving
        // a queued descriptor and an (at most partially) committed campaign.
        sh.draining.store(true, Ordering::SeqCst);
        run_job(&sh, &job);
        assert_eq!(job.status().phase, JobPhase::Queued);
        // "Restart": clear the drain flag and run again — resume completes
        // the remaining shards and the digest matches a serial run.
        sh.draining.store(false, Ordering::SeqCst);
        run_job(&sh, &job);
        let st = job.status();
        assert_eq!(st.phase, JobPhase::Completed);
        let study = sh.studies.get("echo").unwrap();
        let serial = Campaign::new(study, job.spec.opts.clone())
            .unwrap()
            .run_all(&BatchRunner::serial());
        assert_eq!(st.digest.unwrap(), records_digest(&serial));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_pool_drains_queue_on_close() {
        let dir = tmpdir("pool");
        let sh = shared(&dir);
        let spec = echo_spec(&sh, r#"{"study":"echo","params":{"scale":2,"rounds":1}}"#);
        let a = sh.jobs.create(spec.clone()).unwrap();
        let b = sh.jobs.create(spec).unwrap();
        sh.queue.push(Arc::clone(&a)).unwrap();
        sh.queue.push(Arc::clone(&b)).unwrap();
        let sched = Scheduler::start(Arc::clone(&sh));
        let t0 = std::time::Instant::now();
        while (a.status().phase != JobPhase::Completed || b.status().phase != JobPhase::Completed)
            && t0.elapsed() < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        sh.queue.close();
        sched.join();
        assert_eq!(a.status().phase, JobPhase::Completed);
        assert_eq!(b.status().phase, JobPhase::Completed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
