//! Job specs, job state, and the on-disk job registry.
//!
//! A *job* is one campaign submission: a study name plus [`StudyOpts`],
//! a shard count, and optional deadlines. Jobs are durable — every job owns
//! a directory under `<data>/jobs/<id>/` holding a `job.json` descriptor
//! and a `campaign/` checkpoint directory written through the PR 7
//! campaign path (header + manifest + digest-checked blobs). A server that
//! dies mid-job therefore leaves resumable state: on restart the registry
//! rescans the tree, re-queues every non-terminal job, and the scheduler's
//! `Campaign::resume` skips the shards whose manifest lines were already
//! committed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::study::{StudyOpts, StudyRegistry};

/// Upper bound on `shards` in a submission — shards beyond the cell count
/// only add manifest lines, and an attacker-controlled huge value would
/// turn one job into millions of empty checkpoint files.
pub const MAX_SHARDS: usize = 256;

/// One validated submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registry name of the study to run.
    pub study: String,
    /// The bound options (threads/wall come from the server, not clients).
    pub opts: StudyOpts,
    /// How many checkpoint shards to split the matrix into.
    pub shards: usize,
    /// Whole-job deadline; `None` means the server default applies.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// Parses and validates a submission body against the study registry.
    ///
    /// Unknown studies, unknown fields, and out-of-range values are all
    /// rejected here, before admission — a queued job is always runnable.
    pub fn from_json(body: &Json, registry: &StudyRegistry) -> Result<JobSpec, String> {
        let study = body
            .get("study")
            .and_then(Json::as_str)
            .ok_or("missing required string field `study`")?
            .to_string();
        if registry.get(&study).is_none() {
            return Err(format!(
                "unknown study `{study}` (available: {})",
                registry.names().join(", ")
            ));
        }
        let mut opts = StudyOpts::default();
        if let Some(params) = body.get("params") {
            let pairs = match params {
                Json::Object(fields) => fields
                    .iter()
                    .map(|(k, v)| {
                        let rendered = match v {
                            Json::Str(s) => s.clone(),
                            other => other.render_compact(),
                        };
                        (k.clone(), rendered)
                    })
                    .collect::<Vec<_>>(),
                _ => return Err("`params` must be an object".to_string()),
            };
            opts = StudyOpts::from_params(&pairs)?;
        }
        if opts.scale == 0 || opts.scale > 65_536 {
            return Err(format!("scale {} out of range [1, 65536]", opts.scale));
        }
        let shards = match body.get("shards") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or("`shards` must be a number")?
                .try_into()
                .map_err(|_| "`shards` out of range")?,
        };
        if shards == 0 || shards > MAX_SHARDS {
            return Err(format!("shards {shards} out of range [1, {MAX_SHARDS}]"));
        }
        let deadline = match body.get("deadline_ms") {
            None => None,
            Some(v) => Some(Duration::from_millis(
                v.as_u64().ok_or("`deadline_ms` must be a number")?,
            )),
        };
        for (key, _) in match body {
            Json::Object(fields) => fields.iter(),
            _ => return Err("job spec must be a JSON object".to_string()),
        } {
            if !matches!(key.as_str(), "study" | "params" | "shards" | "deadline_ms") {
                return Err(format!("unknown field `{key}` in job spec"));
            }
        }
        Ok(JobSpec {
            study,
            opts,
            shards,
            deadline,
        })
    }

    fn to_json(&self) -> Json {
        let params = self
            .opts
            .params()
            .into_iter()
            .fold(Json::obj(), |o, (k, v)| o.field(k, v));
        let mut j = Json::obj()
            .field("study", self.study.as_str())
            .field("params", params)
            .field("shards", self.shards as u64);
        if let Some(d) = self.deadline {
            j = j.field("deadline_ms", d.as_millis() as u64);
        }
        j
    }

    fn from_descriptor(body: &Json) -> Result<JobSpec, String> {
        let study = body
            .get("study")
            .and_then(Json::as_str)
            .ok_or("descriptor missing `study`")?
            .to_string();
        let mut pairs = Vec::new();
        if let Some(Json::Object(fields)) = body.get("params") {
            for (k, v) in fields {
                let rendered = match v {
                    Json::Str(s) => s.clone(),
                    other => other.render_compact(),
                };
                pairs.push((k.clone(), rendered));
            }
        }
        let opts = StudyOpts::from_params(&pairs)?;
        let shards = body
            .get("shards")
            .and_then(Json::as_u64)
            .ok_or("descriptor missing `shards`")? as usize;
        let deadline = body
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis);
        Ok(JobSpec {
            study,
            opts,
            shards,
            deadline,
        })
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing shards.
    Running,
    /// Every shard committed; digest available.
    Completed,
    /// Terminal failure (spec drift, quarantined shards, panicked cells).
    Failed,
    /// Cancelled by the per-job deadline.
    TimedOut,
}

impl JobPhase {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Failed => "failed",
            JobPhase::TimedOut => "timed-out",
        }
    }

    fn parse(s: &str) -> Option<JobPhase> {
        Some(match s {
            "queued" => JobPhase::Queued,
            "running" => JobPhase::Running,
            "completed" => JobPhase::Completed,
            "failed" => JobPhase::Failed,
            "timed-out" => JobPhase::TimedOut,
            _ => return None,
        })
    }

    /// `true` for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Completed | JobPhase::Failed | JobPhase::TimedOut
        )
    }
}

/// Mutable job progress, updated by the scheduler under the entry's lock.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Shards committed so far.
    pub shards_done: usize,
    /// Cells contained in the committed shards.
    pub cells_done: usize,
    /// FNV digest over the merged records, once completed.
    pub digest: Option<u64>,
    /// Human-readable failure cause, for `Failed`/`TimedOut`.
    pub error: Option<String>,
}

/// One job: immutable spec plus lock-guarded status and event log.
#[derive(Debug)]
pub struct JobEntry {
    /// Server-assigned identifier (`job-NNNNNN`).
    pub id: String,
    /// The validated submission.
    pub spec: JobSpec,
    /// This job's directory (`<data>/jobs/<id>`).
    pub dir: PathBuf,
    /// Admission instant, for the job-latency histogram.
    pub admitted: Instant,
    status: Mutex<JobStatus>,
    /// Compact-JSON event lines, appended in order; served as JSONL.
    events: Mutex<Vec<String>>,
}

impl JobEntry {
    /// The campaign checkpoint directory inside the job directory.
    pub fn campaign_dir(&self) -> PathBuf {
        self.dir.join("campaign")
    }

    /// Clones the current status.
    pub fn status(&self) -> JobStatus {
        self.status.lock().expect("job poisoned").clone()
    }

    /// Applies `f` to the status under the lock and persists the
    /// descriptor afterwards so a crash never loses a terminal state.
    pub fn update<F: FnOnce(&mut JobStatus)>(&self, f: F) {
        {
            let mut st = self.status.lock().expect("job poisoned");
            f(&mut st);
        }
        self.persist();
    }

    /// Appends an event line (an object; `kind` names the event).
    pub fn push_event(&self, kind: &str, fields: Json) {
        let line = match fields {
            Json::Object(mut obj) => {
                obj.insert(0, ("event".to_string(), Json::Str(kind.to_string())));
                Json::Object(obj).render_compact()
            }
            other => Json::obj()
                .field("event", kind)
                .field("detail", other)
                .render_compact(),
        };
        self.events.lock().expect("job poisoned").push(line);
    }

    /// The event log as newline-delimited JSON.
    pub fn events_jsonl(&self) -> String {
        let events = self.events.lock().expect("job poisoned");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(e);
            out.push('\n');
        }
        out
    }

    /// The job's status document (`GET /v1/jobs/:id`).
    pub fn snapshot(&self) -> Json {
        let st = self.status();
        let mut j = Json::obj()
            .field("id", self.id.as_str())
            .field("state", st.phase.name())
            .field("spec", self.spec.to_json())
            .field("shards_done", st.shards_done as u64)
            .field("cells_done", st.cells_done as u64);
        if let Some(d) = st.digest {
            j = j.field("digest", Json::hex(d));
        }
        if let Some(e) = st.error {
            j = j.field("error", e);
        }
        j
    }

    fn persist(&self) {
        let st = self.status.lock().expect("job poisoned");
        let mut j = Json::obj()
            .field("id", self.id.as_str())
            .field("state", st.phase.name());
        if let Some(d) = st.digest {
            j = j.field("digest", Json::hex(d));
        }
        if let Some(e) = &st.error {
            j = j.field("error", e.as_str());
        }
        // Splice the spec fields in at the top level so the descriptor is
        // itself a valid resubmission body (minus `id`/`state`/`digest`).
        let spec = self.spec.to_json();
        if let (Json::Object(target), Json::Object(fields)) = (&mut j, spec) {
            target.extend(fields);
        }
        drop(st);
        let text = j.render();
        let tmp = self.dir.join("job.json.tmp");
        let fin = self.dir.join("job.json");
        // Atomic on POSIX: a crash leaves either the old or the new
        // descriptor, never a torn one.
        if std::fs::write(&tmp, &text).is_ok() {
            let _ = std::fs::rename(&tmp, &fin);
        }
    }
}

/// The in-memory index of jobs plus their durable on-disk tree.
#[derive(Debug)]
pub struct JobRegistry {
    data_dir: PathBuf,
    next_seq: AtomicU64,
    jobs: Mutex<BTreeMap<String, Arc<JobEntry>>>,
}

impl JobRegistry {
    /// Opens (creating if needed) the registry rooted at `data_dir`.
    pub fn open(data_dir: &Path) -> std::io::Result<JobRegistry> {
        std::fs::create_dir_all(data_dir.join("jobs"))?;
        Ok(JobRegistry {
            data_dir: data_dir.to_path_buf(),
            next_seq: AtomicU64::new(1),
            jobs: Mutex::new(BTreeMap::new()),
        })
    }

    /// The registry's root directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Creates a new durable job from `spec`.
    pub fn create(&self, spec: JobSpec) -> std::io::Result<Arc<JobEntry>> {
        // Sequence numbers skip past any dirs already on disk so restart
        // never reuses an id.
        loop {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let id = format!("job-{seq:06}");
            let dir = self.data_dir.join("jobs").join(&id);
            match std::fs::create_dir(&dir) {
                Ok(()) => {
                    let entry = Arc::new(JobEntry {
                        id: id.clone(),
                        spec,
                        dir,
                        admitted: Instant::now(),
                        status: Mutex::new(JobStatus {
                            phase: JobPhase::Queued,
                            shards_done: 0,
                            cells_done: 0,
                            digest: None,
                            error: None,
                        }),
                        events: Mutex::new(Vec::new()),
                    });
                    entry.persist();
                    entry.push_event("admitted", Json::obj().field("id", id.as_str()));
                    self.jobs
                        .lock()
                        .expect("registry poisoned")
                        .insert(id, Arc::clone(&entry));
                    return Ok(entry);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .get(id)
            .cloned()
    }

    /// Every job, in id order.
    pub fn list(&self) -> Vec<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Scans the on-disk tree for jobs left by a previous process.
    ///
    /// Terminal jobs are re-indexed (their reports stay queryable);
    /// non-terminal jobs — queued or mid-run when the old process died —
    /// are returned so the caller can re-queue them. Their campaign
    /// directories still hold every committed shard, so the re-run resumes
    /// instead of restarting. Descriptors that fail to parse are skipped
    /// with a note on stderr; a corrupt job must not prevent startup.
    pub fn recover(&self, registry: &StudyRegistry) -> Vec<Arc<JobEntry>> {
        let jobs_root = self.data_dir.join("jobs");
        let mut dirs: Vec<PathBuf> = match std::fs::read_dir(&jobs_root) {
            Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(_) => return Vec::new(),
        };
        dirs.sort();
        let mut requeue = Vec::new();
        let mut max_seq = 0u64;
        for dir in dirs {
            let id = match dir.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if let Some(seq) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
                max_seq = max_seq.max(seq);
            }
            let text = match std::fs::read_to_string(dir.join("job.json")) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("repro serve: skipping {id}: unreadable job.json: {e}");
                    continue;
                }
            };
            let parsed = Json::parse(&text).map_err(|e| e.to_string()).and_then(|j| {
                let spec = JobSpec::from_descriptor(&j)?;
                let phase = j
                    .get("state")
                    .and_then(Json::as_str)
                    .and_then(JobPhase::parse)
                    .ok_or("descriptor missing `state`")?;
                Ok((spec, phase, j.get("digest").and_then(Json::as_hex)))
            });
            let (spec, phase, digest) = match parsed {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("repro serve: skipping {id}: {e}");
                    continue;
                }
            };
            if registry.get(&spec.study).is_none() {
                eprintln!(
                    "repro serve: skipping {id}: study `{}` not in this binary",
                    spec.study
                );
                continue;
            }
            let entry = Arc::new(JobEntry {
                id: id.clone(),
                spec,
                dir,
                admitted: Instant::now(),
                status: Mutex::new(JobStatus {
                    // A job that was mid-run goes back to the queue.
                    phase: if phase.is_terminal() {
                        phase
                    } else {
                        JobPhase::Queued
                    },
                    shards_done: 0,
                    cells_done: 0,
                    digest,
                    error: None,
                }),
                events: Mutex::new(Vec::new()),
            });
            if !phase.is_terminal() {
                entry.push_event("recovered", Json::obj().field("id", id.as_str()));
                requeue.push(Arc::clone(&entry));
            }
            self.jobs
                .lock()
                .expect("registry poisoned")
                .insert(id, entry);
        }
        self.next_seq.store(max_seq + 1, Ordering::Relaxed);
        requeue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "giantsan-jobs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_parses_and_rejects_unknowns() {
        let reg = StudyRegistry::builtin();
        let good = Json::parse(
            r#"{"study":"echo","params":{"scale":4,"seed":"0x7"},"shards":2,"deadline_ms":5000}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&good, &reg).unwrap();
        assert_eq!(spec.study, "echo");
        assert_eq!(spec.opts.scale, 4);
        assert_eq!(spec.opts.seed, 7);
        assert_eq!(spec.shards, 2);
        assert_eq!(spec.deadline, Some(Duration::from_millis(5000)));

        let bad_study = Json::parse(r#"{"study":"nope"}"#).unwrap();
        assert!(JobSpec::from_json(&bad_study, &reg).is_err());
        let bad_field = Json::parse(r#"{"study":"echo","frobnicate":1}"#).unwrap();
        assert!(JobSpec::from_json(&bad_field, &reg).is_err());
        let bad_shards = Json::parse(r#"{"study":"echo","shards":100000}"#).unwrap();
        assert!(JobSpec::from_json(&bad_shards, &reg).is_err());
    }

    #[test]
    fn registry_persists_and_recovers_nonterminal_jobs() {
        let reg = StudyRegistry::builtin();
        let dir = tmpdir("recover");
        let jobs = JobRegistry::open(&dir).unwrap();
        let spec = JobSpec::from_json(
            &Json::parse(r#"{"study":"echo","shards":2}"#).unwrap(),
            &reg,
        )
        .unwrap();
        let a = jobs.create(spec.clone()).unwrap();
        let b = jobs.create(spec).unwrap();
        assert_eq!(a.id, "job-000001");
        assert_eq!(b.id, "job-000002");
        a.update(|st| {
            st.phase = JobPhase::Completed;
            st.digest = Some(0xdead_beef);
        });
        b.update(|st| st.phase = JobPhase::Running);

        // A fresh registry (new process) recovers: terminal job indexed,
        // running job re-queued, ids never reused.
        let jobs2 = JobRegistry::open(&dir).unwrap();
        let requeue = jobs2.recover(&reg);
        assert_eq!(requeue.len(), 1);
        assert_eq!(requeue[0].id, "job-000002");
        assert_eq!(requeue[0].status().phase, JobPhase::Queued);
        let done = jobs2.get("job-000001").unwrap();
        assert_eq!(done.status().phase, JobPhase::Completed);
        assert_eq!(done.status().digest, Some(0xdead_beef));
        let c = jobs2
            .create(JobSpec::from_json(&Json::parse(r#"{"study":"echo"}"#).unwrap(), &reg).unwrap())
            .unwrap();
        assert_eq!(c.id, "job-000003");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_render_as_jsonl() {
        let reg = StudyRegistry::builtin();
        let dir = tmpdir("events");
        let jobs = JobRegistry::open(&dir).unwrap();
        let spec = JobSpec::from_json(&Json::parse(r#"{"study":"echo"}"#).unwrap(), &reg).unwrap();
        let j = jobs.create(spec).unwrap();
        j.push_event("shard", Json::obj().field("shard", 0u64));
        let jsonl = j.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"admitted\""));
        assert!(lines[1].contains("\"event\":\"shard\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
