//! Minimal HTTP/1.1 over `std::net`: request parsing, response writing.
//!
//! The repo vendors no HTTP stack, so the service speaks a deliberately
//! small, strict subset of HTTP/1.1: one request per connection
//! (`Connection: close` on every response), `Content-Length`-framed bodies
//! both ways, and hard limits on header and body sizes so a hostile client
//! cannot balloon memory. Anything outside the subset gets a clean 4xx, not
//! a hang — reads run under a socket timeout, so a slow-loris connection
//! costs one handler slot for at most the read timeout.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request-line + headers section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on request bodies (submissions are small JSON documents).
pub const MAX_BODY_BYTES: usize = 256 * 1024;
/// Socket read timeout: a client that stops sending mid-request is cut off.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Socket write timeout: a client that stops reading cannot pin a handler.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query string (without `?`), empty when absent.
    pub query: String,
    /// Headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// The first value of a `k=v` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// What went wrong reading a request — each maps to one 4xx response.
#[derive(Debug)]
pub enum ParseError {
    /// Network-level failure or timeout mid-request.
    Io(std::io::Error),
    /// Malformed request line or headers.
    Malformed(&'static str),
    /// Head or body over the hard limits.
    TooLarge(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o: {e}"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

/// Reads one request from `stream` (which must already have its timeouts
/// set; see [`configure_stream`]).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line.
    read_line_capped(&mut reader, &mut head)?;
    let line = head.trim_end().to_string();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Headers.
    let mut headers = HashMap::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        read_line_capped(&mut reader, &mut hline)?;
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("headers"));
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }

    // Body: Content-Length framing only (no chunked uploads).
    let len: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| ParseError::Malformed("bad content-length"))?,
    };
    if headers
        .get("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed("chunked uploads not supported"));
    }
    if len > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("body"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(ParseError::Io)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn read_line_capped(
    reader: &mut BufReader<&mut TcpStream>,
    out: &mut String,
) -> Result<(), ParseError> {
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = taken.read_line(out).map_err(ParseError::Io)?;
    if n == 0 {
        return Err(ParseError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a full request",
        )));
    }
    if n > MAX_HEAD_BYTES {
        return Err(ParseError::TooLarge("request line"));
    }
    Ok(())
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status, content type, and body.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), content_type.into())],
            body: body.into(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// A JSONL event stream (`application/x-ndjson`).
    pub fn ndjson(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "application/x-ndjson", body)
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl ToString) -> Response {
        self.headers.push((name.into(), value.to_string()));
        self
    }

    /// The standard error shape: `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = crate::json::Json::obj()
            .field("error", message)
            .render_compact();
        Response::json(status, doc)
    }

    /// Serialises onto `stream`. Write errors are returned (the caller just
    /// logs them — the client hung up, nothing to recover).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Applies the service's socket discipline to an accepted connection.
pub fn configure_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.set_nodelay(true)
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Keep the socket open until the server is done parsing.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        configure_stream(&stream).unwrap();
        let req = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /v1/jobs?x=1&y=2 HTTP/1.1\r\nHost: h\r\nX-Client: alice\r\n\
              Content-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query_param("y"), Some("2"));
        assert_eq!(req.header("x-client"), Some("alice"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_requests() {
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            round_trip(big.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
        assert!(matches!(
            round_trip(b"NONSENSE\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(b"GET / SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format_is_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(429, "{\"error\":\"slow down\"}")
                .header("Retry-After", 2)
                .write_to(&mut stream)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        server.join().unwrap();
        assert!(
            out.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{out}"
        );
        assert!(out.contains("Retry-After: 2\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with("{\"error\":\"slow down\"}"));
    }
}
