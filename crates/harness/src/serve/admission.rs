//! Admission control: per-client token buckets and a bounded job queue.
//!
//! Two gates stand between a submission and a worker:
//!
//! 1. **Rate limit** — every client (the `X-Client` header, falling back to
//!    the peer IP) owns a token bucket refilled at `rate` tokens/second up
//!    to `burst`. A submission without a token is shed with `429` and a
//!    `Retry-After` telling the client when a token will exist. Buckets are
//!    lazily created and periodically pruned, so an attacker cycling client
//!    ids cannot grow the table without bound.
//! 2. **Bounded queue** — accepted jobs enter a FIFO of fixed capacity.
//!    When the workers fall behind and the queue fills, further submissions
//!    are shed with `429 + Retry-After` (load shedding, not buffering:
//!    unbounded queues turn overload into latency and memory growth).
//!
//! Shedding is deliberately cheap — no allocation beyond the response — so
//! the service degrades gracefully: past saturation, throughput stays at
//! the pool's capacity and excess load is bounced in O(1) per request.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A per-client token bucket.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Tokens available, in token-microseconds (scaled to avoid floats).
    tokens_us: u64,
    /// Last refill instant.
    refreshed: Instant,
}

/// Per-client token-bucket rate limiter.
#[derive(Debug)]
pub struct RateLimiter {
    /// Refill rate in tokens per second; 0 disables the limiter.
    rate: u32,
    /// Bucket capacity in tokens.
    burst: u32,
    buckets: Mutex<HashMap<String, Bucket>>,
}

/// The outcome of asking the limiter for one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Token granted.
    Admit,
    /// Shed; retry after the embedded number of whole seconds (≥ 1).
    Shed {
        /// Seconds until a token is expected (rounded up, minimum 1).
        retry_after_s: u64,
    },
}

const TOKEN_US: u64 = 1_000_000;

impl RateLimiter {
    /// A limiter granting `rate` submissions/second with bursts of `burst`.
    /// `rate == 0` disables rate limiting entirely.
    pub fn new(rate: u32, burst: u32) -> RateLimiter {
        RateLimiter {
            rate,
            burst: burst.max(1),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token for `client`, refilling the bucket first.
    pub fn admit(&self, client: &str) -> RateDecision {
        if self.rate == 0 {
            return RateDecision::Admit;
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("rate limiter poisoned");
        // Opportunistic pruning keeps the table bounded against client-id
        // churn: full buckets that have not been touched lately carry no
        // information (a fresh bucket is also full).
        if buckets.len() >= 4096 {
            let burst_us = self.burst as u64 * TOKEN_US;
            buckets.retain(|_, b| b.tokens_us < burst_us);
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens_us: self.burst as u64 * TOKEN_US,
            refreshed: now,
        });
        let elapsed_us = now.duration_since(bucket.refreshed).as_micros() as u64;
        let refill = elapsed_us.saturating_mul(self.rate as u64);
        bucket.tokens_us = (bucket.tokens_us + refill).min(self.burst as u64 * TOKEN_US);
        bucket.refreshed = now;
        if bucket.tokens_us >= TOKEN_US {
            bucket.tokens_us -= TOKEN_US;
            RateDecision::Admit
        } else {
            let deficit_us = TOKEN_US - bucket.tokens_us;
            let wait_us = deficit_us.div_ceil(self.rate as u64);
            RateDecision::Shed {
                retry_after_s: wait_us.div_ceil(TOKEN_US).max(1),
            }
        }
    }
}

/// Why a push into the bounded queue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRefusal {
    /// The queue is at capacity — shed with 429.
    Full {
        /// Suggested client back-off in seconds.
        retry_after_s: u64,
    },
    /// The queue is draining for shutdown — shed with 503.
    Draining,
}

/// A bounded MPMC FIFO with shutdown semantics.
///
/// Producers (HTTP handlers) [`BoundedQueue::push`]; consumers (job workers)
/// [`BoundedQueue::pop`], blocking until an item or drain. Closing the queue
/// wakes every waiter: producers start refusing, consumers drain what is
/// left and then observe `None`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (for metrics/readiness; racy by nature).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// `true` once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Enqueues `item`, refusing when full or draining.
    pub fn push(&self, item: T) -> Result<(), QueueRefusal> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(QueueRefusal::Draining);
        }
        if inner.items.len() >= self.capacity {
            // Retry-After scales with how deep the backlog is: a full queue
            // of slow jobs needs a longer back-off than a blip.
            return Err(QueueRefusal::Full {
                retry_after_s: (self.capacity as u64 / 64).clamp(1, 30),
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and empty.
    /// `None` means the queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers refuse, blocked consumers wake, items
    /// already queued are still handed out (drain semantics).
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_admits_burst_then_sheds_with_retry_after() {
        let rl = RateLimiter::new(1, 3);
        for _ in 0..3 {
            assert_eq!(rl.admit("alice"), RateDecision::Admit);
        }
        match rl.admit("alice") {
            RateDecision::Shed { retry_after_s } => assert!(retry_after_s >= 1),
            other => panic!("expected shed, got {other:?}"),
        }
        // A different client has its own bucket.
        assert_eq!(rl.admit("bob"), RateDecision::Admit);
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let rl = RateLimiter::new(0, 1);
        for _ in 0..100 {
            assert_eq!(rl.admit("anyone"), RateDecision::Admit);
        }
    }

    #[test]
    fn queue_sheds_when_full_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(matches!(q.push(3), Err(QueueRefusal::Full { .. })));
        q.close();
        assert!(matches!(q.push(4), Err(QueueRefusal::Draining)));
        // Drain semantics: queued items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(7u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
