//! Request routing: URL space, admission decisions, response bodies.
//!
//! The router is deliberately a pure function from (request, client id,
//! shared state) to a [`Response`] — no sockets — so the whole URL space is
//! unit-testable without binding a port. The accept loop in `serve::mod`
//! owns the transport concerns (timeouts, response writing, metrics for
//! status classes).
//!
//! URL space:
//!
//! | Method & path | Purpose |
//! |---|---|
//! | `POST /v1/jobs` | submit a job (rate limit → queue → `202` with id) |
//! | `GET /v1/jobs` | list all jobs |
//! | `GET /v1/jobs/{id}` | one job's status document |
//! | `GET /v1/jobs/{id}/events` | the job's event log as JSON Lines |
//! | `GET /v1/jobs/{id}/spans` | the job's causal span chain as JSON Lines |
//! | `GET /v1/jobs/{id}/report` | rendered study report (`?format=json`) |
//! | `GET /v1/studies` | the study registry |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | liveness (always `200` while the process serves) |
//! | `GET /readyz` | readiness (`503` once draining) |
//! | `POST /admin/drain` | begin graceful shutdown |

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::json::Json;
use crate::serve::admission::{QueueRefusal, RateDecision, RateLimiter};
use crate::serve::http::{Request, Response};
use crate::serve::jobs::{JobPhase, JobSpec};
use crate::serve::scheduler::SchedulerShared;

/// The router: shared scheduler state plus the front-end rate limiter.
#[derive(Debug)]
pub struct Router {
    shared: Arc<SchedulerShared>,
    limiter: RateLimiter,
}

impl Router {
    /// A router over `shared`, shedding clients past `rate`/`burst`
    /// submissions per second (`rate == 0` disables rate limiting).
    pub fn new(shared: Arc<SchedulerShared>, rate: u32, burst: u32) -> Router {
        Router {
            shared,
            limiter: RateLimiter::new(rate, burst),
        }
    }

    /// The shared state (for the accept loop's metrics/readiness).
    pub fn shared(&self) -> &Arc<SchedulerShared> {
        &self.shared
    }

    /// Routes one request. `client` identifies the submitter for rate
    /// limiting (the `X-Client` header when present, else the peer IP).
    pub fn handle(&self, req: &Request, client: &str) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/readyz") => {
                if self.shared.accepting() {
                    Response::text(200, "ready\n")
                } else {
                    Response::text(503, "draining\n")
                }
            }
            ("GET", "/metrics") => {
                let m = &self.shared.metrics;
                let body = m.exposition(
                    self.shared.queue.depth(),
                    self.shared.queue.capacity(),
                    self.shared.accepting(),
                );
                Response::new(200, "text/plain; version=0.0.4", body)
            }
            ("GET", "/v1/studies") => {
                let names: Vec<Json> = self
                    .shared
                    .studies
                    .names()
                    .into_iter()
                    .map(Json::from)
                    .collect();
                Response::json(200, Json::obj().field("studies", names).render())
            }
            ("POST", "/v1/jobs") => self.submit(req, client),
            ("GET", "/v1/jobs") => {
                let jobs: Vec<Json> = self
                    .shared
                    .jobs
                    .list()
                    .iter()
                    .map(|j| j.snapshot())
                    .collect();
                Response::json(200, Json::obj().field("jobs", jobs).render())
            }
            ("POST", "/admin/drain") => {
                // Instance-scoped, not the global signal flag: a drain of
                // this server must not tear down other instances in the
                // same process (tests, embedded loadgen).
                self.shared.draining.store(true, Ordering::SeqCst);
                self.shared.queue.close();
                Response::text(202, "draining\n")
            }
            ("GET", path) => self.job_subresource(req, path),
            (method, _) => Response::error(405, &format!("method {method} not supported")),
        }
    }

    fn submit(&self, req: &Request, client: &str) -> Response {
        if !self.shared.accepting() {
            self.bump(&self.shared.metrics.shed_draining);
            return Response::error(503, "server is draining; resubmit to the next instance")
                .header("Retry-After", "5");
        }
        let client = req.header("x-client").unwrap_or(client);
        if let RateDecision::Shed { retry_after_s } = self.limiter.admit(client) {
            self.bump(&self.shared.metrics.shed_rate_limited);
            return Response::error(429, "client rate limit exceeded")
                .header("Retry-After", retry_after_s.to_string());
        }
        let body = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        let parsed = match Json::parse(body) {
            Ok(j) => j,
            Err(e) => return Response::error(400, &format!("body is not JSON: {e}")),
        };
        let spec = match JobSpec::from_json(&parsed, &self.shared.studies) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };
        let job = match self.shared.jobs.create(spec) {
            Ok(j) => j,
            Err(e) => return Response::error(500, &format!("cannot persist job: {e}")),
        };
        match self.shared.queue.push(Arc::clone(&job)) {
            Ok(()) => {
                self.bump(&self.shared.metrics.jobs_admitted);
                Response::json(
                    202,
                    Json::obj()
                        .field("id", job.id.as_str())
                        .field("state", JobPhase::Queued.name())
                        .render(),
                )
            }
            Err(QueueRefusal::Full { retry_after_s }) => {
                self.bump(&self.shared.metrics.shed_queue_full);
                // The job directory was created but never queued; mark the
                // descriptor failed so recovery does not resurrect it.
                job.update(|st| {
                    st.phase = JobPhase::Failed;
                    st.error = Some("shed: admission queue full".to_string());
                });
                Response::error(429, "admission queue full")
                    .header("Retry-After", retry_after_s.to_string())
            }
            Err(QueueRefusal::Draining) => {
                self.bump(&self.shared.metrics.shed_draining);
                job.update(|st| {
                    st.phase = JobPhase::Failed;
                    st.error = Some("shed: server draining".to_string());
                });
                Response::error(503, "server is draining").header("Retry-After", "5")
            }
        }
    }

    fn job_subresource(&self, req: &Request, path: &str) -> Response {
        let rest = match path.strip_prefix("/v1/jobs/") {
            Some(r) if !r.is_empty() => r,
            _ => return Response::error(404, "no such resource"),
        };
        let (id, sub) = match rest.split_once('/') {
            Some((id, sub)) => (id, Some(sub)),
            None => (rest, None),
        };
        let job = match self.shared.jobs.get(id) {
            Some(j) => j,
            None => return Response::error(404, &format!("no job `{id}`")),
        };
        match sub {
            None => Response::json(200, job.snapshot().render()),
            Some("events") => Response::ndjson(job.events_jsonl()),
            Some("spans") => {
                // Written by the scheduler when the job starts; durable, so
                // it survives the process that ran the job.
                match std::fs::read_to_string(job.dir.join("spans.jsonl")) {
                    Ok(text) => Response::ndjson(text),
                    Err(_) => Response::error(
                        404,
                        &format!("job `{id}` has no span file yet (not started)"),
                    ),
                }
            }
            Some("report") => {
                let st = job.status();
                if st.phase != JobPhase::Completed {
                    return Response::error(
                        409,
                        &format!(
                            "job `{id}` is {}; report needs `completed`",
                            st.phase.name()
                        ),
                    );
                }
                let study = match self.shared.studies.get(&job.spec.study) {
                    Some(s) => s,
                    None => return Response::error(500, "study vanished from registry"),
                };
                let campaign = match crate::campaign::Campaign::new(study, job.spec.opts.clone()) {
                    Ok(c) => c,
                    Err(e) => return Response::error(500, &e.to_string()),
                };
                let records = match campaign.load_records(&job.campaign_dir()) {
                    Ok(r) => r,
                    Err(e) => return Response::error(500, &e.to_string()),
                };
                let out = match study.render(&job.spec.opts, &records) {
                    Ok(o) => o,
                    Err(e) => return Response::error(500, &e),
                };
                if req.query_param("format") == Some("json") {
                    let doc = out
                        .json
                        .unwrap_or_else(|| crate::study::records_json(&job.spec.study, &records));
                    Response::json(200, doc)
                } else {
                    Response::text(200, out.report)
                }
            }
            Some(other) => Response::error(404, &format!("no job subresource `{other}`")),
        }
    }

    fn bump(&self, counter: &std::sync::atomic::AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::admission::BoundedQueue;
    use crate::serve::jobs::JobRegistry;
    use crate::serve::metrics::ServiceMetrics;
    use crate::serve::scheduler::{run_job, SchedulerConfig};
    use crate::study::StudyRegistry;
    use std::collections::HashMap;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::AtomicBool;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "giantsan-router-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn router(dir: &Path, queue_cap: usize, rate: u32) -> Router {
        let shared = Arc::new(SchedulerShared {
            queue: BoundedQueue::new(queue_cap),
            metrics: ServiceMetrics::default(),
            studies: StudyRegistry::builtin(),
            jobs: JobRegistry::open(dir).unwrap(),
            draining: AtomicBool::new(false),
            config: SchedulerConfig::default(),
            flight: Arc::new(giantsan_telemetry::FlightRecorder::new(
                2,
                giantsan_telemetry::DEFAULT_FLIGHT_CAPACITY,
            )),
            active_job: std::sync::Mutex::new(None),
        });
        Router::new(shared, rate, rate.max(1))
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path.to_string(), String::new()),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            headers: HashMap::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn health_metrics_and_studies_respond() {
        let dir = tmpdir("basic");
        let r = router(&dir, 4, 0);
        assert_eq!(r.handle(&get("/healthz"), "t").status, 200);
        assert_eq!(r.handle(&get("/readyz"), "t").status, 200);
        let m = r.handle(&get("/metrics"), "t");
        assert_eq!(m.status, 200);
        assert!(String::from_utf8(m.body)
            .unwrap()
            .contains("giantsan_serve_ready 1"));
        let s = r.handle(&get("/v1/studies"), "t");
        assert!(String::from_utf8(s.body).unwrap().contains("\"echo\""));
        assert_eq!(r.handle(&get("/nope"), "t").status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_then_run_then_report() {
        let dir = tmpdir("submit");
        let r = router(&dir, 4, 0);
        let resp = r.handle(
            &post(
                "/v1/jobs",
                r#"{"study":"echo","params":{"scale":3,"rounds":1}}"#,
            ),
            "t",
        );
        assert_eq!(
            resp.status,
            202,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let id = body.get("id").and_then(Json::as_str).unwrap().to_string();
        // Report before completion: 409.
        assert_eq!(
            r.handle(&get(&format!("/v1/jobs/{id}/report")), "t").status,
            409
        );
        // Run it inline (no worker pool in this test).
        let job = r.shared().queue.pop().unwrap();
        run_job(r.shared(), &job);
        let status = r.handle(&get(&format!("/v1/jobs/{id}")), "t");
        assert!(String::from_utf8(status.body)
            .unwrap()
            .contains("\"completed\""));
        let report = r.handle(&get(&format!("/v1/jobs/{id}/report")), "t");
        assert_eq!(report.status, 200);
        assert!(String::from_utf8(report.body)
            .unwrap()
            .contains("campaign digest"));
        let json = r.handle(&get(&format!("/v1/jobs/{id}/report?format=json")), "t");
        assert!(String::from_utf8(json.body).unwrap().contains("\"digest\""));
        let events = r.handle(&get(&format!("/v1/jobs/{id}/events")), "t");
        let text = String::from_utf8(events.body).unwrap();
        assert!(text.contains("\"event\":\"admitted\""));
        assert!(text.contains("\"event\":\"completed\""));
        // The causal span chain is served as JSONL and chains to a request
        // root.
        let spans = r.handle(&get(&format!("/v1/jobs/{id}/spans")), "t");
        assert_eq!(spans.status, 200);
        let spans = String::from_utf8(spans.body).unwrap();
        assert!(spans.contains("\"kind\":\"request\""));
        assert!(spans.contains("\"kind\":\"cell\""));
        assert!(spans
            .lines()
            .all(|l| giantsan_telemetry::parse_span_line(l).is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_before_start_is_a_404() {
        let dir = tmpdir("nospans");
        let r = router(&dir, 4, 0);
        let resp = r.handle(&post("/v1/jobs", r#"{"study":"echo"}"#), "t");
        assert_eq!(resp.status, 202);
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let id = body.get("id").and_then(Json::as_str).unwrap().to_string();
        // Queued but never started: no spans.jsonl on disk yet.
        assert_eq!(
            r.handle(&get(&format!("/v1/jobs/{id}/spans")), "t").status,
            404
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_sheds_with_retry_after() {
        let dir = tmpdir("shed");
        let r = router(&dir, 2, 0);
        let body = r#"{"study":"echo","params":{"scale":1,"rounds":1}}"#;
        assert_eq!(r.handle(&post("/v1/jobs", body), "t").status, 202);
        assert_eq!(r.handle(&post("/v1/jobs", body), "t").status, 202);
        let shed = r.handle(&post("/v1/jobs", body), "t");
        assert_eq!(shed.status, 429);
        assert!(shed.headers.iter().any(|(k, _)| k == "Retry-After"));
        assert_eq!(
            r.shared().metrics.shed_queue_full.load(Ordering::Relaxed),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rate_limiter_sheds_per_client() {
        let dir = tmpdir("rate");
        let r = router(&dir, 64, 1); // 1/s, burst 1
        let body = r#"{"study":"echo"}"#;
        assert_eq!(r.handle(&post("/v1/jobs", body), "alice").status, 202);
        assert_eq!(r.handle(&post("/v1/jobs", body), "alice").status, 429);
        // Different client: own bucket.
        assert_eq!(r.handle(&post("/v1/jobs", body), "bob").status, 202);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_refuses_submissions_and_flips_readyz() {
        let dir = tmpdir("drain");
        let r = router(&dir, 4, 0);
        r.shared().draining.store(true, Ordering::SeqCst);
        assert_eq!(r.handle(&get("/readyz"), "t").status, 503);
        let resp = r.handle(&post("/v1/jobs", r#"{"study":"echo"}"#), "t");
        assert_eq!(resp.status, 503);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_submissions_get_400() {
        let dir = tmpdir("bad");
        let r = router(&dir, 4, 0);
        assert_eq!(r.handle(&post("/v1/jobs", "not json"), "t").status, 400);
        assert_eq!(
            r.handle(&post("/v1/jobs", r#"{"study":"nope"}"#), "t")
                .status,
            400
        );
        assert_eq!(r.handle(&get("/v1/jobs/job-999999"), "t").status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
