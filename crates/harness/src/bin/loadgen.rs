//! `loadgen` — hammer a `repro serve` instance and verify its answers.
//!
//! ```text
//! loadgen hammer --addr HOST:PORT [--sessions N] [--clients N] [--scale N]
//!                [--rounds N] [--seed S] [--shards N] [--deadline-ms N]
//!                [--no-wait] [--format json]
//!     Submit N sessions from C concurrent clients with retry/backoff/jitter,
//!     wait for every accepted job to finish, and report throughput,
//!     submit-latency p50/p99, and shed counts.
//!
//! loadgen watch --addr HOST:PORT --job ID [--timeout-s N]
//!     Poll one job to a terminal state and print its final status document.
//!     Exits 1 if the job failed or the wait timed out.
//!
//! loadgen expect [--scale N] [--rounds N] [--seed S]
//!     Compute, in-process and serially, the campaign digest the echo study
//!     must produce for these parameters, and print it. The chaos drill
//!     compares this against the digest a kill/restart/resume server run
//!     reports: equality proves zero lost and zero duplicated cells.
//! ```
//!
//! The client is hand-rolled over `std::net` like the server: one request
//! per connection, `Content-Length` framing, socket timeouts. Backoff is
//! decorrelated jitter seeded from `--seed` and the client index via
//! `splitmix64`, honouring `Retry-After` when the server sheds.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use giantsan_harness::batch::BatchRunner;
use giantsan_harness::campaign::{records_digest, Campaign};
use giantsan_harness::faults::splitmix64;
use giantsan_harness::json::Json;
use giantsan_harness::study::{StudyOpts, StudyRegistry};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One HTTP exchange: returns `(status, headers, body)`.
fn http(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    client_id: &str,
) -> Result<(u16, HashMap<String, String>, String), String> {
    let sock_addr = addr
        .parse()
        .map_err(|e| format!("bad address `{addr}`: {e}"))?;
    let mut s = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(IO_TIMEOUT)).ok();
    s.set_write_timeout(Some(IO_TIMEOUT)).ok();
    s.set_nodelay(true).ok();
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nX-Client: {client_id}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, resp_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or("malformed status line")?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, resp_body.to_string()))
}

/// Shared hammer tallies.
#[derive(Debug, Default)]
struct Tally {
    accepted: AtomicU64,
    shed_429: AtomicU64,
    refused_503: AtomicU64,
    rejected_4xx: AtomicU64,
    errors_5xx: AtomicU64,
    transport_errors: AtomicU64,
    /// Per-submission round-trip times (accepted submissions only), µs.
    submit_us: Mutex<Vec<u64>>,
    /// Accepted job ids, for the completion wait.
    job_ids: Mutex<Vec<String>>,
}

#[derive(Debug, Clone)]
struct HammerOpts {
    addr: String,
    sessions: usize,
    clients: usize,
    scale: u64,
    rounds: u64,
    seed: u64,
    shards: usize,
    deadline_ms: Option<u64>,
    wait: bool,
    json: bool,
}

fn parse_u64(v: &str) -> Result<u64, String> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number `{v}`: {e}"))
    } else {
        v.parse().map_err(|e| format!("bad number `{v}`: {e}"))
    }
}

fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a String, String> {
    it.next().ok_or(format!("{name} needs a value"))
}

fn parse_hammer(args: &[String]) -> Result<HammerOpts, String> {
    let mut o = HammerOpts {
        addr: String::new(),
        sessions: 200,
        clients: 16,
        scale: 4,
        rounds: 1,
        seed: 0x10ad,
        shards: 1,
        deadline_ms: None,
        wait: true,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => o.addr = flag_value(&mut it, "--addr")?.clone(),
            "--sessions" => o.sessions = parse_u64(flag_value(&mut it, "--sessions")?)? as usize,
            "--clients" => {
                o.clients = parse_u64(flag_value(&mut it, "--clients")?)?.max(1) as usize
            }
            "--scale" => o.scale = parse_u64(flag_value(&mut it, "--scale")?)?,
            "--rounds" => o.rounds = parse_u64(flag_value(&mut it, "--rounds")?)?,
            "--seed" => o.seed = parse_u64(flag_value(&mut it, "--seed")?)?,
            "--shards" => o.shards = parse_u64(flag_value(&mut it, "--shards")?)? as usize,
            "--deadline-ms" => {
                o.deadline_ms = Some(parse_u64(flag_value(&mut it, "--deadline-ms")?)?)
            }
            "--no-wait" => o.wait = false,
            "--format" => {
                o.json = match flag_value(&mut it, "--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            other => return Err(format!("unknown hammer flag `{other}`")),
        }
    }
    if o.addr.is_empty() {
        return Err("hammer needs --addr HOST:PORT".to_string());
    }
    Ok(o)
}

/// Decorrelated-jitter backoff: at least the server's `Retry-After` when
/// given, otherwise an exponentially growing, jittered delay.
fn backoff(attempt: u32, retry_after_s: Option<u64>, rng: &mut u64) -> Duration {
    if let Some(s) = retry_after_s {
        // Honour the server's hint, plus up to 250ms of jitter so a shed
        // burst does not come back as a synchronized burst.
        let jitter_ms = splitmix64(rng) % 250;
        return Duration::from_millis(s.saturating_mul(1000).min(10_000) + jitter_ms);
    }
    let cap_ms = 2_000u64;
    let base_ms = 25u64.saturating_mul(1 << attempt.min(6));
    Duration::from_millis(25 + splitmix64(rng) % base_ms.min(cap_ms))
}

fn hammer(o: &HammerOpts) -> Result<Json, String> {
    let tally = Arc::new(Tally::default());
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..o.clients {
            let tally = Arc::clone(&tally);
            let next = Arc::clone(&next);
            let o = o.clone();
            scope.spawn(move || {
                let client_id = format!("loadgen-{client}");
                let mut rng = o.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= o.sessions {
                        return;
                    }
                    // Every session gets its own seed so job digests differ;
                    // the chaos drill uses one fixed seed instead.
                    let mut body = Json::obj().field("study", "echo").field(
                        "params",
                        Json::obj()
                            .field("scale", o.scale)
                            .field("rounds", o.rounds)
                            .field("seed", format!("{:#x}", o.seed ^ n as u64)),
                    );
                    body = body.field("shards", o.shards as u64);
                    if let Some(d) = o.deadline_ms {
                        body = body.field("deadline_ms", d);
                    }
                    let body = body.render_compact();
                    let mut attempt = 0u32;
                    loop {
                        let t0 = Instant::now();
                        match http(&o.addr, "POST", "/v1/jobs", Some(&body), &client_id) {
                            Ok((202, _, resp)) => {
                                tally.accepted.fetch_add(1, Ordering::Relaxed);
                                tally
                                    .submit_us
                                    .lock()
                                    .unwrap()
                                    .push(t0.elapsed().as_micros() as u64);
                                if let Ok(j) = Json::parse(&resp) {
                                    if let Some(id) = j.get("id").and_then(Json::as_str) {
                                        tally.job_ids.lock().unwrap().push(id.to_string());
                                    }
                                }
                                break;
                            }
                            Ok((status @ (429 | 503), headers, _)) => {
                                if status == 429 {
                                    tally.shed_429.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    tally.refused_503.fetch_add(1, Ordering::Relaxed);
                                }
                                let retry_after =
                                    headers.get("retry-after").and_then(|v| v.parse().ok());
                                std::thread::sleep(backoff(attempt, retry_after, &mut rng));
                                attempt += 1;
                            }
                            Ok((status, _, _)) if (500..600).contains(&status) => {
                                tally.errors_5xx.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(backoff(attempt, None, &mut rng));
                                attempt += 1;
                            }
                            Ok((_, _, _)) => {
                                // 4xx other than shed: a bug in the request;
                                // retrying cannot help.
                                tally.rejected_4xx.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(_) => {
                                tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(backoff(attempt, None, &mut rng));
                                attempt += 1;
                            }
                        }
                        if attempt > 50 {
                            // Give up on this session; counted as a transport
                            // error so the run still terminates.
                            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    let submit_wall = started.elapsed();

    // Wait for every accepted job to reach a terminal state.
    let ids: Vec<String> = tally.job_ids.lock().unwrap().clone();
    let mut completed = 0u64;
    let mut failed = 0u64;
    if o.wait {
        for id in &ids {
            let t0 = Instant::now();
            loop {
                if let Ok((200, _, body)) = http(
                    &o.addr,
                    "GET",
                    &format!("/v1/jobs/{id}"),
                    None,
                    "loadgen-wait",
                ) {
                    let state = Json::parse(&body)
                        .ok()
                        .and_then(|j| j.get("state").and_then(Json::as_str).map(str::to_string))
                        .unwrap_or_default();
                    match state.as_str() {
                        "completed" => {
                            completed += 1;
                            break;
                        }
                        "failed" | "timed-out" => {
                            failed += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                if t0.elapsed() > Duration::from_secs(120) {
                    failed += 1;
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let total_wall = started.elapsed();

    let mut lat: Vec<u64> = tally.submit_us.lock().unwrap().clone();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize]
        }
    };
    let accepted = tally.accepted.load(Ordering::Relaxed);
    Ok(Json::obj()
        .field("sessions", o.sessions as u64)
        .field("clients", o.clients as u64)
        .field("accepted", accepted)
        .field("shed_429", tally.shed_429.load(Ordering::Relaxed))
        .field("refused_503", tally.refused_503.load(Ordering::Relaxed))
        .field("rejected_4xx", tally.rejected_4xx.load(Ordering::Relaxed))
        .field("errors_5xx", tally.errors_5xx.load(Ordering::Relaxed))
        .field(
            "transport_errors",
            tally.transport_errors.load(Ordering::Relaxed),
        )
        .field("completed", completed)
        .field("failed", failed)
        .field("submit_wall_ms", submit_wall.as_millis() as u64)
        .field("total_wall_ms", total_wall.as_millis() as u64)
        .field("submit_p50_us", pct(0.50))
        .field("submit_p99_us", pct(0.99))
        .field(
            "accepted_per_s",
            (accepted as f64 / submit_wall.as_secs_f64().max(1e-9) * 100.0).round() / 100.0,
        ))
}

fn watch(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut job = String::new();
    let mut timeout = Duration::from_secs(120);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = flag_value(&mut it, "--addr")?.clone(),
            "--job" => job = flag_value(&mut it, "--job")?.clone(),
            "--timeout-s" => {
                timeout = Duration::from_secs(parse_u64(flag_value(&mut it, "--timeout-s")?)?)
            }
            other => return Err(format!("unknown watch flag `{other}`")),
        }
    }
    if addr.is_empty() || job.is_empty() {
        return Err("watch needs --addr and --job".to_string());
    }
    let t0 = Instant::now();
    loop {
        let (status, _, body) = http(&addr, "GET", &format!("/v1/jobs/{job}"), None, "loadgen")?;
        if status != 200 {
            return Err(format!("GET /v1/jobs/{job}: status {status}: {body}"));
        }
        let state = Json::parse(&body)?
            .get("state")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_default();
        match state.as_str() {
            "completed" => {
                println!("{body}");
                return Ok(());
            }
            "failed" | "timed-out" => {
                println!("{body}");
                return Err(format!("job {job} ended {state}"));
            }
            _ => {}
        }
        if t0.elapsed() > timeout {
            return Err(format!("job {job} still `{state}` after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn expect(args: &[String]) -> Result<(), String> {
    let mut opts = StudyOpts {
        scale: 4,
        rounds: 1,
        seed: 0x10ad,
        ..StudyOpts::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => opts.scale = parse_u64(flag_value(&mut it, "--scale")?)?,
            "--rounds" => opts.rounds = parse_u64(flag_value(&mut it, "--rounds")?)?,
            "--seed" => opts.seed = parse_u64(flag_value(&mut it, "--seed")?)?,
            other => return Err(format!("unknown expect flag `{other}`")),
        }
    }
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").expect("echo is built in");
    let campaign = Campaign::new(study, opts).map_err(|e| e.to_string())?;
    // Serially, in one process: the reference answer the service must match
    // regardless of sharding, parallelism, kills, and resumes.
    let records = campaign.run_all(&BatchRunner::serial());
    println!("{:#018x}", records_digest(&records));
    Ok(())
}

fn usage() -> &'static str {
    "usage: loadgen hammer --addr HOST:PORT [--sessions N] [--clients N] [--scale N] \
     [--rounds N] [--seed S] [--shards N] [--deadline-ms N] [--no-wait] [--format json]\n  \
     loadgen watch --addr HOST:PORT --job ID [--timeout-s N]\n  \
     loadgen expect [--scale N] [--rounds N] [--seed S]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("hammer") => match parse_hammer(&args[1..]) {
            Ok(o) => hammer(&o).map(|summary| {
                if o.json {
                    // Machine mode: the JSON document and nothing else, so
                    // CI can pipe stdout straight into a JSON parser.
                    println!("{}", summary.render());
                } else {
                    println!("== loadgen hammer against {} ==", o.addr);
                    let n = |key: &str| summary.get(key).and_then(Json::as_u64).unwrap_or(0);
                    println!(
                        "submitted {} session(s) from {} client(s): {} accepted, {} shed (429), \
                         {} refused (503), {} rejected (4xx), {} x 5xx, {} transport error(s)",
                        n("sessions"),
                        n("clients"),
                        n("accepted"),
                        n("shed_429"),
                        n("refused_503"),
                        n("rejected_4xx"),
                        n("errors_5xx"),
                        n("transport_errors"),
                    );
                    println!(
                        "completed {}, failed {} in {}ms (submit wall {}ms)",
                        n("completed"),
                        n("failed"),
                        n("total_wall_ms"),
                        n("submit_wall_ms"),
                    );
                    println!(
                        "submit latency p50 {}us, p99 {}us; {} accepted/s",
                        n("submit_p50_us"),
                        n("submit_p99_us"),
                        summary
                            .get("accepted_per_s")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0),
                    );
                }
            }),
            Err(e) => Err(e),
        },
        Some("watch") => watch(&args[1..]),
        Some("expect") => expect(&args[1..]),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
