//! `fuzz` — differential fuzzing across sanitizers.
//!
//! ```text
//! fuzz [--seeds N] [--threads N] [--verbose]
//! ```
//!
//! Generates `N` random safe programs plus `N` buggy programs per injected
//! geometry (see `giantsan_workloads::fuzz`), runs every tool on each, and
//! reports:
//!
//! * **false positives** — reports on safe programs (must be zero for every
//!   tool; a non-zero cell fails the run);
//! * **data divergence** — checksum mismatches vs native execution (must be
//!   zero; instrumentation must never change program behaviour);
//! * **false negatives per geometry** — misses on buggy programs, which for
//!   the baselines are *expected* in the geometries their mechanisms cannot
//!   see (that asymmetry is the paper's detection story).
//!
//! The seed matrix is sharded across `--threads N` workers (default: the
//! host's available parallelism); verdicts are merged in seed order, so the
//! output is identical for every thread count.
//!
//! Exits non-zero if GiantSan misses anything, reports a false positive, or
//! any tool diverges from native data flow.

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use giantsan_harness::{run_tool, BatchRunner, Tool};
use giantsan_runtime::RuntimeConfig;
use giantsan_workloads::fuzz::{buggy_program, safe_program, InjectedBug};

const TOOLS: [Tool; 5] = [
    Tool::GiantSan,
    Tool::Asan,
    Tool::AsanMinusMinus,
    Tool::Lfp,
    Tool::CacheOnly,
];

/// One safe-program seed's verdicts, per tool.
struct SafeVerdict {
    /// Rendered first report when the tool falsely fired.
    false_positive: Option<String>,
    diverged: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seeds = 50u64;
    let mut threads = BatchRunner::available_parallelism();
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seeds = v,
                _ => {
                    eprintln!("--seeds needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) => threads = v,
                _ => {
                    eprintln!("--threads needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let runner = BatchRunner::new(threads);
    let cfg = RuntimeConfig::small();
    let mut failures = 0u32;
    let seed_list: Vec<u64> = (0..seeds).collect();

    // Phase 1: safe programs — FP and divergence sweep.
    println!(
        "phase 1: {seeds} safe programs x {} tools ({} workers)",
        TOOLS.len(),
        runner.threads()
    );
    let safe_verdicts = runner.map(&seed_list, |_, &seed| {
        let fp = safe_program(seed);
        let native = run_tool(Tool::Native, &fp.program, &fp.inputs, &cfg);
        TOOLS
            .iter()
            .map(|&tool| {
                let out = run_tool(tool, &fp.program, &fp.inputs, &cfg);
                SafeVerdict {
                    false_positive: out.detected().then(|| match out.result.reports.first() {
                        Some(r) => r.to_string(),
                        None => "crashed without a report".to_string(),
                    }),
                    diverged: out.result.checksum != native.result.checksum,
                }
            })
            .collect::<Vec<_>>()
    });
    let mut fps: BTreeMap<&str, u32> = BTreeMap::new();
    let mut divergences = 0u32;
    for (seed, verdicts) in seed_list.iter().zip(&safe_verdicts) {
        for (tool, v) in TOOLS.iter().zip(verdicts) {
            if let Some(report) = &v.false_positive {
                *fps.entry(tool.name()).or_default() += 1;
                failures += 1;
                if verbose {
                    println!("  FP: {} on seed {seed}: {report}", tool.name());
                }
            }
            if v.diverged {
                divergences += 1;
                failures += 1;
                println!("  DIVERGENCE: {} on seed {seed}", tool.name());
            }
        }
    }
    println!(
        "  false positives: {} | data divergences: {divergences}",
        fps.values().sum::<u32>()
    );

    // Phase 2: buggy programs — FN matrix over (geometry × seed) cells.
    println!(
        "\nphase 2: {seeds} buggy programs x {} geometries x {} tools",
        InjectedBug::ALL.len(),
        TOOLS.len()
    );
    println!(
        "\n{:<16} {}",
        "geometry",
        TOOLS.map(|t| format!("{:>10}", t.name())).join(" ")
    );
    let cells: Vec<(InjectedBug, u64)> = InjectedBug::ALL
        .iter()
        .flat_map(|&bug| seed_list.iter().map(move |&s| (bug, s)))
        .collect();
    let missed_matrix = runner.map(&cells, |_, &(bug, seed)| {
        let fp = buggy_program(seed, bug);
        TOOLS.map(|tool| !run_tool(tool, &fp.program, &fp.inputs, &cfg).detected())
    });
    for (bi, bug) in InjectedBug::ALL.iter().enumerate() {
        let mut missed = [0u32; TOOLS.len()];
        for (si, seed) in seed_list.iter().enumerate() {
            let cell_missed = &missed_matrix[bi * seed_list.len() + si];
            for (i, (&tool, &m)) in TOOLS.iter().zip(cell_missed).enumerate() {
                if m {
                    missed[i] += 1;
                    if tool == Tool::GiantSan || tool == Tool::CacheOnly {
                        failures += 1;
                        if verbose {
                            println!("  GiantSan-family MISS: {} seed {seed}", bug.name());
                        }
                    }
                }
            }
        }
        println!(
            "{:<16} {}",
            bug.name(),
            missed
                .iter()
                .map(|m| format!("{:>4} missed", m))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    println!(
        "\nexpected asymmetries: instruction-level tools miss overflow-far; LFP \
         additionally\nmisses stack-strcpy (unprotected stack) and near overflows \
         within rounding slack."
    );
    if failures == 0 {
        println!("\nfuzzing clean: no FPs, no divergence, no GiantSan misses.");
        ExitCode::SUCCESS
    } else {
        println!("\n{failures} failure(s).");
        ExitCode::FAILURE
    }
}
