//! `repro` — regenerate the GiantSan paper's tables and figures.
//!
//! ```text
//! repro table2 [--scale N]          Table 2: SPEC overhead (+ ablation)
//! repro table2 --wall [--scale N]   ... wall-clock variant
//! repro fig10  [--scale N]          Figure 10: check breakdown
//! repro table3 [--div N]            Table 3: Juliet detection
//! repro table4                      Table 4: CVE detection
//! repro table5 [--div N]            Table 5: Magma redzone study
//! repro fig11  [--rounds N]         Figure 11: traversal patterns
//! repro ablation                    §5.4 mitigations + quarantine + pass subsets
//! repro plan   [--scale N] [--format json]  planner provenance + per-pass statistics
//! repro memory [--scale N]          memory-overhead study
//! repro density [--scale N]         achieved protection-density study
//! repro bench  [--out-dir DIR]      hot-path + batch + recover + telemetry + kernels + service -> BENCH_PR{1,2,4,5,6,9}.json
//! repro faults [--seed S] [--format json]   fault-injection campaign (detected/recovered/missed/crashed)
//! repro trace  [--workload W] [--tool T] end-to-end telemetry trace -> JSONL + Chrome + Prometheus
//! repro echo   [--scale N] [--rounds N]  many tiny sessions (the service load-test study)
//! repro all    [--div N] [--scale N] everything
//! repro merge DIR                   merge a sharded campaign's blobs into the full report
//! repro serve  [--addr HOST:PORT] [--data-dir DIR] ...   the sanitizer-as-a-service front-end
//! repro perfgate [--check] [--dir DIR] [--against DIR] [--noise PCT]   gate the BENCH trajectory
//! ```
//!
//! Every subcommand is a [`Study`] resolved from [`StudyRegistry::builtin`]
//! and accepts the same flag grammar (see `giantsan_harness::cli`). `--div 1`
//! runs the full detection corpora (5,948 Juliet cases, 58,969 Magma cases);
//! the default subsamples for a quick pass.
//!
//! # Campaigns: sharding, resuming, merging
//!
//! A study run with `--out-dir DIR` plus `--shard i/n` becomes a *campaign*:
//! the cell matrix is deterministically partitioned into `n` contiguous
//! shards, and each invocation runs one shard to a digest-committed blob in
//! DIR (see `giantsan_harness::campaign` for the artifact format). Shards are
//! independent processes:
//!
//! ```text
//! repro faults --out-dir D --shard 0/3 &
//! repro faults --out-dir D --shard 1/3 &
//! repro faults --out-dir D --shard 2/3 &
//! wait
//! repro merge D
//! ```
//!
//! `--resume DIR` verifies the campaign manifest, skips completed shards,
//! runs the missing ones, and renders the full report. `repro merge DIR`
//! only recombines (it never runs cells) and fails with the missing shard
//! list if the campaign is incomplete. Both verify the stored spec hash:
//! resuming against changed flags, a changed binary, or a changed cell
//! matrix fails loudly instead of mixing incompatible results. The merged
//! report and artifacts are byte-identical to a monolithic run's.
//!
//! Results are deterministic: the modelled tables, CSVs, and digests are
//! byte-identical for every thread count and every shard partition; only
//! wall-clock columns vary run to run.
//!
//! `repro faults` sweeps every tool across a fuzz corpus with one
//! deterministic fault armed per cell (shadow bit flips, fold downgrades,
//! allocator OOM, quarantine exhaustion, step budgets) under recover mode.
//! `--seed S` takes hex (`0x...`) or decimal; any other string (the CI badge
//! seed `0xg1an75an` included) is hashed with FNV-1a, so every spelling is a
//! valid, reproducible campaign seed. With `--out-dir DIR` it writes
//! `faults.csv` and `faults_digest.txt` — CI diffs the latter against
//! `tests/golden/faults_digest.txt`.
//!
//! `repro trace` runs one (workload × tool) pair under the telemetry layer
//! and writes the three exports — `trace_events.jsonl` (deterministic,
//! thread-invariant digest in `trace_digest.txt`), `trace_chrome.json`
//! (Perfetto-loadable), `trace_metrics.prom` — plus a hot-spot table ranking
//! sites by slow-path share. Independently, `--telemetry PATH` on *any*
//! subcommand writes the batch engine's scheduling spans for that whole
//! invocation as a Chrome trace to PATH.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use giantsan_harness::campaign::{self, Campaign, CampaignError, ShardSpec};
use giantsan_harness::cli::{self, CliOpts};
use giantsan_harness::study::records_json;
use giantsan_harness::{perfgate, serve, BatchTrace, Study, StudyOutput, StudyRegistry, TraceSink};
use giantsan_telemetry::export::ChromeTrace;

/// Exit codes, pinned by `tests/exit_codes.rs`:
///
/// * `0` — the invocation succeeded.
/// * `1` — runtime failure: cells failed or were quarantined, a campaign is
///   incomplete, I/O failed mid-run.
/// * `2` — the *invocation* is wrong: unknown command/flags, malformed
///   values, or spec drift (resuming/merging a campaign whose flags, binary,
///   or cell matrix no longer match).
#[derive(Debug)]
enum CliError {
    /// Exit 2: bad usage or spec drift — rerunning unchanged cannot help.
    Usage(String),
    /// Exit 1: the run itself failed — a retry or resume may succeed.
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Runtime(_) => ExitCode::from(1),
            CliError::Usage(_) => ExitCode::from(2),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

/// Classifies a campaign error: spec drift is a usage error (the flags or
/// binary no longer match the stored campaign), everything else is runtime.
fn classify(e: CampaignError) -> CliError {
    match e {
        CampaignError::SpecMismatch(_) => CliError::Usage(e.to_string()),
        _ => CliError::Runtime(e.to_string()),
    }
}

/// The studies `repro all` runs, in output order.
const ALL: [&str; 10] = [
    "table2", "fig10", "table3", "table4", "table5", "fig11", "ablation", "plan", "memory",
    "density",
];

fn usage() -> String {
    format!(
        "usage: repro <table2|fig10|table3|table4|table5|fig11|ablation|plan|memory|density\
         |alloc|echo|bench|faults|trace|all> {}\n       repro merge DIR [--format text|json] \
         [--out-dir DIR]\n       repro serve {}\n       repro perfgate {}",
        cli::FLAG_USAGE,
        serve::FLAG_USAGE,
        perfgate::FLAG_USAGE
    )
}

/// Writes `content` to `<dir>/<name>`, reporting the path on stdout like the
/// historical per-subcommand writers did.
fn write_file(dir: &Path, name: &str, content: &str) {
    let path = dir.join(name);
    match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, content)) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

/// Prints a rendered study and writes its artifacts.
///
/// * `out.report` / `out.json` go to stdout (exactly one of them).
/// * `out.artifacts` (the CSV exports) are written only when a directory was
///   given.
/// * `out.main_artifacts` (bench JSONs, trace exports) land in the directory
///   or the current directory.
fn emit(
    study: &dyn Study,
    opts: &CliOpts,
    out_dir: Option<&Path>,
    records: &[giantsan_harness::Record],
    out: &StudyOutput,
    schedule: &BatchTrace,
) {
    if opts.json {
        match &out.json {
            Some(j) => print!("{j}"),
            None => print!("{}", records_json(study.name(), records)),
        }
    } else {
        print!("{}", out.report);
    }
    if let Some(dir) = out_dir {
        for (name, content) in &out.artifacts {
            write_file(dir, name, content);
        }
    }
    let main_dir = out_dir.map(Path::to_path_buf).unwrap_or_else(|| ".".into());
    for (name, content) in &out.main_artifacts {
        write_file(&main_dir, name, content);
    }
    for (name, content) in study.presentation(&opts.study, records, schedule) {
        write_file(&main_dir, &name, &content);
    }
}

/// Runs one study monolithically (no campaign directory involvement beyond
/// artifact writes).
fn run_plain(study: &dyn Study, opts: &CliOpts, schedule_of: &TakeOnce) -> Result<(), CliError> {
    let campaign = Campaign::new(study, opts.study.clone()).map_err(classify)?;
    let records = campaign.run_all(&opts.runner());
    let out = study
        .render(&opts.study, &records)
        .map_err(CliError::Runtime)?;
    emit(
        study,
        opts,
        opts.out_dir.as_deref(),
        &records,
        &out,
        schedule_of.get(),
    );
    Ok(())
}

/// Runs one shard of a campaign into `--out-dir` and stops — rendering
/// happens at `--resume` / `repro merge` time.
fn run_shard(study: &dyn Study, opts: &CliOpts, shard: ShardSpec) -> Result<(), CliError> {
    let dir = opts
        .out_dir
        .as_deref()
        .expect("validated by cli::parse_opts");
    let campaign = Campaign::new(study, opts.study.clone()).map_err(classify)?;
    let range = campaign::shard_range(campaign.labels().len(), shard.index, shard.count);
    let ran = campaign
        .run_shard(dir, shard, &opts.runner())
        .map_err(classify)?;
    if ran {
        println!(
            "campaign `{}` at {}: committed shard {}/{} (cells {}..{})",
            study.name(),
            dir.display(),
            shard.index,
            shard.count,
            range.start,
            range.end
        );
    } else {
        println!(
            "campaign `{}` at {}: shard {}/{} already committed; nothing to do",
            study.name(),
            dir.display(),
            shard.index,
            shard.count
        );
    }
    println!(
        "(merge with `repro merge {}` once all {} shards are committed)",
        dir.display(),
        shard.count
    );
    Ok(())
}

/// Finishes the campaign at `--resume DIR` and renders the full report.
fn run_resume(
    study: &dyn Study,
    opts: &CliOpts,
    dir: &Path,
    schedule_of: &TakeOnce,
) -> Result<(), CliError> {
    let campaign = Campaign::new(study, opts.study.clone()).map_err(classify)?;
    let (records, stats) = campaign.resume(dir, &opts.runner()).map_err(classify)?;
    eprintln!(
        "(resume: reused {} shard(s) {:?}, ran {} {:?})",
        stats.reused.len(),
        stats.reused,
        stats.ran.len(),
        stats.ran
    );
    let out = study
        .render(&opts.study, &records)
        .map_err(CliError::Runtime)?;
    // Artifacts default into the campaign directory so a resumed run leaves
    // its digests next to its shards.
    let out_dir = opts.out_dir.as_deref().unwrap_or(dir);
    emit(
        study,
        opts,
        Some(out_dir),
        &records,
        &out,
        schedule_of.get(),
    );
    Ok(())
}

/// `repro merge DIR`: recombine a completed campaign without running cells.
fn run_merge(registry: &StudyRegistry, args: &[String]) -> Result<(), CliError> {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage(
            "merge needs a campaign directory: repro merge DIR".to_string(),
        ));
    };
    let dir = PathBuf::from(dir);
    let opts = cli::parse_opts(&args[1..]).map_err(CliError::Usage)?;
    let campaign = campaign::open_for_merge(registry, &dir).map_err(classify)?;
    let records = campaign.load_records(&dir).map_err(classify)?;
    let study = campaign.study();
    // Merge renders under the stored campaign parameters, not the CLI's.
    let mut merged_opts = opts;
    merged_opts.study = campaign.opts().clone();
    let out = study
        .render(&merged_opts.study, &records)
        .map_err(CliError::Runtime)?;
    let out_dir = merged_opts.out_dir.clone().unwrap_or_else(|| dir.clone());
    let schedule = BatchTrace::default();
    emit(
        study,
        &merged_opts,
        Some(&out_dir),
        &records,
        &out,
        &schedule,
    );
    Ok(())
}

/// Lazily takes the invocation-wide scheduling trace exactly once, so the
/// study presentation pass and the `--telemetry` writer see the same spans.
struct TakeOnce {
    sink: std::sync::Arc<TraceSink>,
    taken: std::cell::OnceCell<BatchTrace>,
}

impl TakeOnce {
    fn get(&self) -> &BatchTrace {
        self.taken.get_or_init(|| self.sink.take())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let registry = StudyRegistry::builtin();

    if cmd == "serve" {
        let config = match serve::ServeConfig::parse(&args[1..]) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: repro serve {}", serve::FLAG_USAGE);
                return ExitCode::from(2);
            }
        };
        return match serve::run(config) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }

    if cmd == "perfgate" {
        let config = match perfgate::PerfGateConfig::parse(&args[1..]) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: repro perfgate {}", perfgate::FLAG_USAGE);
                return ExitCode::from(2);
            }
        };
        return match perfgate::run(&config) {
            // Without --check the observatory reports and exits 0 so a
            // human can read a red table without killing a pipeline.
            Ok(rep) if rep.passed() || !config.check => ExitCode::SUCCESS,
            Ok(_) => ExitCode::from(1),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    if cmd == "merge" {
        return match run_merge(&registry, &args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {}", e.message());
                e.exit_code()
            }
        };
    }

    let mut opts = match cli::parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // One scheduling sink for the whole invocation: the trace study's Chrome
    // export and the `--telemetry` writer both read it.
    if opts.sink.is_none() {
        opts.sink = Some(TraceSink::new());
    }
    let schedule_of = TakeOnce {
        sink: std::sync::Arc::clone(opts.sink.as_ref().expect("just set")),
        taken: std::cell::OnceCell::new(),
    };

    let result = if cmd == "all" {
        if opts.shard.is_some() || opts.resume.is_some() {
            Err(CliError::Usage(
                "--shard/--resume apply to a single study, not `all`".to_string(),
            ))
        } else {
            ALL.iter().enumerate().try_for_each(|(i, name)| {
                if i > 0 {
                    println!();
                }
                let study = registry.get(name).expect("ALL lists registered studies");
                run_plain(study, &opts, &schedule_of)
            })
        }
    } else {
        match registry.get(cmd) {
            None => {
                eprintln!("unknown experiment: {cmd}");
                return ExitCode::from(2);
            }
            Some(study) => match (opts.shard, opts.resume.clone()) {
                (Some(shard), _) => run_shard(study, &opts, shard),
                (None, Some(dir)) => run_resume(study, &opts, &dir, &schedule_of),
                (None, None) => run_plain(study, &opts, &schedule_of),
            },
        }
    };
    if let Err(e) = result {
        eprintln!("error: {}", e.message());
        return e.exit_code();
    }

    // `--telemetry PATH`: dump the whole invocation's batch-scheduling spans
    // as a Chrome trace.
    if let Some(path) = &opts.telemetry {
        let mut chrome = ChromeTrace::new();
        let kernel = giantsan_shadow::kernel::active().name();
        schedule_of
            .get()
            .render_chrome(&mut chrome, 1, &format!("repro {cmd} [kernel={kernel}]"));
        match std::fs::write(path, chrome.finish()) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
