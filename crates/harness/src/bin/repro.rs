//! `repro` — regenerate the GiantSan paper's tables and figures.
//!
//! ```text
//! repro table2 [--scale N]          Table 2: SPEC overhead (+ ablation)
//! repro table2 --wall [--scale N]   ... wall-clock variant
//! repro fig10  [--scale N]          Figure 10: check breakdown
//! repro table3 [--div N]            Table 3: Juliet detection
//! repro table4                      Table 4: CVE detection
//! repro table5 [--div N]            Table 5: Magma redzone study
//! repro fig11  [--rounds N]         Figure 11: traversal patterns
//! repro ablation                    §5.4 mitigations + quarantine + pass subsets
//! repro plan   [--scale N] [--format json]  planner provenance + per-pass statistics
//! repro memory [--scale N]          memory-overhead study
//! repro density [--scale N]         achieved protection-density study
//! repro bench  [--out DIR]          hot-path + batch + recover + telemetry + kernels -> BENCH_PR{1,2,4,5,6}.json
//! repro faults [--seed S] [--format json]   fault-injection campaign (detected/recovered/missed/crashed)
//! repro trace  [--workload W] [--tool T] end-to-end telemetry trace -> JSONL + Chrome + Prometheus
//! repro all    [--div N] [--scale N] everything
//! ```
//!
//! `--div 1` runs the full detection corpora (5,948 Juliet cases, 58,969
//! Magma cases); the default subsamples for a quick pass.
//!
//! Every experiment shards its cell matrix across `--threads N` workers
//! (default: the host's available parallelism). Results are deterministic:
//! the modelled tables and CSVs are byte-identical for every thread count;
//! only wall-clock columns vary run to run.
//!
//! `repro faults` sweeps every tool across a fuzz corpus with one
//! deterministic fault armed per cell (shadow bit flips, fold downgrades,
//! allocator OOM, quarantine exhaustion, step budgets) under recover mode.
//! `--seed S` takes hex (`0x...`) or decimal; any other string (the CI badge
//! seed `0xg1an75an` included) is hashed with FNV-1a, so every spelling is a
//! valid, reproducible campaign seed. With `--out DIR` it writes `faults.csv`
//! and `faults_digest.txt` — CI diffs the latter against
//! `tests/golden/faults_digest.txt`.
//!
//! `repro trace` runs one (workload × tool) pair under the telemetry layer
//! and writes the three exports — `trace_events.jsonl` (deterministic,
//! thread-invariant digest in `trace_digest.txt`), `trace_chrome.json`
//! (Perfetto-loadable), `trace_metrics.prom` — plus a hot-spot table ranking
//! sites by slow-path share. Independently, `--telemetry PATH` on *any*
//! subcommand writes the batch engine's scheduling spans for that whole
//! invocation as a Chrome trace to PATH.

use std::env;
use std::process::ExitCode;
use std::sync::Arc;

use giantsan_harness::csv;
use giantsan_harness::experiments::{
    ablation, density, fault_study, fig10, fig11, memory, plan, table2, table3, table4, table5,
    trace,
};
use giantsan_harness::{
    bench_pr1, bench_pr2, bench_pr4, bench_pr5, bench_pr6, BatchRunner, Tool, TraceSink,
};
use giantsan_telemetry::export::ChromeTrace;

struct Opts {
    scale: u64,
    div: u32,
    rounds: u64,
    threads: usize,
    seed: u64,
    wall: bool,
    out: Option<std::path::PathBuf>,
    workload: String,
    tool: Tool,
    telemetry: Option<std::path::PathBuf>,
    sink: Option<Arc<TraceSink>>,
    json: bool,
}

/// Parses a tool by its paper column name, case-insensitively.
fn parse_tool(s: &str) -> Result<Tool, String> {
    Tool::ALL
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            let names: Vec<&str> = Tool::ALL.iter().map(|t| t.name()).collect();
            format!("unknown tool `{s}` (one of: {})", names.join(", "))
        })
}

/// Parses a campaign seed: hex with an `0x` prefix, plain decimal, or —
/// for any other spelling — the FNV-1a hash of the raw string, so seeds
/// like `0xg1an75an` are accepted and reproducible.
fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    fault_study::fnv1a(s.as_bytes())
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        scale: 1,
        div: 10,
        rounds: 4,
        threads: BatchRunner::available_parallelism(),
        seed: 0,
        wall: false,
        out: None,
        workload: "figure8".to_string(),
        tool: Tool::GiantSan,
        telemetry: None,
        sink: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--div" => {
                opts.div = it
                    .next()
                    .ok_or("--div needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --div: {e}"))?
            }
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--seed" => {
                opts.seed = parse_seed(it.next().ok_or("--seed needs a value")?);
            }
            "--wall" => opts.wall = true,
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a directory")?.into());
            }
            "--workload" => {
                opts.workload = it.next().ok_or("--workload needs an id")?.clone();
            }
            "--tool" => {
                opts.tool = parse_tool(it.next().ok_or("--tool needs a name")?)?;
            }
            "--telemetry" => {
                opts.telemetry = Some(it.next().ok_or("--telemetry needs a path")?.into());
                opts.sink = Some(TraceSink::new());
            }
            "--format" => match it.next().ok_or("--format needs text|json")?.as_str() {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => return Err(format!("bad --format `{other}` (text or json)")),
            },
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

impl Opts {
    fn runner(&self) -> BatchRunner {
        let runner = BatchRunner::new(self.threads);
        match &self.sink {
            Some(sink) => runner.with_sink(Arc::clone(sink)),
            None => runner,
        }
    }
}

/// Writes `content` to `<out>/<name>` when `--out` was given.
fn write_csv(opts: &Opts, name: &str, content: &str) {
    if let Some(dir) = &opts.out {
        if let Err(e) =
            std::fs::create_dir_all(dir).and_then(|()| std::fs::write(dir.join(name), content))
        {
            eprintln!("warning: failed to write {name}: {e}");
        } else {
            println!("(wrote {})", dir.join(name).display());
        }
    }
}

/// Writes a benchmark artefact to `<out or .>/<name>`.
fn write_artifact(opts: &Opts, name: &str, content: &str) {
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join(name);
    match std::fs::create_dir_all(path.parent().unwrap_or(std::path::Path::new(".")))
        .and_then(|()| std::fs::write(&path, content))
    {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: repro <table2|fig10|table3|table4|table5|fig11|ablation|plan|memory|density|bench|faults|trace|all> \
             [--scale N] [--div N] [--rounds N] [--threads N] [--seed S] [--wall] [--out DIR] \
             [--workload W] [--tool T] [--telemetry PATH] [--format text|json]"
        );
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let run_table2 = |opts: &Opts| {
        println!("== Table 2: runtime overhead on the SPEC-like suite ==");
        println!("(paper geomeans: GiantSan 146.04%, ASan 212.58%, ASan-- 174.89%, LFP 161.76%,");
        println!(" CacheOnly 175.63%, EliminationOnly 170.24%)\n");
        let t = table2::table2_with(&opts.runner(), opts.scale);
        println!("{}", t.render());
        write_csv(opts, "table2.csv", &csv::table2_csv(&t));
        if opts.wall {
            println!("\n-- wall-clock variant --\n{}", t.render_wall());
        }
    };
    let run_fig10 = |opts: &Opts| {
        println!("== Figure 10: checks per optimisation category (GiantSan) ==\n");
        let f = fig10::fig10_with(&opts.runner(), opts.scale);
        println!("{}", f.render());
        write_csv(opts, "fig10.csv", &csv::fig10_csv(&f));
    };
    let run_table3 = |opts: &Opts| {
        println!("== Table 3: Juliet-like detection ==\n");
        let t = table3::table3_with(&opts.runner(), opts.div);
        println!("{}", t.render());
        write_csv(opts, "table3.csv", &csv::table3_csv(&t));
    };
    let run_table4 = |opts: &Opts| {
        println!("== Table 4: Linux-Flaw-Project-like CVE detection ==\n");
        let t = table4::table4_with(&opts.runner());
        println!("{}", t.render());
        write_csv(opts, "table4.csv", &csv::table4_csv(&t));
    };
    let run_table5 = |opts: &Opts| {
        println!("== Table 5: Magma-like redzone study ==\n");
        let t = table5::table5_with(&opts.runner(), opts.div);
        println!("{}", t.render());
        write_csv(opts, "table5.csv", &csv::table5_csv(&t));
    };
    let run_density = |opts: &Opts| {
        println!("== Supporting study: achieved protection density ==\n");
        println!(
            "{}",
            density::density_study_with(&opts.runner(), opts.scale).render()
        );
    };
    let run_memory = |opts: &Opts| {
        println!("== Supporting study: memory overhead ==\n");
        println!(
            "{}",
            memory::memory_study_with(&opts.runner(), opts.scale).render()
        );
    };
    let run_ablation = |opts: &Opts| {
        println!("== Supporting ablations (DESIGN.md §5) ==\n");
        println!("{}", ablation::render_with(&opts.runner(), 8192, 2));
    };
    let run_fig11 = |opts: &Opts| {
        println!("== Figure 11: traversal patterns ==");
        println!(
            "(paper: GiantSan 1.48x faster random, 1.07x faster forward, 1.39x slower reverse)"
        );
        let f = fig11::fig11_with(&opts.runner(), opts.rounds);
        println!("{}", f.render());
        write_csv(opts, "fig11.csv", &csv::fig11_csv(&f));
    };

    let run_plan = |opts: &Opts| {
        let s = plan::plan_study_with(&opts.runner(), opts.scale);
        if opts.json {
            print!("{}", s.to_json());
        } else {
            println!("== Planner observability: per-pass statistics + site provenance ==\n");
            println!("{}", s.render());
        }
        write_csv(opts, "plan_provenance.csv", &csv::plan_provenance_csv(&s));
        write_csv(opts, "plan_passes.csv", &csv::plan_passes_csv(&s));
    };

    let run_bench = |opts: &Opts| {
        println!("== Hot-path before/after (word-wide scanning + monomorphized dispatch) ==\n");
        let report = bench_pr1::run_bench();
        println!("{}", report.render());
        write_artifact(opts, "BENCH_PR1.json", &report.to_json());

        println!("\n== Batch engine: serial vs {} workers ==\n", opts.threads);
        let report = bench_pr2::run_bench(opts.threads);
        println!("{}", report.render());
        write_artifact(opts, "BENCH_PR2.json", &report.to_json());

        println!("\n== Recover-mode overhead on clean runs (halt vs recover) ==\n");
        let report = bench_pr4::run_bench();
        println!("{}", report.render());
        write_artifact(opts, "BENCH_PR4.json", &report.to_json());

        println!("\n== Telemetry overhead (noop vs traced recorder) ==\n");
        let report = bench_pr5::run_bench();
        println!("{}", report.render());
        write_artifact(opts, "BENCH_PR5.json", &report.to_json());

        println!("\n== Shadow-kernel backends (scalar vs swar vs simd) ==\n");
        let report = bench_pr6::run_bench();
        println!("{}", report.render());
        write_artifact(opts, "BENCH_PR6.json", &report.to_json());
    };

    let run_trace = |opts: &Opts| -> Result<(), String> {
        println!(
            "== End-to-end telemetry trace: {} under {} ==\n",
            opts.workload,
            opts.tool.name()
        );
        let s = trace::trace_study_with(&opts.runner(), &opts.workload, opts.tool, opts.scale)?;
        println!("{}", s.render());
        write_artifact(opts, "trace_events.jsonl", &s.events_jsonl());
        write_artifact(opts, "trace_chrome.json", &s.chrome_trace());
        write_artifact(opts, "trace_metrics.prom", &s.prometheus());
        write_artifact(opts, "trace_digest.txt", &s.digest_artifact());
        write_csv(opts, "trace_counters.csv", &csv::trace_counters_csv(&s));
        Ok(())
    };

    let run_faults = |opts: &Opts| {
        let s = fault_study::fault_study_with(&opts.runner(), opts.seed, 5);
        if opts.json {
            print!("{}", s.to_json());
        } else {
            println!(
                "== Fault-injection campaign (recover mode, seed {:#x}) ==\n",
                opts.seed
            );
            println!("{}", s.render());
        }
        write_csv(opts, "faults.csv", &csv::faults_csv(&s));
        write_csv(opts, "faults_digest.txt", &s.digest_artifact());
    };

    match cmd.as_str() {
        "table2" => run_table2(&opts),
        "fig10" => run_fig10(&opts),
        "table3" => run_table3(&opts),
        "table4" => run_table4(&opts),
        "table5" => run_table5(&opts),
        "fig11" => run_fig11(&opts),
        "ablation" => run_ablation(&opts),
        "plan" => run_plan(&opts),
        "memory" => run_memory(&opts),
        "density" => run_density(&opts),
        "bench" => run_bench(&opts),
        "faults" => run_faults(&opts),
        "trace" => {
            if let Err(e) = run_trace(&opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            run_table2(&opts);
            println!();
            run_fig10(&opts);
            println!();
            run_table3(&opts);
            println!();
            run_table4(&opts);
            println!();
            run_table5(&opts);
            println!();
            run_fig11(&opts);
            println!();
            run_ablation(&opts);
            println!();
            run_plan(&opts);
            println!();
            run_memory(&opts);
            println!();
            run_density(&opts);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            return ExitCode::FAILURE;
        }
    }

    // `--telemetry PATH`: dump the whole invocation's batch-scheduling spans
    // as a Chrome trace (`repro trace` uses its own sink and study-local
    // exports instead).
    if let (Some(path), Some(sink)) = (&opts.telemetry, &opts.sink) {
        let mut chrome = ChromeTrace::new();
        let kernel = giantsan_shadow::kernel::active().name();
        sink.take()
            .render_chrome(&mut chrome, 1, &format!("repro {cmd} [kernel={kernel}]"));
        match std::fs::write(path, chrome.finish()) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
