//! CSV export of experiment results (for plotting outside the repo).
//!
//! Each experiment type knows how to serialise itself into a simple RFC-4180
//! CSV (no external dependency needed — all fields are numeric or
//! identifier-shaped).

use std::fmt::Write as _;

use crate::experiments::{fig10::Fig10, fig11::Fig11, table2::Table2, table3::Table3};
use crate::experiments::{table2, table3 as t3, table4 as t4, table5 as t5};
use crate::experiments::{table4::Table4, table5::Table5};

fn esc(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialises Table 2 (one row per benchmark, one column per tool ratio).
pub fn table2_csv(t: &Table2) -> String {
    let mut out = String::from("program,native_units");
    for tool in table2::COLUMNS {
        let _ = write!(out, ",{}_ratio_pct", tool.name().replace('-', "m"));
    }
    out.push('\n');
    for r in &t.rows {
        let _ = write!(out, "{},{:.1}", esc(&r.id), r.native_units);
        for v in &r.ratios {
            let _ = write!(out, ",{v:.2}");
        }
        out.push('\n');
    }
    let _ = write!(out, "geomean,");
    for v in &t.geomeans {
        let _ = write!(out, ",{v:.2}");
    }
    out.push('\n');
    out
}

/// Serialises Figure 10 (fractions per category).
pub fn fig10_csv(f: &Fig10) -> String {
    let mut out = String::from("program,full_check,fast_only,cached,eliminated\n");
    for r in &f.rows {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4}",
            esc(&r.id),
            r.full_check,
            r.fast_only,
            r.cached,
            r.eliminated
        );
    }
    out
}

/// Serialises Table 3 (detections per CWE per tool).
pub fn table3_csv(t: &Table3) -> String {
    let mut out = String::from("cwe");
    for tool in t3::COLUMNS {
        let _ = write!(out, ",{}", tool.name().replace('-', "m"));
    }
    out.push_str(",total\n");
    for r in &t.rows {
        let _ = write!(out, "{}", r.cwe);
        for d in &r.detected {
            let _ = write!(out, ",{d}");
        }
        let _ = writeln!(out, ",{}", r.total);
    }
    out
}

/// Serialises Table 4 (one row per CVE, 1 = detected).
pub fn table4_csv(t: &Table4) -> String {
    let mut out = String::from("project,cve");
    for tool in t4::COLUMNS {
        let _ = write!(out, ",{}", tool.name().replace('-', "m"));
    }
    out.push('\n');
    for r in &t.rows {
        let _ = write!(out, "{},{}", esc(r.project), esc(r.cve));
        for d in &r.detected {
            let _ = write!(out, ",{}", *d as u8);
        }
        out.push('\n');
    }
    out
}

/// Serialises Table 5 (detections per project per configuration).
pub fn table5_csv(t: &Table5) -> String {
    let mut out = String::from("project");
    for c in t5::CONFIGS {
        let _ = write!(out, ",{}_rz{}", c.tool.name().replace('-', "m"), c.redzone);
    }
    out.push_str(",total\n");
    for r in &t.rows {
        let _ = write!(out, "{}", esc(r.project));
        for d in &r.detected {
            let _ = write!(out, ",{d}");
        }
        let _ = writeln!(out, ",{}", r.total);
    }
    out
}

/// Header of the plan-provenance CSV.
pub const PLAN_PROVENANCE_HEADER: &str = "workload,tool,site,fate,pass,reason\n";

/// Header of the plan per-pass statistics CSV.
pub const PLAN_PASSES_HEADER: &str =
    "workload,tool,pass,enabled,visited,transformed,eliminated,wall_ns\n";

/// The provenance rows of one plan cell (no header) — the unit campaign
/// shards store, so a merged CSV concatenates byte-identically.
pub fn plan_provenance_rows(cell: &crate::experiments::plan::PlanCell) -> String {
    let mut out = String::new();
    for (i, fate) in cell.analysis.fates.iter().enumerate() {
        let (pass, reason) = match &cell.analysis.provenance[i] {
            Some(p) => (p.pass.name(), p.reason.as_str()),
            None => ("-", "-"),
        };
        let _ = writeln!(
            out,
            "{},{},{},{:?},{},{}",
            esc(cell.workload),
            esc(cell.tool.name()),
            i,
            fate,
            pass,
            esc(reason)
        );
    }
    out
}

/// The per-pass statistics rows of one plan cell (no header).
pub fn plan_passes_rows(cell: &crate::experiments::plan::PlanCell) -> String {
    let mut out = String::new();
    for p in &cell.analysis.pass_stats {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            esc(cell.workload),
            esc(cell.tool.name()),
            p.pass.name(),
            p.enabled as u8,
            p.visited,
            p.transformed,
            p.eliminated,
            p.wall.as_nanos()
        );
    }
    out
}

/// Serialises the plan study's provenance traces (one row per site per
/// (workload, tool) cell: fate, deciding pass, recorded reasoning).
pub fn plan_provenance_csv(s: &crate::experiments::plan::PlanStudy) -> String {
    let mut out = String::from(PLAN_PROVENANCE_HEADER);
    for cell in &s.cells {
        out.push_str(&plan_provenance_rows(cell));
    }
    out
}

/// Serialises the plan study's per-pass statistics (one row per pipeline
/// stage per (workload, tool) cell).
pub fn plan_passes_csv(s: &crate::experiments::plan::PlanStudy) -> String {
    let mut out = String::from(PLAN_PASSES_HEADER);
    for cell in &s.cells {
        out.push_str(&plan_passes_rows(cell));
    }
    out
}

/// Serialises the fault-injection campaign (one row per cell: label,
/// verdict, interpreter digest, recovery counters).
pub fn faults_csv(s: &crate::experiments::fault_study::FaultStudy) -> String {
    let mut out = String::from("cell,verdict,result_digest,errors_recovered,errors_suppressed\n");
    for o in &s.outcomes {
        let _ = writeln!(
            out,
            "{},{},{:#018x},{},{}",
            esc(&o.label),
            o.verdict.name(),
            o.result_digest,
            o.errors_recovered,
            o.errors_suppressed
        );
    }
    out
}

/// Serialises per-cell sanitizer counters of a trace study.
///
/// The header is driven by [`Counters::FIELD_NAMES`] — the single
/// authoritative exporter field list — so a counter added to the struct
/// (with its pinning test) appears here without touching this function.
///
/// [`Counters::FIELD_NAMES`]: giantsan_runtime::Counters::FIELD_NAMES
pub fn trace_counters_csv(s: &crate::experiments::trace::TraceStudy) -> String {
    trace_counters_csv_runs(&s.runs)
}

/// [`trace_counters_csv`] over bare runs — the campaign path, which rebuilds
/// runs from shard payloads without a full [`TraceStudy`].
///
/// [`TraceStudy`]: crate::experiments::trace::TraceStudy
pub fn trace_counters_csv_runs(runs: &[crate::experiments::trace::TraceRun]) -> String {
    let mut out = String::from("cell");
    for name in giantsan_runtime::Counters::FIELD_NAMES {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for run in runs {
        let _ = write!(out, "{}", run.cell);
        for v in run.counters.field_values() {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Serialises Figure 11 (units and wall time per pattern/size/tool).
pub fn fig11_csv(f: &Fig11) -> String {
    let mut out = String::from("pattern,size_bytes,tool,model_units,wall_us\n");
    for s in &f.series {
        for p in &s.points {
            for (i, tool) in crate::experiments::fig11::SERIES.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{:.1},{:.1}",
                    s.pattern.name(),
                    p.size,
                    tool.name().replace('-', "m"),
                    p.units[i],
                    p.wall_us[i]
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_csv_round_trips_structure() {
        let t = crate::experiments::table4::table4();
        let csv = table4_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), t.rows.len() + 1);
        assert!(lines[0].starts_with("project,cve,GiantSan"));
        // The libzip row shows LFP's miss as a 0.
        let libzip = lines.iter().find(|l| l.contains("libzip")).unwrap();
        assert!(libzip.ends_with(",1,1,1,0"), "{libzip}");
    }

    #[test]
    fn escaping_quotes_and_commas() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn plan_csvs_cover_every_cell() {
        let s = crate::experiments::plan::plan_study(1);
        let prov = plan_provenance_csv(&s);
        let total_sites: usize = s.cells.iter().map(|c| c.analysis.fates.len()).sum();
        assert_eq!(prov.lines().count(), total_sites + 1);
        assert!(prov.starts_with("workload,tool,site,fate,pass,reason"));
        assert!(
            prov.contains("figure8,GiantSan,0,Promoted,promote"),
            "{prov}"
        );
        let passes = plan_passes_csv(&s);
        assert_eq!(passes.lines().count(), s.cells.len() * 9 + 1);
        assert!(passes.contains("figure8,GiantSan,cache,1,"), "{passes}");
    }

    #[test]
    fn trace_counters_csv_uses_the_canonical_field_list() {
        use giantsan_runtime::Counters;
        let s =
            crate::experiments::trace::trace_study("figure8", crate::Tool::GiantSan, 1).unwrap();
        let csv = trace_counters_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), s.runs.len() + 1);
        assert_eq!(
            lines[0],
            format!("cell,{}", Counters::FIELD_NAMES.join(","))
        );
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), Counters::FIELD_NAMES.len() + 1);
        }
    }

    #[test]
    fn fig10_csv_has_all_rows() {
        let f = crate::experiments::fig10::fig10(1);
        let csv = fig10_csv(&f);
        assert_eq!(csv.lines().count(), f.rows.len() + 1);
        assert!(csv.contains("519.lbm_r"));
    }
}
