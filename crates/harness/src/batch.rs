//! The parallel batch-execution engine.
//!
//! Every experiment in this harness is a *cell matrix*: a list of
//! independent (tool × workload × size × seed) runs whose results are folded
//! into one table. [`BatchRunner`] executes such a matrix across a scoped
//! worker pool with dynamic scheduling — workers steal the next unclaimed
//! cell from a shared atomic cursor, so a straggler cell never idles the
//! rest of the pool — and reassembles results **by cell index**, which makes
//! the merged output independent of thread count and completion order.
//!
//! Determinism contract: for a pure `job`, `runner.map(items, job)` returns
//! byte-for-byte the same `Vec` for every thread count, including 1. The
//! differential test `tests/determinism.rs` and the CI smoke job enforce
//! this end-to-end on the experiment CSVs.
//!
//! Fault tolerance: each cell runs inside `catch_unwind`, so a panicking
//! cell is *isolated* — it is retried up to [`BatchRunner::MAX_ATTEMPTS`]
//! times with a bounded deterministic backoff, then quarantined as a
//! [`CellFailure`] while every other cell completes normally.
//! [`BatchRunner::try_map`] reports partial results plus a
//! [`FailureSummary`]; [`BatchRunner::map`] keeps the infallible signature
//! by panicking with the summary *after* the whole matrix has drained.
//!
//! # Example
//!
//! ```
//! use giantsan_harness::BatchRunner;
//! let runner = BatchRunner::new(4);
//! let squares = runner.map(&[1u64, 2, 3, 4, 5], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use giantsan_telemetry::export::ChromeTrace;
use giantsan_telemetry::{span_id, FlightEventKind, FlightRecorder, SpanKind};

/// Flight-recorder attachment (see [`BatchRunner::with_flight`]): the shared
/// recorder, the causal span the batch's cells hang under, and the global
/// index of the batch's first cell (shard-relative batches record global
/// cell indices so dumps correlate with campaign labels).
#[derive(Debug, Clone)]
struct FlightPlan {
    recorder: Arc<FlightRecorder>,
    parent_span: u64,
    index_base: u64,
}

impl FlightPlan {
    fn cell_span(&self, i: usize) -> (u64, u64) {
        let cell = self.index_base + i as u64;
        (span_id(self.parent_span, SpanKind::Cell, cell), cell)
    }
}

/// One executed cell as seen by the scheduler: where it ran, how long, and
/// how many attempts it took.
///
/// Spans are **presentation-plane** records (see the telemetry crate's
/// thread-invariance rule): they carry wall-clock and worker identity and
/// exist only to be rendered as a Chrome trace. Nothing here is ever
/// digested.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpan {
    /// Ordinal of the batch (`map`/`try_map` call) this cell belonged to.
    pub batch: u32,
    /// Cell index within the batch.
    pub index: usize,
    /// Worker that executed the cell (0 on the serial path).
    pub worker: usize,
    /// Attempts the cell took (1 = first try succeeded).
    pub attempts: u32,
    /// Microseconds since the sink's origin at which the cell was claimed.
    pub start_us: f64,
    /// Wall-clock duration of the cell in microseconds (all attempts).
    pub dur_us: f64,
}

/// One whole batch (`map`/`try_map` call).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpan {
    /// Batch ordinal (shared with the member [`CellSpan`]s).
    pub batch: u32,
    /// Number of cells in the batch.
    pub cells: usize,
    /// Worker-pool size used for the batch.
    pub threads: usize,
    /// Microseconds since the sink's origin at which the batch started.
    pub start_us: f64,
    /// Wall-clock duration of the whole batch in microseconds.
    pub dur_us: f64,
}

/// Everything a [`TraceSink`] collected: batch spans plus cell spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchTrace {
    /// One span per `map`/`try_map` call, in call order.
    pub batches: Vec<BatchSpan>,
    /// One span per executed cell (quarantined cells included).
    pub cells: Vec<CellSpan>,
}

impl BatchTrace {
    /// Renders the scheduling trace into `trace` as Chrome `trace_event`
    /// slices: one process (`pid`), one named track per worker, one slice
    /// per cell (annotated with batch, index, and attempts), and one slice
    /// per batch on a dedicated "scheduler" track.
    pub fn render_chrome(&self, trace: &mut ChromeTrace, pid: u32, process: &str) {
        trace.process_name(pid, process);
        trace.thread_name(pid, 0, "scheduler");
        let workers: std::collections::BTreeSet<usize> =
            self.cells.iter().map(|c| c.worker).collect();
        for w in &workers {
            trace.thread_name(pid, *w as u32 + 1, &format!("worker {w}"));
        }
        for b in &self.batches {
            trace.complete(
                pid,
                0,
                &format!("batch {}", b.batch),
                "batch",
                b.start_us,
                b.dur_us,
                &[
                    ("cells", &b.cells.to_string()),
                    ("threads", &b.threads.to_string()),
                ],
            );
        }
        for c in &self.cells {
            trace.complete(
                pid,
                c.worker as u32 + 1,
                &format!("cell {}", c.index),
                "cell",
                c.start_us,
                c.dur_us,
                &[
                    ("batch", &c.batch.to_string()),
                    ("attempts", &c.attempts.to_string()),
                ],
            );
        }
    }
}

/// Shared collector for batch-scheduling spans.
///
/// Attach one to a [`BatchRunner`] with [`BatchRunner::with_sink`]; every
/// subsequent `map`/`try_map` call records per-cell and per-batch wall-clock
/// spans into it. The sink is internally synchronised — workers append
/// concurrently — and the collected [`BatchTrace`] is drained with
/// [`TraceSink::take`].
#[derive(Debug)]
pub struct TraceSink {
    origin: Instant,
    next_batch: AtomicU32,
    trace: Mutex<BatchTrace>,
}

impl TraceSink {
    /// A fresh sink; its origin (timestamp zero) is the moment of creation.
    pub fn new() -> Arc<Self> {
        Arc::new(TraceSink {
            origin: Instant::now(),
            next_batch: AtomicU32::new(0),
            trace: Mutex::new(BatchTrace::default()),
        })
    }

    /// Microseconds elapsed since the sink was created.
    fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    fn claim_batch(&self) -> u32 {
        self.next_batch.fetch_add(1, Ordering::Relaxed)
    }

    fn push_cell(&self, span: CellSpan) {
        self.trace
            .lock()
            .expect("trace sink poisoned")
            .cells
            .push(span);
    }

    fn push_batch(&self, span: BatchSpan) {
        self.trace
            .lock()
            .expect("trace sink poisoned")
            .batches
            .push(span);
    }

    /// Drains everything collected so far, sorted by start time.
    pub fn take(&self) -> BatchTrace {
        let mut t = std::mem::take(&mut *self.trace.lock().expect("trace sink poisoned"));
        t.cells.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        t.batches.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        t
    }
}

/// One cell that kept failing after every retry and was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Index of the failed cell in the input matrix.
    pub index: usize,
    /// How many times the cell was attempted before quarantine.
    pub attempts: u32,
    /// The panic message of the final attempt.
    pub message: String,
    /// `true` when the cell was cancelled by the per-cell watchdog (see
    /// [`BatchRunner::with_cell_deadline`]) rather than crashing. Timed-out
    /// cells are never retried: re-running a runaway cell would only burn
    /// another full deadline.
    pub timed_out: bool,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.timed_out {
            return write!(f, "cell {} exceeded its deadline", self.index);
        }
        write!(
            f,
            "cell {} failed after {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

/// Aggregate failure/retry record of one [`BatchRunner::try_map`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSummary {
    /// Permanently failed (quarantined) cells, sorted by cell index.
    pub failures: Vec<CellFailure>,
    /// Total retry attempts across all cells (a cell that succeeded on its
    /// second attempt contributes 1).
    pub retries: u64,
}

impl FailureSummary {
    /// `true` when every cell eventually succeeded.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of quarantined cells.
    pub fn quarantined(&self) -> usize {
        self.failures.len()
    }

    /// Number of quarantined cells that were watchdog timeouts.
    pub fn timed_out(&self) -> usize {
        self.failures.iter().filter(|f| f.timed_out).count()
    }
}

impl fmt::Display for FailureSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "all cells succeeded ({} retries)", self.retries);
        }
        write!(
            f,
            "{} cell(s) quarantined, {} retries; first: {}",
            self.failures.len(),
            self.retries,
            self.failures[0]
        )
    }
}

/// Partial results plus the failure record of a fault-isolated batch run.
#[derive(Debug)]
pub struct BatchOutcome<R> {
    /// Per-cell results in item order; `None` marks a quarantined cell.
    pub results: Vec<Option<R>>,
    /// What failed, what was retried.
    pub summary: FailureSummary,
}

/// A worker pool that executes experiment cells with deterministic merging.
///
/// The pool is scoped: threads are spawned per map call and joined before it
/// returns, so borrowed cell data needs no `'static` lifetime. Panicking
/// cells do **not** tear down the pool: each cell runs inside
/// `catch_unwind`, is retried with bounded deterministic backoff, and is
/// quarantined into a [`FailureSummary`] if it keeps failing, while the
/// remaining cells complete and merge normally.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    sink: Option<Arc<TraceSink>>,
    cell_deadline: Option<Duration>,
    flight: Option<FlightPlan>,
}

impl PartialEq for BatchRunner {
    /// Two runners are equal when they schedule identically (same worker
    /// count); an attached trace sink or flight recorder observes
    /// scheduling without changing it, so neither participates in equality.
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
    }
}

impl Eq for BatchRunner {}

impl BatchRunner {
    /// Attempts per cell before it is quarantined (1 initial + 2 retries).
    pub const MAX_ATTEMPTS: u32 = 3;

    /// A runner with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            sink: None,
            cell_deadline: None,
            flight: None,
        }
    }

    /// Arms the per-cell watchdog: every cell gets at most `budget` of wall
    /// clock. A cell that overruns is cancelled at its next cooperative poll
    /// point (`giantsan_ir::watchdog::poll` — the interpreter polls every
    /// [`giantsan_ir::watchdog::POLL_INTERVAL`] steps) and quarantined as a
    /// timed-out [`CellFailure`] **without retry**, so a runaway cell costs
    /// one deadline, not `MAX_ATTEMPTS` of them, and never wedges the pool.
    ///
    /// Cancellation is cooperative: a cell that never reaches a poll point
    /// (a tight loop outside the interpreter) is not interruptible. Service
    /// submissions always execute through the interpreter, which is the
    /// runaway surface this protects.
    #[must_use]
    pub fn with_cell_deadline(mut self, budget: Duration) -> Self {
        self.cell_deadline = Some(budget);
        self
    }

    /// The armed per-cell deadline, if any.
    pub fn cell_deadline(&self) -> Option<Duration> {
        self.cell_deadline
    }

    /// Attaches a [`TraceSink`]: every subsequent `map`/`try_map` call
    /// records per-cell and per-batch scheduling spans into it. Tracing is
    /// observation-only — results and their ordering are unchanged.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The attached trace sink, if any.
    pub fn sink(&self) -> Option<&Arc<TraceSink>> {
        self.sink.as_ref()
    }

    /// Attaches a crash [`FlightRecorder`]: every subsequent `map`/`try_map`
    /// call records cell lifecycle events (start, end, retry, timeout,
    /// quarantine) into the bounded ring, attributed to the causal span
    /// `span_id(parent_span, SpanKind::Cell, index_base + i)`. `index_base`
    /// is the global index of the batch's first cell, so shard-relative
    /// batches record campaign-global cell indices. Recording is lock-free
    /// and allocation-free; like the trace sink it is observation-only and
    /// never changes results.
    #[must_use]
    pub fn with_flight(
        mut self,
        recorder: Arc<FlightRecorder>,
        parent_span: u64,
        index_base: u64,
    ) -> Self {
        self.flight = Some(FlightPlan {
            recorder,
            parent_span,
            index_base,
        });
        self
    }

    /// A single-threaded runner: cells run inline, in order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(Self::available_parallelism())
    }

    /// The host's available parallelism (1 when it cannot be queried).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Number of workers this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `job` over every item and returns the results in item order.
    ///
    /// `job` receives the cell index alongside the item (seed derivation and
    /// labelling often need it). With one worker — or one item — everything
    /// runs inline on the caller's thread with zero scheduling overhead,
    /// which is also the reference ordering the parallel path must match.
    ///
    /// # Panics
    ///
    /// If any cell fails permanently (panics on every attempt), this panics
    /// with the [`FailureSummary`] — but only after every other cell has
    /// completed. Callers that want the partial results instead use
    /// [`BatchRunner::try_map`].
    pub fn map<T, R, F>(&self, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let outcome = self.try_map(items, job);
        if !outcome.summary.is_clean() {
            panic!("batch failed: {}", outcome.summary);
        }
        outcome
            .results
            .into_iter()
            .map(|r| r.expect("clean batch must have every result"))
            .collect()
    }

    /// Fault-isolated variant of [`BatchRunner::map`]: never panics because
    /// of a failing cell. Each cell is attempted up to
    /// [`BatchRunner::MAX_ATTEMPTS`] times; a cell that keeps panicking is
    /// quarantined (its slot is `None`) and recorded in the summary, while
    /// all other cells run to completion.
    ///
    /// The summary is deterministic for a deterministic `job`: failures are
    /// sorted by cell index and retry totals are scheduling-independent.
    pub fn try_map<T, R, F>(&self, items: &[T], job: F) -> BatchOutcome<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let sink = self.sink.as_deref();
        let batch = sink.map(|s| (s.claim_batch(), s.now_us()));
        let deadline = self.cell_deadline;
        let flight = self.flight.as_ref();
        let run_cell = |i: usize, worker: usize, item: &T| -> (u32, Result<R, CellFailure>) {
            let start_us = sink.map(|s| s.now_us());
            // (recorder, cell span id, global cell index) when a flight
            // recorder is attached; the span links the ring dump back to
            // the causal chain in `spans.jsonl`.
            let black_box = flight.map(|f| {
                let (span, cell) = f.cell_span(i);
                (&*f.recorder, span, cell)
            });
            let flight_mark = |kind: FlightEventKind, b: u64| {
                if let Some((fr, span, cell)) = black_box {
                    fr.record(worker, kind, span, cell, b);
                }
            };
            let mut attempts = 0u32;
            let out = loop {
                attempts += 1;
                flight_mark(FlightEventKind::CellStart, attempts as u64);
                let attempt = || {
                    // Arm the watchdog for this attempt only; the guard
                    // disarms on every exit path, timeout panic included.
                    let _watch = deadline.map(giantsan_ir::watchdog::arm);
                    job(i, item)
                };
                match std::panic::catch_unwind(AssertUnwindSafe(attempt)) {
                    Ok(r) => {
                        flight_mark(FlightEventKind::CellEnd, attempts as u64);
                        break (attempts, Ok(r));
                    }
                    Err(payload) if giantsan_ir::watchdog::is_timeout_payload(payload.as_ref()) => {
                        // A timed-out cell is quarantined immediately:
                        // retrying a runaway cell cannot succeed, it only
                        // stalls the worker for another full deadline.
                        flight_mark(FlightEventKind::Timeout, attempts as u64);
                        flight_mark(FlightEventKind::Quarantine, attempts as u64);
                        break (
                            attempts,
                            Err(CellFailure {
                                index: i,
                                attempts,
                                message: giantsan_ir::watchdog::TIMEOUT_PAYLOAD.to_string(),
                                timed_out: true,
                            }),
                        );
                    }
                    Err(payload) if attempts >= Self::MAX_ATTEMPTS => {
                        flight_mark(FlightEventKind::Quarantine, attempts as u64);
                        break (
                            attempts,
                            Err(CellFailure {
                                index: i,
                                attempts,
                                message: panic_message(payload.as_ref()),
                                timed_out: false,
                            }),
                        );
                    }
                    Err(_) => {
                        flight_mark(FlightEventKind::Retry, attempts as u64);
                        backoff(attempts);
                    }
                }
            };
            if let (Some(s), Some(start_us), Some((batch, _))) = (sink, start_us, batch) {
                s.push_cell(CellSpan {
                    batch,
                    index: i,
                    worker,
                    attempts: out.0,
                    start_us,
                    dur_us: s.now_us() - start_us,
                });
            }
            out
        };

        let cells: Vec<CellRecord<R>> = if self.threads == 1 || n <= 1 {
            items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let (attempts, r) = run_cell(i, 0, t);
                    (i, attempts, r)
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let workers = self.threads.min(n);
            let shards: Vec<Vec<CellRecord<R>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let run_cell = &run_cell;
                        let cursor = &cursor;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                // Work stealing: claim the next cell.
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(item) = items.get(i) else { break };
                                let (attempts, r) = run_cell(i, w, item);
                                local.push((i, attempts, r));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // Worker bodies never unwind (cells are caught),
                        // so a join error is a harness bug.
                        h.join().expect("batch worker must not panic")
                    })
                    .collect()
            });
            shards.into_iter().flatten().collect()
        };

        if let (Some(s), Some((batch, start_us))) = (sink, batch) {
            s.push_batch(BatchSpan {
                batch,
                cells: n,
                threads: self.threads,
                start_us,
                dur_us: s.now_us() - start_us,
            });
        }

        // Deterministic merge: place every result at its cell index, so the
        // output order owes nothing to scheduling.
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut summary = FailureSummary::default();
        let mut failed: Vec<CellFailure> = Vec::new();
        for (i, attempts, r) in cells {
            summary.retries += (attempts - 1) as u64;
            match r {
                Ok(v) => {
                    debug_assert!(results[i].is_none(), "cell {i} executed twice");
                    results[i] = Some(v);
                }
                Err(fail) => failed.push(fail),
            }
        }
        failed.sort_by_key(|f| f.index);
        summary.failures = failed;
        BatchOutcome { results, summary }
    }
}

/// One executed cell: its index, attempt count, and result.
type CellRecord<R> = (usize, u32, Result<R, CellFailure>);

/// Renders a caught panic payload (the `&str`/`String` cases panics almost
/// always carry).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Bounded deterministic backoff between attempts: a fixed spin that grows
/// with the attempt number. No clocks, no randomness — retry schedules are
/// identical run to run.
fn backoff(attempt: u32) {
    let spins = 1u64 << (6 + attempt.min(8));
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

impl Default for BatchRunner {
    /// Defaults to [`BatchRunner::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let reference = BatchRunner::serial().map(&items, |i, x| (i as u64) * 1000 + x);
        for threads in [2, 3, 4, 8, 64] {
            let got = BatchRunner::new(threads).map(&items, |i, x| (i as u64) * 1000 + x);
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_matrices() {
        let r = BatchRunner::new(8);
        assert_eq!(r.map(&[] as &[u64], |_, x| *x), Vec::<u64>::new());
        assert_eq!(r.map(&[42u64], |i, x| x + i as u64), vec![42]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(BatchRunner::new(0).threads(), 1);
        assert!(BatchRunner::auto().threads() >= 1);
    }

    #[test]
    fn uneven_cell_costs_still_merge_deterministically() {
        // Cells with wildly different costs exercise the stealing path: the
        // long cell is claimed once and the rest drain around it.
        let items: Vec<u64> = (0..64).collect();
        let job = |_: usize, x: &u64| {
            let rounds = if *x == 0 { 200_000 } else { 100 };
            (0..rounds).fold(*x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        assert_eq!(
            BatchRunner::new(4).map(&items, job),
            BatchRunner::serial().map(&items, job)
        );
    }

    #[test]
    fn panicking_cell_is_quarantined_not_fatal() {
        for threads in [1, 2, 8] {
            let items: Vec<u64> = (0..8).collect();
            let outcome = BatchRunner::new(threads).try_map(&items, |i, x| {
                if i == 3 {
                    panic!("cell 3 panicked");
                }
                x * 2
            });
            assert_eq!(outcome.summary.quarantined(), 1, "{threads} threads");
            let fail = &outcome.summary.failures[0];
            assert_eq!(fail.index, 3);
            assert_eq!(fail.attempts, BatchRunner::MAX_ATTEMPTS);
            assert!(fail.message.contains("cell 3 panicked"));
            assert_eq!(
                outcome.summary.retries,
                (BatchRunner::MAX_ATTEMPTS - 1) as u64
            );
            // Every other cell still completed and merged in order.
            assert!(outcome.results[3].is_none());
            for (i, r) in outcome.results.iter().enumerate() {
                if i != 3 {
                    assert_eq!(*r, Some(i as u64 * 2));
                }
            }
            assert!(!outcome.summary.is_clean());
            assert!(outcome.summary.to_string().contains("quarantined"));
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<u64> = (0..4).collect();
        let first_tries: Vec<AtomicU32> = items.iter().map(|_| AtomicU32::new(0)).collect();
        let outcome = BatchRunner::new(2).try_map(&items, |i, x| {
            // Cell 1 fails on its first attempt only (a transient fault).
            if i == 1 && first_tries[i].fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            *x + 10
        });
        assert!(outcome.summary.is_clean());
        assert_eq!(outcome.summary.retries, 1);
        let got: Vec<u64> = outcome.results.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, vec![10, 11, 12, 13]);
    }

    #[test]
    fn timed_out_cells_are_quarantined_without_retry() {
        let items: Vec<u64> = (0..6).collect();
        let attempts = AtomicUsize::new(0);
        let outcome = BatchRunner::new(2)
            .with_cell_deadline(Duration::from_millis(20))
            .try_map(&items, |i, x| {
                if i == 2 {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    // Unbounded cooperative loop: spins until the watchdog
                    // cancels it at a poll point.
                    loop {
                        giantsan_ir::watchdog::poll();
                        std::hint::spin_loop();
                    }
                }
                x * 3
            });
        assert_eq!(outcome.summary.quarantined(), 1);
        assert_eq!(outcome.summary.timed_out(), 1);
        let fail = &outcome.summary.failures[0];
        assert!(fail.timed_out);
        assert_eq!(fail.index, 2);
        // One attempt only: timeouts are not retried.
        assert_eq!(fail.attempts, 1);
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
        assert!(fail.to_string().contains("deadline"));
        for (i, r) in outcome.results.iter().enumerate() {
            if i != 2 {
                assert_eq!(*r, Some(i as u64 * 3));
            }
        }
    }

    #[test]
    fn deadline_leaves_fast_cells_untouched() {
        let items: Vec<u64> = (0..32).collect();
        let plain = BatchRunner::new(4).map(&items, |_, x| x + 1);
        let timed = BatchRunner::new(4)
            .with_cell_deadline(Duration::from_secs(60))
            .map(&items, |_, x| x + 1);
        assert_eq!(plain, timed);
    }

    #[test]
    fn flight_recorder_sees_the_cell_lifecycle_with_global_indices() {
        let fr = Arc::new(FlightRecorder::new(2, 64));
        let items: Vec<u64> = (0..4).collect();
        let parent = 0x5111;
        let outcome = BatchRunner::new(2)
            .with_flight(Arc::clone(&fr), parent, 100)
            .try_map(&items, |i, x| {
                if i == 1 {
                    panic!("boom");
                }
                x + 1
            });
        assert_eq!(outcome.summary.quarantined(), 1);
        let snap = fr.snapshot();
        // Cells record *global* indices (index_base + i) and spans derived
        // from the given parent, so the dump correlates with spans.jsonl.
        assert!(snap
            .iter()
            .any(|e| e.kind == FlightEventKind::CellEnd && e.a == 100));
        let q = snap
            .iter()
            .find(|e| e.kind == FlightEventKind::Quarantine)
            .unwrap();
        assert_eq!(q.a, 101);
        assert_eq!(q.span, span_id(parent, SpanKind::Cell, 101));
        let retries = snap
            .iter()
            .filter(|e| e.kind == FlightEventKind::Retry)
            .count();
        assert_eq!(retries, (BatchRunner::MAX_ATTEMPTS - 1) as usize);
        let starts = snap
            .iter()
            .filter(|e| e.kind == FlightEventKind::CellStart)
            .count();
        // 3 clean cells + MAX_ATTEMPTS attempts on the failing one.
        assert_eq!(starts, 3 + BatchRunner::MAX_ATTEMPTS as usize);
    }

    #[test]
    fn map_surfaces_permanent_failures_after_draining() {
        let items: Vec<u64> = (0..8).collect();
        let done = AtomicUsize::new(0);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            BatchRunner::new(2).map(&items, |i, x| {
                if i == 5 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
                *x
            })
        }))
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("batch failed"), "{msg}");
        assert!(msg.contains("cell 5"), "{msg}");
        // The other 7 cells all ran before the failure surfaced.
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }
}
