//! The parallel batch-execution engine.
//!
//! Every experiment in this harness is a *cell matrix*: a list of
//! independent (tool × workload × size × seed) runs whose results are folded
//! into one table. [`BatchRunner`] executes such a matrix across a scoped
//! worker pool with dynamic scheduling — workers steal the next unclaimed
//! cell from a shared atomic cursor, so a straggler cell never idles the
//! rest of the pool — and reassembles results **by cell index**, which makes
//! the merged output independent of thread count and completion order.
//!
//! Determinism contract: for a pure `job`, `runner.map(items, job)` returns
//! byte-for-byte the same `Vec` for every thread count, including 1. The
//! differential test `tests/determinism.rs` and the CI smoke job enforce
//! this end-to-end on the experiment CSVs.
//!
//! # Example
//!
//! ```
//! use giantsan_harness::BatchRunner;
//! let runner = BatchRunner::new(4);
//! let squares = runner.map(&[1u64, 2, 3, 4, 5], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker pool that executes experiment cells with deterministic merging.
///
/// The pool is scoped: threads are spawned per [`BatchRunner::map`] call and
/// joined before it returns, so borrowed cell data needs no `'static`
/// lifetime and a panicking cell propagates to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner: cells run inline, in order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(Self::available_parallelism())
    }

    /// The host's available parallelism (1 when it cannot be queried).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Number of workers this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `job` over every item and returns the results in item order.
    ///
    /// `job` receives the cell index alongside the item (seed derivation and
    /// labelling often need it). With one worker — or one item — everything
    /// runs inline on the caller's thread with zero scheduling overhead,
    /// which is also the reference ordering the parallel path must match.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any cell after the scope joins.
    pub fn map<T, R, F>(&self, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            // Work stealing: claim the next unfinished cell.
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, job(i, item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(shard) => shard,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Deterministic merge: place every result at its cell index, so the
        // output order owes nothing to scheduling.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for shard in shards {
            for (i, r) in shard {
                debug_assert!(out[i].is_none(), "cell {i} executed twice");
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every claimed cell must produce a result"))
            .collect()
    }
}

impl Default for BatchRunner {
    /// Defaults to [`BatchRunner::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let reference = BatchRunner::serial().map(&items, |i, x| (i as u64) * 1000 + x);
        for threads in [2, 3, 4, 8, 64] {
            let got = BatchRunner::new(threads).map(&items, |i, x| (i as u64) * 1000 + x);
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_matrices() {
        let r = BatchRunner::new(8);
        assert_eq!(r.map(&[] as &[u64], |_, x| *x), Vec::<u64>::new());
        assert_eq!(r.map(&[42u64], |i, x| x + i as u64), vec![42]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(BatchRunner::new(0).threads(), 1);
        assert!(BatchRunner::auto().threads() >= 1);
    }

    #[test]
    fn uneven_cell_costs_still_merge_deterministically() {
        // Cells with wildly different costs exercise the stealing path: the
        // long cell is claimed once and the rest drain around it.
        let items: Vec<u64> = (0..64).collect();
        let job = |_: usize, x: &u64| {
            let rounds = if *x == 0 { 200_000 } else { 100 };
            (0..rounds).fold(*x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        assert_eq!(
            BatchRunner::new(4).map(&items, job),
            BatchRunner::serial().map(&items, job)
        );
    }

    #[test]
    #[should_panic(expected = "cell 3 panicked")]
    fn cell_panics_propagate() {
        let items: Vec<u64> = (0..8).collect();
        BatchRunner::new(2).map(&items, |i, _| {
            if i == 3 {
                panic!("cell 3 panicked");
            }
            i
        });
    }
}
