//! Pins the `repro` exit-code contract that scripts and CI depend on:
//!
//! * `0` — the run succeeded.
//! * `1` — a runtime failure: cells failed, a campaign is incomplete, I/O
//!   broke. Retrying (or finishing the campaign) can help.
//! * `2` — a usage error or campaign spec drift: the invocation itself is
//!   wrong, and rerunning it unchanged cannot help.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn code(out: &Output) -> i32 {
    out.status
        .code()
        .expect("repro must exit, not die on a signal")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("giantsan-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn success_exits_zero() {
    let out = repro(&["echo", "--scale", "2", "--rounds", "1"]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("campaign digest"));
}

#[test]
fn usage_errors_exit_two() {
    // No arguments at all.
    assert_eq!(code(&repro(&[])), 2);
    // An unknown study.
    assert_eq!(code(&repro(&["not-a-study"])), 2);
    // A known study with a malformed flag.
    assert_eq!(code(&repro(&["echo", "--scale"])), 2);
    // --shard without --out-dir is an invalid combination.
    assert_eq!(code(&repro(&["echo", "--shard", "0/2"])), 2);
    // merge without a directory operand.
    assert_eq!(code(&repro(&["merge"])), 2);
    // serve with an unknown flag.
    assert_eq!(code(&repro(&["serve", "--bogus"])), 2);
}

#[test]
fn incomplete_campaign_exits_one_and_spec_drift_exits_two() {
    let dir = tmpdir("campaign");
    let dir_s = dir.to_str().unwrap();

    // Shard 0 of 2 commits cleanly.
    let out = repro(&[
        "echo",
        "--scale",
        "4",
        "--rounds",
        "1",
        "--seed",
        "0xe0",
        "--out-dir",
        dir_s,
        "--shard",
        "0/2",
    ]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));

    // Merging the half-finished campaign is a runtime failure (finish it),
    // not a usage error.
    let out = repro(&["merge", dir_s]);
    assert_eq!(code(&out), 1, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("incomplete"));

    // Resuming under different parameters is spec drift: exit 2, campaign
    // left untouched.
    let out = repro(&[
        "echo", "--scale", "4", "--rounds", "1", "--seed", "0xff", "--resume", dir_s,
    ]);
    assert_eq!(code(&out), 2, "{}", String::from_utf8_lossy(&out.stderr));

    // Resuming with the original parameters completes it: exit 0.
    let out = repro(&[
        "echo", "--scale", "4", "--rounds", "1", "--seed", "0xe0", "--resume", dir_s,
    ]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));

    // And now merge succeeds too.
    assert_eq!(code(&repro(&["merge", dir_s])), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
