//! Differential test pinning detection behaviour across heap backends: the
//! Juliet, CVE, and Magma workloads must produce byte-identical outcomes —
//! the same detection verdict and the same execution digest per case —
//! whether GiantSan allocates from the legacy free-list heap or the
//! Immix-style block/line heap. Allocator policy may move objects around,
//! but it must never change what the sanitizer reports.

use giantsan_harness::{run_planned, Tool};
use giantsan_runtime::{HeapBackend, RuntimeConfig};
use giantsan_workloads::flaws::cve_scenarios;
use giantsan_workloads::juliet::juliet_suite_scaled;
use giantsan_workloads::magma::{magma_cases, magma_templates};

/// The two configurations under comparison: identical except for the heap
/// backend behind the allocator.
fn configs() -> [(&'static str, RuntimeConfig); 2] {
    let freelist = RuntimeConfig::default();
    let blockline = freelist
        .to_builder()
        .heap_backend(HeapBackend::BlockLine)
        .build();
    [("freelist", freelist), ("blockline", blockline)]
}

/// (detected, execution digest) for one planned run.
fn outcome(
    program: &giantsan_ir::Program,
    plan: &giantsan_ir::CheckPlan,
    inputs: &[i64],
    cfg: &RuntimeConfig,
) -> (bool, u64) {
    let out = run_planned(Tool::GiantSan, program, plan, inputs, cfg);
    (out.detected(), out.result.digest())
}

#[test]
fn juliet_outcomes_are_backend_invariant() {
    let suite = juliet_suite_scaled(8);
    let [(_, fl), (_, bl)] = configs();
    let plans: Vec<_> = suite
        .templates
        .iter()
        .map(|p| Tool::GiantSan.plan(p))
        .collect();
    assert!(!suite.cases.is_empty());
    for case in &suite.cases {
        let program = &suite.templates[case.template];
        let plan = &plans[case.template];
        for inputs in [&case.buggy_inputs, &case.safe_inputs] {
            let a = outcome(program, plan, inputs, &fl);
            let b = outcome(program, plan, inputs, &bl);
            assert_eq!(
                a, b,
                "CWE-{} {:?} diverges between heap backends",
                case.cwe, inputs
            );
        }
    }
}

#[test]
fn cve_outcomes_are_backend_invariant() {
    let scenarios = cve_scenarios();
    let [(_, fl), (_, bl)] = configs();
    assert!(!scenarios.is_empty());
    for c in &scenarios {
        let plan = Tool::GiantSan.plan(&c.program);
        let a = outcome(&c.program, &plan, &c.inputs, &fl);
        let b = outcome(&c.program, &plan, &c.inputs, &bl);
        assert_eq!(a, b, "{} diverges between heap backends", c.cve);
        assert!(a.0, "{} must be detected under both backends", c.cve);
    }
}

#[test]
fn magma_outcomes_are_backend_invariant() {
    let templates = magma_templates();
    let cases = magma_cases(256);
    let [(_, fl), (_, bl)] = configs();
    let plans: Vec<_> = templates.iter().map(|p| Tool::GiantSan.plan(p)).collect();
    assert!(!cases.is_empty());
    for case in &cases {
        let program = &templates[case.template];
        let plan = &plans[case.template];
        let a = outcome(program, plan, &case.inputs, &fl);
        let b = outcome(program, plan, &case.inputs, &bl);
        assert_eq!(
            a, b,
            "magma {} {:?} diverges between heap backends",
            case.project, case.inputs
        );
    }
}
