//! Durability drills for the campaign checkpoint format.
//!
//! Three failure modes a long-lived sanitizer service must survive:
//!
//! 1. **Torn manifest tail** — the process died mid-append, leaving a final
//!    manifest line without its newline. `--resume` must treat that shard as
//!    uncommitted and re-run it, producing the same records as a clean run.
//! 2. **Disk full mid-blob** — a shard-blob write fails partway. The failed
//!    shard must surface as *quarantined* (and its partial blob removed),
//!    never as a silently committed half-file; a clean retry must finish.
//! 3. **Runaway cells** — a deliberately unbounded cell is cancelled by the
//!    per-cell watchdog and degrades to the study's placeholder payload,
//!    identically at every worker count, without wedging the pool.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use giantsan_harness::batch::BatchRunner;
use giantsan_harness::campaign::{faultpoint, records_digest, Campaign, CampaignError, ShardSpec};
use giantsan_harness::json::Json;
use giantsan_harness::study::{Record, Study, StudyOpts, StudyOutput, StudyRegistry};

/// The campaign writer's fault injection is process-global, so tests that
/// write shards serialize on this lock to keep armed faults from leaking
/// into a neighbour.
fn write_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "giantsan-campaign-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn echo_opts() -> StudyOpts {
    StudyOpts {
        scale: 8,
        rounds: 1,
        seed: 0x70a5,
        ..StudyOpts::default()
    }
}

#[test]
fn torn_final_manifest_line_is_tolerated_on_resume() {
    let _g = write_lock();
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").unwrap();
    let dir = tmpdir("torn");
    let campaign = Campaign::new(study, echo_opts()).unwrap();
    let serial = campaign.run_all(&BatchRunner::serial());

    // Commit shards 0 and 1 of 4, then tear the final manifest line the way
    // a crash mid-append does: no trailing newline, half the record gone.
    for index in 0..2 {
        campaign
            .run_shard(&dir, ShardSpec { index, count: 4 }, &BatchRunner::serial())
            .unwrap();
    }
    let manifest = dir.join("manifest.jsonl");
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert_eq!(text.lines().count(), 2);
    let torn = &text[..text.len() - text.lines().last().unwrap().len() / 2 - 1];
    assert!(!torn.ends_with('\n'));
    std::fs::write(&manifest, torn).unwrap();

    // Resume: shard 0 is reused, the torn shard 1 re-runs with 2 and 3.
    let (records, stats) = campaign.resume(&dir, &BatchRunner::serial()).unwrap();
    assert_eq!(stats.reused, vec![0]);
    assert_eq!(stats.ran, vec![1, 2, 3]);
    assert_eq!(records, serial);
    assert_eq!(records_digest(&records), records_digest(&serial));

    // The repaired manifest is complete: a reload needs no re-runs.
    let reloaded = campaign.load_records(&dir).unwrap();
    assert_eq!(reloaded, serial);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_full_quarantines_shard_and_clean_retry_completes() {
    let _g = write_lock();
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").unwrap();
    let dir = tmpdir("enospc");
    let campaign = Campaign::new(study, echo_opts()).unwrap();
    let serial = campaign.run_all(&BatchRunner::serial());
    campaign.init_dir(&dir, 4).unwrap();

    // One injected ENOSPC: the first shard-blob write fails after a partial
    // prefix, exactly like a disk filling up.
    faultpoint::arm_blob_write_errors(1);
    let err = campaign.resume(&dir, &BatchRunner::serial()).unwrap_err();
    faultpoint::disarm();
    match &err {
        CampaignError::ShardsQuarantined { failed } => {
            assert_eq!(failed.len(), 1);
            assert_eq!(failed[0].0, 0);
            assert!(failed[0].1.contains("disk-full"), "{}", failed[0].1);
        }
        other => panic!("expected quarantine, got {other}"),
    }
    // The failed shard left no partial blob at the committed name, and the
    // manifest records only the three shards that did commit.
    assert!(!dir.join("shard-0000.jsonl").exists());
    let manifest = std::fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
    assert_eq!(manifest.lines().count(), 3);
    assert!(matches!(
        campaign.load_records(&dir).unwrap_err(),
        CampaignError::Incomplete { .. }
    ));

    // The "disk" has space again: only the quarantined shard re-runs, and
    // the merged records match the monolithic run byte for byte.
    let (records, stats) = campaign.resume(&dir, &BatchRunner::serial()).unwrap();
    assert_eq!(stats.reused, vec![1, 2, 3]);
    assert_eq!(stats.ran, vec![0]);
    assert_eq!(records, serial);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A study with deliberately unbounded cells: every third cell spins until
/// the per-cell watchdog cancels it at a poll point.
#[derive(Debug, Clone, Copy)]
struct SpinStudy;

impl Study for SpinStudy {
    fn name(&self) -> &'static str {
        "spin-test"
    }

    fn cells(&self, _opts: &StudyOpts) -> Result<Vec<String>, String> {
        Ok((0..9).map(|i| format!("spin-{i}")).collect())
    }

    fn run_cell(&self, _opts: &StudyOpts, index: usize) -> Json {
        if index % 3 == 1 {
            // Unbounded cooperative loop — only the watchdog ends it.
            loop {
                giantsan_ir::watchdog::poll();
                std::hint::spin_loop();
            }
        }
        Json::obj().field("value", (index as u64) * 7)
    }

    fn placeholder(&self, _opts: &StudyOpts, index: usize) -> Option<Json> {
        Some(
            Json::obj()
                .field("value", (index as u64) * 7)
                .field("quarantined", true),
        )
    }

    fn render(&self, _opts: &StudyOpts, _records: &[Record]) -> Result<StudyOutput, String> {
        Ok(StudyOutput::default())
    }
}

#[test]
fn unbounded_cells_degrade_identically_at_every_worker_count() {
    let opts = StudyOpts::default();
    let run = |workers: usize| {
        let runner = if workers == 0 {
            BatchRunner::serial()
        } else {
            BatchRunner::new(workers)
        }
        .with_cell_deadline(Duration::from_millis(40));
        let range: Range<usize> = 0..9;
        let payloads = SpinStudy.run_range(&opts, range, &runner);
        let records: Vec<Record> = payloads
            .into_iter()
            .enumerate()
            .map(|(index, payload)| Record {
                index,
                label: format!("spin-{index}"),
                payload,
            })
            .collect();
        records
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    // The pool never wedges (this test returning is the proof) and every
    // worker count produces byte-identical records: timed-out cells degrade
    // to the same placeholder payload regardless of scheduling.
    assert_eq!(one, two);
    assert_eq!(two, four);
    assert_eq!(records_digest(&one), records_digest(&four));
    for (i, r) in one.iter().enumerate() {
        let quarantined = r.payload.get("quarantined").is_some();
        assert_eq!(quarantined, i % 3 == 1, "cell {i}: {:?}", r.payload);
        assert_eq!(
            r.payload.get("value").and_then(Json::as_u64),
            Some((i as u64) * 7)
        );
    }
}

#[test]
fn shard_partitions_merge_into_the_monolithic_digest() {
    let _g = write_lock();
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").unwrap();
    let campaign = Campaign::new(study, echo_opts()).unwrap();
    let serial = campaign.run_all(&BatchRunner::serial());
    for shards in [1usize, 3, 8] {
        let dir = tmpdir(&format!("part{shards}"));
        for index in 0..shards {
            campaign
                .run_shard(
                    &dir,
                    ShardSpec {
                        index,
                        count: shards,
                    },
                    &BatchRunner::serial(),
                )
                .unwrap();
        }
        let records = campaign.load_records(&dir).unwrap();
        assert_eq!(records_digest(&records), records_digest(&serial));
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Paranoia: the digest is order-sensitive, so losing or duplicating a
    // cell cannot cancel out.
    let mut dropped = serial.clone();
    dropped.remove(3);
    assert_ne!(records_digest(&dropped), records_digest(&serial));
    let mut duplicated = serial.clone();
    let r = duplicated[2].clone();
    duplicated.insert(2, r);
    assert_ne!(records_digest(&duplicated), records_digest(&serial));
}
