//! Process-level chaos drill for `repro serve`.
//!
//! The contract under test is the ISSUE 9 acceptance bar: a server killed
//! with SIGKILL **mid-campaign** must, on restart with the same data
//! directory, resume the interrupted job from its committed shards and
//! produce a digest byte-identical to a monolithic serial run — zero lost,
//! zero duplicated cells. A second leg checks the graceful path: SIGTERM
//! drains and exits 0 with durable state intact.
//!
//! Everything here drives the real binary (`CARGO_BIN_EXE_repro`) over real
//! sockets; the in-process lib tests in `src/serve/` cover the fine-grained
//! logic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use giantsan_harness::batch::BatchRunner;
use giantsan_harness::campaign::{records_digest, Campaign};
use giantsan_harness::json::Json;
use giantsan_harness::study::{StudyOpts, StudyRegistry};

const SCALE: u64 = 128;
const ROUNDS: u64 = 20;
const SEED: u64 = 0xc4a05;
const SHARDS: u64 = 16;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("giantsan-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `repro serve` on an ephemeral port and returns the child plus the
/// bound address parsed from its stdout banner.
fn spawn_serve(data_dir: &Path) -> (Child, String) {
    spawn_serve_with(data_dir, &[])
}

/// [`spawn_serve`] with extra flags appended (e.g. a cell deadline).
fn spawn_serve_with(data_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--threads-per-job",
            "1",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve banner line")
        .expect("read serve banner");
    let addr = banner
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .trim()
        .to_string();
    // Keep draining the pipe so the child never blocks on a full buffer.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn request(addr: &str, raw: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn wait_exit(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(t0.elapsed() < limit, "server did not exit in {limit:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The monolithic reference: the same study run serially in one process.
fn serial_digest() -> String {
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").unwrap();
    let opts = StudyOpts {
        scale: SCALE,
        rounds: ROUNDS,
        seed: SEED,
        ..StudyOpts::default()
    };
    let records = Campaign::new(study, opts)
        .unwrap()
        .run_all(&BatchRunner::serial());
    format!("{:#018x}", records_digest(&records))
}

#[test]
fn sigkill_mid_campaign_then_restart_resumes_to_the_serial_digest() {
    let data = tmpdir("chaos");
    let (mut child, addr) = spawn_serve(&data);

    let body = format!(
        r#"{{"study":"echo","params":{{"scale":{SCALE},"rounds":{ROUNDS},"seed":"{SEED:#x}"}},"shards":{SHARDS}}}"#
    );
    let (st, resp) = request(
        &addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(st, 202, "{resp}");
    let id = Json::parse(&resp)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Wait until the campaign is genuinely mid-flight — some shards
    // committed, most not — then SIGKILL the server. No drain, no warning.
    let manifest = data
        .join("jobs")
        .join(&id)
        .join("campaign")
        .join("manifest.jsonl");
    let t0 = Instant::now();
    loop {
        let committed = std::fs::read_to_string(&manifest)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if committed >= 2 {
            assert!(
                (committed as u64) < SHARDS,
                "job finished before the kill; grow the workload"
            );
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "no shard committed within 60s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    // The on-disk job is interrupted, not complete — exactly what the next
    // process must pick up.
    let descriptor = std::fs::read_to_string(data.join("jobs").join(&id).join("job.json")).unwrap();
    assert!(
        !descriptor.contains("\"completed\""),
        "job must not be complete at kill time: {descriptor}"
    );

    // Restart on the same data dir: recovery re-queues the job and the
    // campaign resumes from its committed shards.
    let (mut child2, addr2) = spawn_serve(&data);
    let t0 = Instant::now();
    let digest = loop {
        let (st, body) = get(&addr2, &format!("/v1/jobs/{id}"));
        assert_eq!(st, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if state == "completed" {
            break v
                .get("digest")
                .and_then(Json::as_str)
                .expect("completed job has a digest")
                .to_string();
        }
        assert!(
            state == "queued" || state == "running",
            "job must never fail across the restart: {body}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "resumed job never completed: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // Zero lost, zero duplicated cells: the resumed digest is the serial one.
    assert_eq!(digest, serial_digest());

    let (st, metrics) = get(&addr2, "/metrics");
    assert_eq!(st, 200);
    assert!(
        metrics.contains("giantsan_serve_jobs_resumed_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("giantsan_serve_responses_5xx_total 0"),
        "{metrics}"
    );

    // Graceful leg: SIGTERM drains and exits 0.
    let term = Command::new("kill")
        .args(["-TERM", &child2.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = wait_exit(&mut child2, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0");

    let _ = std::fs::remove_dir_all(&data);
}

/// Pulls the `"span":"0x..."` field out of a flight-recorder JSONL line.
fn flight_span(line: &str) -> Option<u64> {
    let at = line.find("\"span\":\"0x")? + "\"span\":\"0x".len();
    u64::from_str_radix(line.get(at..at + 16)?, 16).ok()
}

#[test]
fn watchdog_fired_cells_leave_a_flight_dump_chaining_to_the_request() {
    let data = tmpdir("flight");
    // A zero cell deadline makes the watchdog fire in every cell: the cells
    // quarantine to placeholders, the job still completes, and the
    // quarantine path must dump the flight recorder into the job dir.
    let (mut child, addr) = spawn_serve_with(&data, &["--cell-deadline-ms", "0"]);

    let body = r#"{"study":"echo","params":{"scale":3,"rounds":2,"seed":"0xf1"}}"#;
    let (st, resp) = request(
        &addr,
        &format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(st, 202, "{resp}");
    let id = Json::parse(&resp)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let t0 = Instant::now();
    loop {
        let (st, body) = get(&addr, &format!("/v1/jobs/{id}"));
        assert_eq!(st, 200, "{body}");
        let state = Json::parse(&body)
            .unwrap()
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if state == "completed" {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "watchdog job never completed: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The span chain was written at job start and is served over HTTP.
    let (st, spans_text) = get(&addr, &format!("/v1/jobs/{id}/spans"));
    assert_eq!(st, 200, "{spans_text}");
    let parents: std::collections::HashMap<u64, Option<u64>> = spans_text
        .lines()
        .filter_map(giantsan_telemetry::parse_span_line)
        .collect();
    assert!(!parents.is_empty(), "{spans_text}");
    let root_line = spans_text
        .lines()
        .find(|l| l.contains("\"kind\":\"request\""))
        .expect("request root span served");
    let (root, none) = giantsan_telemetry::parse_span_line(root_line).unwrap();
    assert_eq!(none, None, "the request span is the chain root");

    // The flight dump exists, parses, and its quarantine events carry span
    // ids that chain all the way back to the originating HTTP request.
    let job_dir = data.join("jobs").join(&id);
    let flight = std::fs::read_to_string(job_dir.join("flight.jsonl")).expect("flight.jsonl");
    assert!(
        flight.lines().next().unwrap().contains("\"flight\":\"v1\""),
        "{flight}"
    );
    let quarantined: Vec<u64> = flight
        .lines()
        .filter(|l| l.contains("\"ev\":\"quarantine\""))
        .filter_map(flight_span)
        .collect();
    assert!(!quarantined.is_empty(), "{flight}");
    for span in quarantined {
        let mut cur = span;
        let mut hops = 0;
        while let Some(&Some(parent)) = parents.get(&cur) {
            cur = parent;
            hops += 1;
            assert!(hops <= parents.len(), "parent chain loops");
        }
        assert_eq!(cur, root, "quarantined span chains to the request root");
    }
    // The Chrome rendering of the same dump is loadable trace_event JSON.
    let chrome = std::fs::read_to_string(job_dir.join("flight_chrome.json")).unwrap();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");

    child.kill().expect("kill serve");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&data);
}

#[test]
fn golden_digest_matches_the_ci_chaos_parameters() {
    // The CI service-smoke job digest-diffs `loadgen expect` against this
    // golden file; this test keeps the golden honest against the library.
    let golden = include_str!("golden/serve_digest.txt").trim().to_string();
    let registry = StudyRegistry::builtin();
    let study = registry.get("echo").unwrap();
    let opts = StudyOpts {
        scale: 64,
        rounds: 4,
        seed: 0x5eed,
        ..StudyOpts::default()
    };
    let records = Campaign::new(study, opts)
        .unwrap()
        .run_all(&BatchRunner::serial());
    assert_eq!(format!("{:#018x}", records_digest(&records)), golden);
}
