//! Deterministic sampling histograms.
//!
//! Everything here is counter-driven: a histogram is a pure function of the
//! recorded values, merging is element-wise addition (commutative and
//! associative, so shard count and merge order never change the result —
//! pinned by `tests/hist_props.rs`), and no wall-clock ever enters a bucket.

use std::collections::BTreeMap;

use giantsan_shadow::codes;

use crate::event::{CheckPathKind, EventKind};

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds values `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds
/// exactly 0), i.e. `index(v) = 64 - v.leading_zeros()`.
///
/// # Example
///
/// ```
/// use giantsan_telemetry::Log2Hist;
/// let mut h = Log2Hist::default();
/// h.record(0);
/// h.record(1);
/// h.record(1024);
/// assert_eq!(h.count, 3);
/// assert_eq!(h.sum, 1025);
/// assert_eq!(h.buckets[0], 1); // the zero
/// assert_eq!(h.buckets[1], 1); // the one
/// assert_eq!(h.buckets[11], 1); // 1024 in [1024, 2048)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; `buckets[0]` counts
    /// zeros.
    pub buckets: [u64; 65],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Hist {
    /// Bucket index for `v`.
    pub fn index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds `other` into `self` (element-wise; order-independent).
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Index of the highest non-empty bucket, if any sample was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// Per-site check-path mix: how often each path was taken at one site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathMix {
    /// Fast-path checks.
    pub fast: u64,
    /// Slow-path checks.
    pub slow: u64,
    /// History-cache hits.
    pub cache_hits: u64,
    /// History-cache refreshes.
    pub cache_updates: u64,
    /// Dedicated underflow checks.
    pub underflow: u64,
    /// Pointer-arithmetic checks.
    pub arith: u64,
    /// Planner-eliminated visits (no runtime work).
    pub skipped: u64,
}

impl PathMix {
    /// Total visits across every path.
    pub fn total(&self) -> u64 {
        self.fast
            + self.slow
            + self.cache_hits
            + self.cache_updates
            + self.underflow
            + self.arith
            + self.skipped
    }

    /// Fraction of visits that took a metadata-loading slow path.
    pub fn slow_share(&self) -> f64 {
        let slow = self.slow + self.cache_updates + self.underflow;
        slow as f64 / self.total().max(1) as f64
    }

    fn bump(&mut self, path: CheckPathKind) {
        match path {
            CheckPathKind::Fast => self.fast += 1,
            CheckPathKind::Slow => self.slow += 1,
            CheckPathKind::CacheHit => self.cache_hits += 1,
            CheckPathKind::CacheUpdate => self.cache_updates += 1,
            CheckPathKind::Underflow => self.underflow += 1,
            CheckPathKind::Arith => self.arith += 1,
            CheckPathKind::Skipped => self.skipped += 1,
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &PathMix) {
        self.fast += other.fast;
        self.slow += other.slow;
        self.cache_hits += other.cache_hits;
        self.cache_updates += other.cache_updates;
        self.underflow += other.underflow;
        self.arith += other.arith;
        self.skipped += other.skipped;
    }
}

/// The full deterministic histogram set a [`crate::TraceRecorder`] samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histograms {
    /// Checked region sizes, in bytes.
    pub region_sizes: Log2Hist,
    /// Folding degrees of folded shadow codes observed at checks.
    pub fold_depths: Log2Hist,
    /// Quasi-bound refresh ordinals (convergence lengths).
    pub convergence: Log2Hist,
    /// Allocation sizes, in bytes.
    pub alloc_sizes: Log2Hist,
    /// Per-site check-path mix (BTreeMap: deterministic iteration order).
    pub sites: BTreeMap<u32, PathMix>,
}

impl Histograms {
    /// Samples whatever `kind` carries into the relevant histograms.
    pub fn observe(&mut self, kind: &EventKind) {
        match kind {
            EventKind::Check {
                site,
                path,
                region,
                code,
                ..
            } => {
                self.region_sizes.record(*region);
                if let Some(degree) = code.and_then(codes::folding_degree) {
                    self.fold_depths.record(degree as u64);
                }
                self.sites.entry(*site).or_default().bump(*path);
            }
            EventKind::QuasiBound { step, .. } => {
                self.convergence.record(*step as u64);
            }
            EventKind::Alloc { size, .. } => {
                self.alloc_sizes.record(*size);
            }
            _ => {}
        }
    }

    /// The mix recorded for `site`, if it was ever visited.
    pub fn site(&self, site: u32) -> Option<&PathMix> {
        self.sites.get(&site)
    }

    /// Folds `other` into `self`; shard-count and order invariant.
    pub fn merge(&mut self, other: &Histograms) {
        self.region_sizes.merge(&other.region_sizes);
        self.fold_depths.merge(&other.fold_depths);
        self.convergence.merge(&other.convergence);
        self.alloc_sizes.merge(&other.alloc_sizes);
        for (site, mix) in &other.sites {
            self.sites.entry(*site).or_default().merge(mix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(Log2Hist::index(0), 0);
        assert_eq!(Log2Hist::index(1), 1);
        assert_eq!(Log2Hist::index(2), 2);
        assert_eq!(Log2Hist::index(3), 2);
        assert_eq!(Log2Hist::index(4), 3);
        assert_eq!(Log2Hist::index(u64::MAX), 64);
        assert_eq!(Log2Hist::upper_bound(0), 0);
        assert_eq!(Log2Hist::upper_bound(3), 7);
        assert_eq!(Log2Hist::upper_bound(64), u64::MAX);
    }

    #[test]
    fn observe_routes_events_to_the_right_histograms() {
        let mut h = Histograms::default();
        h.observe(&EventKind::Check {
            site: 3,
            path: CheckPathKind::Slow,
            write: true,
            loads: 2,
            region: 64,
            code: Some(codes::folded(4)),
        });
        h.observe(&EventKind::QuasiBound {
            site: 3,
            old_ub: 0,
            new_ub: 128,
            step: 2,
        });
        h.observe(&EventKind::Alloc {
            size: 100,
            stack: false,
            poison: 16,
            placement: None,
        });
        h.observe(&EventKind::Run {
            steps: 1,
            native_work: 1,
            reports: 0,
        });
        assert_eq!(h.region_sizes.count, 1);
        assert_eq!(h.fold_depths.sum, 4);
        assert_eq!(h.convergence.count, 1);
        assert_eq!(h.alloc_sizes.sum, 100);
        let mix = h.site(3).unwrap();
        assert_eq!(mix.slow, 1);
        assert_eq!(mix.total(), 1);
        assert!(mix.slow_share() > 0.99);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histograms::default();
        let mut b = Histograms::default();
        for v in [1u64, 2, 3] {
            a.observe(&EventKind::Alloc {
                size: v,
                stack: false,
                poison: 0,
                placement: None,
            });
        }
        b.observe(&EventKind::Alloc {
            size: 3,
            stack: true,
            poison: 0,
            placement: None,
        });
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.alloc_sizes.count, 4);
        assert_eq!(merged.alloc_sizes.sum, 9);
        // Merging the other way gives the same histogram.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(merged, other_way);
    }
}
