//! Crash flight recorder: bounded, lock-free, per-worker event rings.
//!
//! The JSONL event stream and the histograms answer "what did the run do";
//! the flight recorder answers "what was the machine doing *right before it
//! went wrong*". Each worker owns a fixed-capacity ring of small
//! fixed-width slots; recording is one `fetch_add` plus a handful of
//! relaxed atomic stores — **no locks, no allocation, no branches that
//! grow** — so it is safe to leave armed on the hot path permanently. When
//! the ring wraps, the oldest entries are overwritten and the overwrite
//! count is reported, never hidden.
//!
//! A dump ([`FlightRecorder::snapshot`] → [`FlightRecorder::to_jsonl`] /
//! [`FlightRecorder::to_chrome`]) can be taken at any moment — from the
//! serve watchdog path, the per-cell quarantine path, or a SIGUSR1 handler
//! — including while workers are still writing. A slot being overwritten
//! mid-read can yield one torn event; dumps are **presentation-plane**
//! forensics (they carry wall-clock and worker identity by design) and are
//! never digested, so that tear is acceptable where a lock on the hot path
//! would not be.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::export::ChromeTrace;

/// Default per-worker ring capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// What a flight event marks. Encoded as one byte in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A batch cell attempt started (`a` = cell index, `b` = attempt).
    CellStart,
    /// A batch cell finished cleanly (`a` = cell index, `b` = attempt).
    CellEnd,
    /// A cell attempt panicked and will be retried (`a` = cell, `b` = attempt).
    Retry,
    /// The watchdog fired: the cell exceeded its deadline (`a` = cell).
    Timeout,
    /// A cell was quarantined — retries exhausted or timed out (`a` = cell).
    Quarantine,
    /// A shard started (`a` = shard index, `b` = cell count).
    ShardStart,
    /// A shard committed (`a` = shard index, `b` = cell count).
    ShardEnd,
    /// A job started (`a` = job ordinal).
    JobStart,
    /// A job reached a terminal phase (`a` = job ordinal).
    JobEnd,
    /// Free-form marker (`a`/`b` caller-defined).
    Mark,
}

impl FlightEventKind {
    /// Short stable name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::CellStart => "cell_start",
            FlightEventKind::CellEnd => "cell_end",
            FlightEventKind::Retry => "retry",
            FlightEventKind::Timeout => "timeout",
            FlightEventKind::Quarantine => "quarantine",
            FlightEventKind::ShardStart => "shard_start",
            FlightEventKind::ShardEnd => "shard_end",
            FlightEventKind::JobStart => "job_start",
            FlightEventKind::JobEnd => "job_end",
            FlightEventKind::Mark => "mark",
        }
    }

    fn code(self) -> u64 {
        match self {
            FlightEventKind::CellStart => 0,
            FlightEventKind::CellEnd => 1,
            FlightEventKind::Retry => 2,
            FlightEventKind::Timeout => 3,
            FlightEventKind::Quarantine => 4,
            FlightEventKind::ShardStart => 5,
            FlightEventKind::ShardEnd => 6,
            FlightEventKind::JobStart => 7,
            FlightEventKind::JobEnd => 8,
            FlightEventKind::Mark => 9,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            0 => FlightEventKind::CellStart,
            1 => FlightEventKind::CellEnd,
            2 => FlightEventKind::Retry,
            3 => FlightEventKind::Timeout,
            4 => FlightEventKind::Quarantine,
            5 => FlightEventKind::ShardStart,
            6 => FlightEventKind::ShardEnd,
            7 => FlightEventKind::JobStart,
            8 => FlightEventKind::JobEnd,
            _ => FlightEventKind::Mark,
        }
    }
}

/// One decoded flight event, as returned by [`FlightRecorder::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Ring (worker) the event was recorded on.
    pub worker: u32,
    /// Microseconds since the recorder was created (wall-clock;
    /// presentation plane only).
    pub ts_us: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Causal span id the event is attributed to (0 when unattributed).
    pub span: u64,
    /// First payload word (kind-specific, see [`FlightEventKind`]).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

/// One slot: five words, each stored with a relaxed atomic so concurrent
/// dump reads are race-free (if possibly torn across words).
#[derive(Debug)]
struct Slot {
    ts_us: AtomicU64,
    kind: AtomicU64,
    span: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            ts_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            span: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One worker's ring: a monotone push counter plus `capacity` slots.
#[derive(Debug)]
struct Ring {
    pushed: AtomicU64,
    slots: Box<[Slot]>,
}

/// The flight recorder: one fixed ring per worker, shared by reference.
#[derive(Debug)]
pub struct FlightRecorder {
    origin: Instant,
    rings: Box<[Ring]>,
}

impl FlightRecorder {
    /// A recorder with `workers` rings of `capacity` slots each. All memory
    /// is allocated here, once; [`Self::record`] never allocates.
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let capacity = capacity.max(1);
        let rings = (0..workers)
            .map(|_| Ring {
                pushed: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
            })
            .collect();
        FlightRecorder {
            origin: Instant::now(),
            rings,
        }
    }

    /// Number of per-worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Per-ring slot capacity.
    pub fn capacity(&self) -> usize {
        self.rings[0].slots.len()
    }

    /// Records one event on `worker`'s ring (modulo the ring count, so a
    /// caller with more threads than rings still lands somewhere). Hot
    /// path: one `fetch_add` + five relaxed stores, no allocation.
    pub fn record(&self, worker: usize, kind: FlightEventKind, span: u64, a: u64, b: u64) {
        let ring = &self.rings[worker % self.rings.len()];
        let n = ring.pushed.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(n as usize) % ring.slots.len()];
        let ts = self.origin.elapsed().as_micros() as u64;
        slot.ts_us.store(ts, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.span.store(span, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
    }

    /// Total events ever recorded, across all rings.
    pub fn recorded(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.pushed.load(Ordering::Relaxed))
            .sum()
    }

    /// Events lost to ring wrap-around (recorded minus retained).
    pub fn overwritten(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| {
                let pushed = r.pushed.load(Ordering::Relaxed);
                pushed.saturating_sub(r.slots.len() as u64)
            })
            .sum()
    }

    /// Decodes the retained events of every ring, oldest first within a
    /// ring, merged and sorted by timestamp then worker.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for (w, ring) in self.rings.iter().enumerate() {
            let cap = ring.slots.len() as u64;
            let pushed = ring.pushed.load(Ordering::Acquire);
            let start = pushed.saturating_sub(cap);
            for n in start..pushed {
                let slot = &ring.slots[(n as usize) % ring.slots.len()];
                out.push(FlightEvent {
                    worker: w as u32,
                    ts_us: slot.ts_us.load(Ordering::Relaxed),
                    kind: FlightEventKind::from_code(slot.kind.load(Ordering::Relaxed)),
                    span: slot.span.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by_key(|e| (e.ts_us, e.worker));
        out
    }

    /// Renders a self-contained JSONL dump: a header line carrying the ring
    /// geometry and the overwrite count (losses are reported, never
    /// hidden), then one line per retained event.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"flight\":\"v1\",\"workers\":{},\"capacity\":{},\"recorded\":{},\"overwritten\":{}}}",
            self.workers(),
            self.capacity(),
            self.recorded(),
            self.overwritten()
        );
        for e in self.snapshot() {
            let _ = writeln!(
                out,
                "{{\"ts_us\":{},\"worker\":{},\"ev\":\"{}\",\"span\":\"{:#018x}\",\"a\":{},\"b\":{}}}",
                e.ts_us,
                e.worker,
                e.kind.name(),
                e.span,
                e.a,
                e.b
            );
        }
        out
    }

    /// Renders the retained events as a Chrome `trace_event` file (one
    /// track per worker, instants for point events), loadable in Perfetto.
    pub fn to_chrome(&self, process: &str) -> String {
        let mut t = ChromeTrace::new();
        t.process_name(1, process);
        for w in 0..self.workers() {
            t.thread_name(1, w as u32 + 1, &format!("worker {w}"));
        }
        let events = self.snapshot();
        // Pair CellStart/CellEnd on the same worker into slices; everything
        // else renders as an instant.
        let mut open: Vec<(u32, u64, u64, u64)> = Vec::new(); // (worker, cell, span, ts)
        for e in &events {
            match e.kind {
                FlightEventKind::CellStart => {
                    open.push((e.worker, e.a, e.span, e.ts_us));
                }
                FlightEventKind::CellEnd => {
                    if let Some(pos) = open
                        .iter()
                        .rposition(|&(w, cell, _, _)| w == e.worker && cell == e.a)
                    {
                        let (w, cell, span, start) = open.remove(pos);
                        t.complete(
                            1,
                            w + 1,
                            &format!("cell {cell}"),
                            "cell",
                            start as f64,
                            (e.ts_us.saturating_sub(start)) as f64,
                            &[("span", &format!("{span:#018x}"))],
                        );
                    }
                }
                kind => {
                    t.instant(1, e.worker + 1, kind.name(), e.ts_us as f64);
                }
            }
        }
        // Unclosed cells (the wedged ones — the reason dumps exist) render
        // as instants so they are visible rather than silently dropped.
        for (w, cell, _, ts) in open {
            t.instant(1, w + 1, &format!("cell {cell} (unfinished)"), ts as f64);
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_retains_the_newest_events_and_counts_overwrites() {
        let fr = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            fr.record(0, FlightEventKind::Mark, 0, i, 0);
        }
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.overwritten(), 6);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 4);
        let kept: Vec<u64> = snap.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest overwritten first");
    }

    #[test]
    fn rings_are_per_worker_and_jsonl_reports_losses() {
        let fr = FlightRecorder::new(2, 8);
        fr.record(0, FlightEventKind::CellStart, 0xabc, 1, 1);
        fr.record(1, FlightEventKind::Quarantine, 0xdef, 2, 0);
        assert_eq!(fr.workers(), 2);
        assert_eq!(fr.capacity(), 8);
        let text = fr.to_jsonl();
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"flight\":\"v1\""));
        assert!(header.contains("\"overwritten\":0"));
        assert!(text.contains("\"ev\":\"cell_start\""));
        assert!(text.contains("\"ev\":\"quarantine\""));
        assert!(text.contains("\"span\":\"0x0000000000000def\""));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn chrome_dump_pairs_cells_and_keeps_wedged_ones_visible() {
        let fr = FlightRecorder::new(1, 16);
        fr.record(0, FlightEventKind::CellStart, 1, 5, 1);
        fr.record(0, FlightEventKind::CellEnd, 1, 5, 1);
        fr.record(0, FlightEventKind::CellStart, 2, 6, 1);
        fr.record(0, FlightEventKind::Timeout, 2, 6, 0);
        let json = fr.to_chrome("flight");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"cell 5\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("timeout"));
        assert!(json.contains("cell 6 (unfinished)"));
    }

    #[test]
    fn concurrent_recording_never_loses_the_count() {
        let fr = std::sync::Arc::new(FlightRecorder::new(4, 32));
        std::thread::scope(|s| {
            for w in 0..4 {
                let fr = fr.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        fr.record(w, FlightEventKind::Mark, 0, i, 0);
                    }
                });
            }
        });
        assert_eq!(fr.recorded(), 400);
        assert_eq!(fr.overwritten(), 400 - 4 * 32);
        assert_eq!(fr.snapshot().len(), 4 * 32);
    }
}
