//! Prometheus-style text exposition of final counters and histograms.
//!
//! Not a live scrape endpoint — the reproduction runs batch experiments, so
//! the exposition is written once at the end of a run. The format follows
//! the Prometheus text exposition conventions (`# HELP` / `# TYPE`,
//! cumulative `_bucket{le=...}` histogram series) so the file can be pushed
//! through a gateway or diffed directly.

use std::fmt::Write as _;

use crate::hist::{Histograms, Log2Hist};

fn hist_exposition(out: &mut String, name: &str, help: &str, h: &Log2Hist) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    let top = h.max_bucket().unwrap_or(0);
    for i in 0..=top {
        cumulative += h.buckets[i];
        let le = Log2Hist::upper_bound(i);
        if le == u64::MAX {
            continue; // folded into +Inf below
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders the exposition: an info gauge naming the shadow-kernel backend
/// the run executed under (`kernel`, e.g. `swar` or `simd-avx2` — the
/// telemetry crate does not depend on `giantsan-shadow`, so callers pass the
/// resolved name), one counter series per `(name, value)` pair in `counters`
/// (names are emitted verbatim, prefixed `giantsan_`), the four
/// deterministic histograms, the per-site path mix, and the dropped-event
/// count (so a truncated trace can never read as a complete one).
pub fn prometheus(
    kernel: &str,
    counters: &[(&str, u64)],
    hists: &Histograms,
    dropped: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP giantsan_kernel_info Shadow-kernel backend this run executed under."
    );
    let _ = writeln!(out, "# TYPE giantsan_kernel_info gauge");
    let _ = writeln!(out, "giantsan_kernel_info{{kernel=\"{kernel}\"}} 1");
    for (name, value) in counters {
        let metric = format!("giantsan_{name}_total");
        let _ = writeln!(out, "# HELP {metric} Sanitizer counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    hist_exposition(
        &mut out,
        "giantsan_region_size_bytes",
        "Checked region sizes (log2 buckets).",
        &hists.region_sizes,
    );
    hist_exposition(
        &mut out,
        "giantsan_fold_depth",
        "Folding degrees observed at checks (log2 buckets).",
        &hists.fold_depths,
    );
    hist_exposition(
        &mut out,
        "giantsan_quasi_bound_steps",
        "Quasi-bound refresh ordinals (convergence lengths).",
        &hists.convergence,
    );
    hist_exposition(
        &mut out,
        "giantsan_alloc_size_bytes",
        "Allocation sizes (log2 buckets).",
        &hists.alloc_sizes,
    );
    let _ = writeln!(
        out,
        "# HELP giantsan_site_checks_total Check-path visits per site."
    );
    let _ = writeln!(out, "# TYPE giantsan_site_checks_total counter");
    for (site, mix) in &hists.sites {
        for (path, v) in [
            ("fast", mix.fast),
            ("slow", mix.slow),
            ("cache_hit", mix.cache_hits),
            ("cache_update", mix.cache_updates),
            ("underflow", mix.underflow),
            ("arith", mix.arith),
            ("skipped", mix.skipped),
        ] {
            if v > 0 {
                let _ = writeln!(
                    out,
                    "giantsan_site_checks_total{{site=\"{site}\",path=\"{path}\"}} {v}"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "# HELP giantsan_trace_events_dropped_total Events past the recorder cap (sampled but not buffered)."
    );
    let _ = writeln!(out, "# TYPE giantsan_trace_events_dropped_total counter");
    let _ = writeln!(out, "giantsan_trace_events_dropped_total {dropped}");
    out
}

/// Renders a generic service exposition: counters, gauges, and log2
/// histograms under caller-chosen metric names.
///
/// The sanitizer exposition above is shaped by the fixed [`Histograms`]
/// taxonomy; the long-lived `repro serve` front-end needs the same text
/// format for *its own* metrics (request totals by status class, admission
/// sheds, queue depth, latency histograms). Names are emitted verbatim —
/// callers prefix (`giantsan_serve_...`) themselves — and histogram
/// rendering reuses the cumulative-bucket discipline, so one scrape parser
/// handles both expositions.
pub fn service_exposition(
    counters: &[(&str, &str, u64)],
    gauges: &[(&str, &str, u64)],
    hists: &[(&str, &str, &Log2Hist)],
) -> String {
    let mut out = String::new();
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, value) in gauges {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, h) in hists {
        hist_exposition(&mut out, name, help, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CheckPathKind, EventKind};

    #[test]
    fn service_exposition_renders_all_three_families() {
        let mut h = Log2Hist::default();
        h.record(100);
        h.record(90_000);
        let s = service_exposition(
            &[("svc_requests_total", "Requests.", 12)],
            &[("svc_queue_depth", "Queue depth.", 3)],
            &[("svc_latency_us", "Latency (µs).", &h)],
        );
        assert!(s.contains("# TYPE svc_requests_total counter"));
        assert!(s.contains("svc_requests_total 12"));
        assert!(s.contains("# TYPE svc_queue_depth gauge"));
        assert!(s.contains("svc_queue_depth 3"));
        assert!(s.contains("# TYPE svc_latency_us histogram"));
        assert!(s.contains("svc_latency_us_count 2"));
        assert!(s.contains("svc_latency_us_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn exposition_has_counters_histograms_and_sites() {
        let mut h = Histograms::default();
        h.observe(&EventKind::Check {
            site: 2,
            path: CheckPathKind::Slow,
            write: false,
            loads: 3,
            region: 100,
            code: None,
        });
        h.observe(&EventKind::Alloc {
            size: 64,
            stack: false,
            poison: 8,
            placement: None,
        });
        let s = prometheus("swar", &[("shadow_loads", 3), ("reports", 0)], &h, 5);
        assert!(s.contains("giantsan_kernel_info{kernel=\"swar\"} 1"));
        assert!(s.contains("giantsan_shadow_loads_total 3"));
        assert!(s.contains("giantsan_reports_total 0"));
        assert!(s.contains("# TYPE giantsan_region_size_bytes histogram"));
        assert!(s.contains("giantsan_region_size_bytes_bucket{le=\"+Inf\"} 1"));
        assert!(s.contains("giantsan_region_size_bytes_sum 100"));
        assert!(s.contains("giantsan_site_checks_total{site=\"2\",path=\"slow\"} 1"));
        assert!(s.contains("giantsan_trace_events_dropped_total 5"));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = Histograms::default();
        for size in [1u64, 2, 4, 8, 1024] {
            h.observe(&EventKind::Alloc {
                size,
                stack: false,
                poison: 0,
                placement: None,
            });
        }
        let s = prometheus("scalar", &[], &h, 0);
        let mut last = 0u64;
        for line in s
            .lines()
            .filter(|l| l.starts_with("giantsan_alloc_size_bytes_bucket") && !l.contains("+Inf"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
        assert!(s.contains("giantsan_alloc_size_bytes_count 5"));
    }
}
