//! Chrome `trace_event` export, loadable in Perfetto / `chrome://tracing`.
//!
//! This is the **presentation plane**: unlike the JSONL stream, slices here
//! carry real wall-clock timestamps and worker identities (workers render as
//! tracks, cells as slices), because the whole point of the view is to see
//! where wall-clock goes inside a batch run. Nothing emitted here is ever
//! digested or compared across thread counts.
//!
//! The emitted JSON is the object form `{"traceEvents": [...]}`; every event
//! carries the `ph`/`ts`/`pid`/`tid` keys the format requires.

use std::fmt::Write as _;

use super::json_escape;

/// Incremental builder for a Chrome trace file.
///
/// # Example
///
/// ```
/// use giantsan_telemetry::export::ChromeTrace;
/// let mut t = ChromeTrace::new();
/// t.process_name(1, "batch");
/// t.thread_name(1, 1, "worker 0");
/// t.complete(1, 1, "cell 0", "cell", 0.0, 150.0, &[("attempts", "1")]);
/// t.instant(1, 1, "report", 75.0);
/// t.counter(1, "checks", 100.0, &[("fast", "90"), ("slow", "10")]);
/// let json = t.finish();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn args_json(args: &[(&str, &str)]) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        s.push('}');
        s
    }

    /// Names process `pid` (a metadata `M` event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Names thread `tid` of process `pid` (a metadata `M` event).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Adds a complete slice (`ph: "X"`): `ts`/`dur` in microseconds.
    #[allow(clippy::too_many_arguments)] // mirrors the trace_event field list
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, &str)],
    ) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
            json_escape(name),
            json_escape(cat),
            Self::args_json(args)
        ));
    }

    /// Adds an instant event (`ph: "i"`, thread scope).
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_us: f64) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"name\":\"{}\"}}",
            json_escape(name)
        ));
    }

    /// Adds a counter sample (`ph: "C"`).
    pub fn counter(&mut self, pid: u32, name: &str, ts_us: f64, series: &[(&str, &str)]) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":0,\"name\":\"{}\",\"args\":{}}}",
            json_escape(name),
            Self::args_json(series)
        ));
    }

    /// Renders the trace as a single JSON object.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_keys_are_present_on_every_event() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "p");
        t.thread_name(1, 2, "w");
        t.complete(1, 2, "cell", "exec", 1.0, 2.0, &[]);
        t.instant(1, 2, "hit", 1.5);
        t.counter(1, "c", 0.0, &[("a", "1")]);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        let json = t.finish();
        for line in json.lines().filter(|l| l.starts_with('{') && l.len() > 2) {
            if line.starts_with("{\"traceEvents\"") {
                continue;
            }
            assert!(line.contains("\"ph\":"), "{line}");
            assert!(line.contains("\"ts\":"), "{line}");
            assert!(line.contains("\"pid\":"), "{line}");
        }
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.complete(1, 1, "a\"b", "c\\d", 0.0, 1.0, &[("k\"", "v\n")]);
        let json = t.finish();
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("c\\\\d"));
        assert!(json.contains("v\\n"));
    }
}
