//! The export pipeline: JSON Lines, Chrome `trace_event`, Prometheus text.
//!
//! | Format | Function / type | Plane |
//! |---|---|---|
//! | JSON Lines event stream | [`events_jsonl`] | data (deterministic, digested) |
//! | Chrome `trace_event` JSON | [`ChromeTrace`] | presentation (wall-clock, workers) |
//! | Prometheus text exposition | [`prometheus`] | data (final counters + histograms) |

mod chrome;
mod jsonl;
mod prom;

pub use chrome::ChromeTrace;
pub use jsonl::{events_jsonl, jsonl_digest, text_digest};
pub use prom::{prometheus, service_exposition};

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_control_set() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
