//! JSON Lines export of the deterministic event stream.
//!
//! One JSON object per line, stable key order, no floats, no wall-clock, no
//! worker ids — the rendered bytes (and therefore [`jsonl_digest`]) are a
//! pure function of the sorted event stream and are invariant under thread
//! count.

use std::fmt::Write as _;

use crate::event::{fnv1a, Event, EventKind};

/// Renders `events` as JSON Lines, sorted by `(cell, seq)`.
///
/// Sorting makes the output independent of how per-cell streams were
/// concatenated; within a cell, `seq` preserves emission order.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.cell, e.seq));
    let mut out = String::new();
    for e in sorted {
        let _ = write!(out, "{{\"cell\":{},\"seq\":{},", e.cell, e.seq);
        match &e.kind {
            EventKind::Check {
                site,
                path,
                write,
                loads,
                region,
                code,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"check\",\"site\":{},\"path\":\"{}\",\"write\":{},\"loads\":{},\"region\":{}",
                    site,
                    path.name(),
                    write,
                    loads,
                    region
                );
                if let Some(c) = code {
                    let _ = write!(out, ",\"code\":{c}");
                }
            }
            EventKind::QuasiBound {
                site,
                old_ub,
                new_ub,
                step,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"quasi_bound\",\"site\":{site},\"old_ub\":{old_ub},\"new_ub\":{new_ub},\"step\":{step}"
                );
            }
            EventKind::Alloc {
                size,
                stack,
                poison,
                placement,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"alloc\",\"size\":{size},\"stack\":{stack},\"poison\":{poison}"
                );
                if let Some(p) = placement {
                    let _ = write!(
                        out,
                        ",\"block\":{},\"line\":{},\"class\":{}",
                        p.block, p.line, p.class
                    );
                }
            }
            EventKind::Free { poison } => {
                let _ = write!(out, "\"ev\":\"free\",\"poison\":{poison}");
            }
            EventKind::Realloc { new_size, poison } => {
                let _ = write!(
                    out,
                    "\"ev\":\"realloc\",\"new_size\":{new_size},\"poison\":{poison}"
                );
            }
            EventKind::Report { site } => {
                let _ = write!(out, "\"ev\":\"report\"");
                if let Some(s) = site {
                    let _ = write!(out, ",\"site\":{s}");
                }
            }
            EventKind::Contained { site, suppressed } => {
                let _ = write!(out, "\"ev\":\"contained\",\"suppressed\":{suppressed}");
                if let Some(s) = site {
                    let _ = write!(out, ",\"site\":{s}");
                }
            }
            EventKind::Pass {
                pass,
                enabled,
                visited,
                transformed,
                eliminated,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"pass\",\"pass\":\"{pass}\",\"enabled\":{enabled},\"visited\":{visited},\"transformed\":{transformed},\"eliminated\":{eliminated}"
                );
            }
            EventKind::Run {
                steps,
                native_work,
                reports,
            } => {
                let _ = write!(
                    out,
                    "\"ev\":\"run\",\"steps\":{steps},\"native_work\":{native_work},\"reports\":{reports}"
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

/// FNV-1a digest of the rendered JSONL bytes — the thread-invariant trace
/// fingerprint CI diffs serial vs parallel.
pub fn jsonl_digest(events: &[Event]) -> u64 {
    fnv1a(events_jsonl(events).as_bytes())
}

/// FNV-1a digest of an already-rendered JSONL document.
///
/// Campaign shards store each cell's event stream as rendered JSONL text;
/// merging concatenates the per-cell texts in `(cell, seq)` order, so
/// digesting the concatenation with this function equals [`jsonl_digest`]
/// of the merged event list without re-parsing a single event.
pub fn text_digest(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CheckPathKind;

    fn ev(cell: u32, seq: u64) -> Event {
        Event {
            cell,
            seq,
            kind: EventKind::Check {
                site: 1,
                path: CheckPathKind::Fast,
                write: false,
                loads: 1,
                region: 8,
                code: Some(64),
            },
        }
    }

    #[test]
    fn lines_are_valid_shaped_json_and_sorted() {
        let events = vec![ev(1, 0), ev(0, 1), ev(0, 0)];
        let s = events_jsonl(&events);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"cell\":0,\"seq\":0,"));
        assert!(lines[1].starts_with("{\"cell\":0,\"seq\":1,"));
        assert!(lines[2].starts_with("{\"cell\":1,\"seq\":0,"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert!(l.contains("\"ev\":\"check\""));
            assert!(l.contains("\"code\":64"));
        }
    }

    #[test]
    fn digest_is_order_invariant_under_sorting() {
        let a = vec![ev(0, 0), ev(1, 0), ev(1, 1)];
        let b = vec![ev(1, 1), ev(0, 0), ev(1, 0)];
        assert_eq!(jsonl_digest(&a), jsonl_digest(&b));
    }

    #[test]
    fn every_kind_renders() {
        let kinds = vec![
            EventKind::QuasiBound {
                site: 2,
                old_ub: 0,
                new_ub: 64,
                step: 1,
            },
            EventKind::Alloc {
                size: 10,
                stack: true,
                poison: 4,
                placement: None,
            },
            EventKind::Free { poison: 4 },
            EventKind::Realloc {
                new_size: 20,
                poison: 8,
            },
            EventKind::Report { site: None },
            EventKind::Contained {
                site: Some(3),
                suppressed: true,
            },
            EventKind::Pass {
                pass: "merge",
                enabled: true,
                visited: 5,
                transformed: 1,
                eliminated: 1,
            },
            EventKind::Run {
                steps: 100,
                native_work: 50,
                reports: 0,
            },
        ];
        let events: Vec<Event> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                cell: 0,
                seq: i as u64,
                kind,
            })
            .collect();
        let s = events_jsonl(&events);
        for tag in [
            "quasi_bound",
            "alloc",
            "free",
            "realloc",
            "report",
            "contained",
            "pass",
            "run",
        ] {
            assert!(s.contains(&format!("\"ev\":\"{tag}\"")), "{tag} missing");
        }
    }
}
