//! The recording abstraction: [`Recorder`], [`NoopRecorder`], and
//! [`TraceRecorder`].

use crate::event::{Event, EventKind};
use crate::hist::Histograms;

/// A sink for telemetry events.
///
/// Emission sites throughout the stack are written as
///
/// ```ignore
/// if R::ENABLED {
///     rec.record(EventKind::Check { .. });
/// }
/// ```
///
/// so a caller monomorphized at [`NoopRecorder`] (`ENABLED == false`)
/// compiles the whole branch — including any delta computation feeding the
/// event — out of the binary. This is the zero-cost-when-disabled contract:
/// the default interpreter entry points instantiate at [`NoopRecorder`], so
/// determinism digests and benchmark numbers are identical with and without
/// the telemetry layer present.
pub trait Recorder {
    /// Whether this recorder observes anything at all. Emission sites guard
    /// on it so disabled telemetry has no runtime representation.
    const ENABLED: bool;

    /// Records one event. Must be infallible and cheap; heavy work belongs
    /// in the exporters.
    fn record(&mut self, kind: EventKind);
}

/// The default recorder: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _kind: EventKind) {}
}

/// Default in-memory event cap of a [`TraceRecorder`].
///
/// The histograms keep sampling past the cap; only the raw event stream is
/// truncated, and the number of dropped events is reported (never silently).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// The enabled recorder: buffers the event stream and samples the
/// deterministic histograms as events arrive.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    cell: u32,
    seq: u64,
    events: Vec<Event>,
    hists: Histograms,
    max_events: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder whose events are tagged with `cell`.
    pub fn for_cell(cell: u32) -> Self {
        Self::with_capacity(cell, DEFAULT_MAX_EVENTS)
    }

    /// A recorder with an explicit event cap (histograms are uncapped).
    pub fn with_capacity(cell: u32, max_events: usize) -> Self {
        TraceRecorder {
            cell,
            seq: 0,
            events: Vec::new(),
            hists: Histograms::default(),
            max_events,
            dropped: 0,
        }
    }

    /// The recorded event stream, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The sampled histograms.
    pub fn histograms(&self) -> &Histograms {
        &self.hists
    }

    /// Events that exceeded the cap and were not buffered (they were still
    /// sampled into the histograms).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The cell this recorder tags its events with.
    pub fn cell(&self) -> u32 {
        self.cell
    }

    /// Consumes the recorder, returning the event stream, the histograms,
    /// and the dropped-event count.
    pub fn finish(self) -> (Vec<Event>, Histograms, u64) {
        (self.events, self.hists, self.dropped)
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    fn record(&mut self, kind: EventKind) {
        self.hists.observe(&kind);
        if self.events.len() < self.max_events {
            self.events.push(Event {
                cell: self.cell,
                seq: self.seq,
                kind,
            });
        } else {
            self.dropped += 1;
        }
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CheckPathKind;

    #[test]
    fn noop_is_disabled_and_inert() {
        const { assert!(!NoopRecorder::ENABLED) };
        let mut n = NoopRecorder;
        n.record(EventKind::Run {
            steps: 1,
            native_work: 1,
            reports: 0,
        });
    }

    #[test]
    fn trace_recorder_sequences_and_tags_events() {
        let mut r = TraceRecorder::for_cell(7);
        for i in 0..3 {
            r.record(EventKind::Alloc {
                size: i,
                stack: false,
                poison: 0,
                placement: None,
            });
        }
        const { assert!(TraceRecorder::ENABLED) };
        assert_eq!(r.cell(), 7);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(r.events().iter().all(|e| e.cell == 7));
        assert_eq!(r.histograms().alloc_sizes.count, 3);
    }

    #[test]
    fn cap_drops_events_but_keeps_sampling() {
        let mut r = TraceRecorder::with_capacity(0, 2);
        for site in 0..5 {
            r.record(EventKind::Check {
                site,
                path: CheckPathKind::Fast,
                write: false,
                loads: 0,
                region: 8,
                code: None,
            });
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.histograms().region_sizes.count, 5, "sampling continues");
        let (events, hists, dropped) = r.finish();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(hists.sites.len(), 5);
    }
}
