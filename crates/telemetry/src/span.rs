//! Causal spans: deterministic, parent-linked attribution records that
//! connect an HTTP request to the shard, cell, pass, and check hot-spot
//! work it caused.
//!
//! A [`Span`] is a **data-plane** record: its id is derived by FNV-1a from
//! its parent's id, its [`SpanKind`], and a deterministic index (shard
//! number, global cell index, site id) — never from wall-clock, worker
//! identity, or allocation addresses. Two runs of the same campaign spec
//! therefore produce byte-identical span sets regardless of thread count,
//! and a span id seen in a flight-recorder dump or a Prometheus exemplar
//! label can be resolved against the job's `spans.jsonl` long after the
//! process died.
//!
//! The chain mirrors the service stack top to bottom:
//!
//! ```text
//! request → admission → scheduler → job → shard → cell → pass / check
//! ```
//!
//! The root of a chain is seeded with the campaign spec hash (which already
//! excludes `--threads` and `--wall`), so span ids are stable across
//! resumes, restarts, and worker counts. Leaf spans below the cell level
//! are synthesized from the [`Recorder`](crate::Recorder) event stream via
//! [`SpanSet::hotspots`]: under the [`NoopRecorder`](crate::NoopRecorder)
//! no events exist, no leaf spans are built, and the layer costs nothing —
//! the same zero-cost-when-disabled discipline the rest of the crate obeys.

use std::fmt::Write as _;

use crate::event::{fnv1a, site_label, Event, EventKind};
use crate::export::json_escape;

/// Where in the service stack a span sits. The ordering of the variants is
/// the causal order of the chain; [`SpanSet::to_jsonl`] sorts by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The originating HTTP request (`POST /v1/jobs`).
    Request,
    /// Admission control: rate limiter + bounded queue verdict.
    Admission,
    /// A scheduler worker picked the job up.
    Scheduler,
    /// The job's campaign run as a whole.
    Job,
    /// One committed shard of the campaign.
    Shard,
    /// One batch cell (indexed by its global cell index).
    Cell,
    /// One analysis-pipeline pass inside a cell (tracing only).
    Pass,
    /// One check-site hot-spot inside a cell (tracing only).
    Check,
}

impl SpanKind {
    /// Short stable name used in JSONL output and id derivation.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Admission => "admission",
            SpanKind::Scheduler => "scheduler",
            SpanKind::Job => "job",
            SpanKind::Shard => "shard",
            SpanKind::Cell => "cell",
            SpanKind::Pass => "pass",
            SpanKind::Check => "check",
        }
    }
}

fn mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derives a span id from its parent id (or the campaign spec hash for the
/// root), the span kind, and a deterministic index. Pure FNV-1a — no
/// wall-clock, no randomness, no worker identity.
pub fn span_id(parent: u64, kind: SpanKind, index: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    h = mix(h, &parent.to_le_bytes());
    h = mix(h, kind.name().as_bytes());
    h = mix(h, &index.to_le_bytes());
    h
}

/// One span: a node in the causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Deterministic id ([`span_id`] of the parent/kind/index triple).
    pub id: u64,
    /// Parent span id; `None` for the chain root.
    pub parent: Option<u64>,
    /// Position in the stack.
    pub kind: SpanKind,
    /// Deterministic ordinal within the parent (shard number, global cell
    /// index, pass ordinal, site id).
    pub index: u64,
    /// Human-readable label (deterministic; no wall-clock).
    pub label: String,
}

/// An append-only set of spans with derivation helpers, a canonical JSONL
/// rendering, and an FNV-1a digest over that rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSet {
    spans: Vec<Span>,
}

impl SpanSet {
    /// An empty set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Adds the chain root: a [`SpanKind::Request`] span seeded from the
    /// campaign spec hash. Returns the new span's id.
    pub fn root(&mut self, seed: u64, label: impl Into<String>) -> u64 {
        let id = span_id(seed, SpanKind::Request, 0);
        self.spans.push(Span {
            id,
            parent: None,
            kind: SpanKind::Request,
            index: 0,
            label: label.into(),
        });
        id
    }

    /// Adds a child span under `parent` and returns the new span's id.
    pub fn child(
        &mut self,
        parent: u64,
        kind: SpanKind,
        index: u64,
        label: impl Into<String>,
    ) -> u64 {
        let id = span_id(parent, kind, index);
        self.spans.push(Span {
            id,
            parent: Some(parent),
            kind,
            index,
            label: label.into(),
        });
        id
    }

    /// The spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans in the set.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the set holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks a span up by id.
    pub fn find(&self, id: u64) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Walks parent links from `id` to the root, returning the ids visited
    /// (starting with `id` itself). Stops after `len()` hops so a corrupt
    /// set can never loop forever.
    pub fn ancestry(&self, id: u64) -> Vec<u64> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if chain.len() > self.spans.len() {
                break;
            }
            chain.push(c);
            cur = self.find(c).and_then(|s| s.parent);
        }
        chain
    }

    /// Synthesizes leaf spans under `cell_span` from a cell's recorded
    /// event stream: one [`SpanKind::Pass`] span per pipeline pass (in
    /// emission order) and one [`SpanKind::Check`] span per site that took
    /// a slow path, labelled with its slow-path event count. Under the
    /// `NoopRecorder` the stream is empty and nothing is built.
    pub fn hotspots(&mut self, cell_span: u64, events: &[Event]) {
        let mut pass_ordinal = 0u64;
        let mut sites: Vec<(u32, u64)> = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::Pass { pass, enabled, .. } => {
                    let state = if *enabled { "" } else { " (disabled)" };
                    self.child(
                        cell_span,
                        SpanKind::Pass,
                        pass_ordinal,
                        format!("{pass}{state}"),
                    );
                    pass_ordinal += 1;
                }
                EventKind::Check { site, path, .. } if path.is_slow_path() => {
                    match sites.iter_mut().find(|(s, _)| s == site) {
                        Some((_, n)) => *n += 1,
                        None => sites.push((*site, 1)),
                    }
                }
                _ => {}
            }
        }
        sites.sort_by_key(|&(site, _)| site);
        for (site, slow) in sites {
            self.child(
                cell_span,
                SpanKind::Check,
                site as u64,
                format!("{} ({slow} slow-path)", site_label(site)),
            );
        }
    }

    /// Renders the set as JSON Lines: one span per line, sorted by
    /// `(kind, index, id)` so the bytes are independent of insertion order
    /// (and therefore of scheduling).
    pub fn to_jsonl(&self) -> String {
        let mut sorted: Vec<&Span> = self.spans.iter().collect();
        sorted.sort_by_key(|s| (s.kind, s.index, s.id));
        let mut out = String::new();
        for s in sorted {
            let _ = write!(out, "{{\"id\":\"{:#018x}\"", s.id);
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent\":\"{p:#018x}\"");
            }
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"index\":{},\"label\":\"{}\"}}",
                s.kind.name(),
                s.index,
                json_escape(&s.label)
            );
            out.push('\n');
        }
        out
    }

    /// FNV-1a digest of [`Self::to_jsonl`] — the thread-invariant span
    /// fingerprint CI diffs across worker counts.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }
}

/// Parses one line of [`SpanSet::to_jsonl`] output back into `(id, parent)`
/// — enough to rebuild the parent chain from a dump without a JSON parser.
/// Returns `None` when the line is not a span line.
pub fn parse_span_line(line: &str) -> Option<(u64, Option<u64>)> {
    fn hex_field(line: &str, key: &str) -> Option<u64> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let hex = rest.strip_prefix("\"0x")?;
        let end = hex.find('"')?;
        u64::from_str_radix(&hex[..end], 16).ok()
    }
    let id = hex_field(line, "\"id\":")?;
    Some((id, hex_field(line, "\"parent\":")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CheckPathKind;

    fn chain() -> (SpanSet, u64, u64) {
        let mut set = SpanSet::new();
        let root = set.root(0xdead_beef, "POST /v1/jobs");
        let adm = set.child(root, SpanKind::Admission, 0, "admitted");
        let sched = set.child(adm, SpanKind::Scheduler, 0, "worker pickup");
        let job = set.child(sched, SpanKind::Job, 0, "job-000001");
        let shard = set.child(job, SpanKind::Shard, 3, "shard 3/16");
        let cell = set.child(shard, SpanKind::Cell, 42, "cell 42");
        (set, root, cell)
    }

    #[test]
    fn ids_are_deterministic_and_distinct() {
        let (a, _, _) = chain();
        let (b, _, _) = chain();
        assert_eq!(a, b);
        let ids: Vec<u64> = a.spans().iter().map(|s| s.id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "all span ids distinct");
        assert_ne!(
            span_id(1, SpanKind::Cell, 0),
            span_id(1, SpanKind::Shard, 0),
            "kind is part of the derivation"
        );
    }

    #[test]
    fn ancestry_walks_to_the_request_root() {
        let (set, root, cell) = chain();
        let up = set.ancestry(cell);
        assert_eq!(up.len(), 6);
        assert_eq!(*up.first().unwrap(), cell);
        assert_eq!(*up.last().unwrap(), root);
        assert_eq!(set.find(root).unwrap().kind, SpanKind::Request);
        assert!(set.find(root).unwrap().parent.is_none());
    }

    #[test]
    fn jsonl_is_insertion_order_invariant_and_round_trips() {
        let (set, root, cell) = chain();
        // Rebuild the same spans in a different insertion order.
        let mut shuffled = SpanSet::new();
        let mut spans: Vec<Span> = set.spans().to_vec();
        spans.reverse();
        for s in spans {
            shuffled.spans.push(s);
        }
        assert_eq!(set.to_jsonl(), shuffled.to_jsonl());
        assert_eq!(set.digest(), shuffled.digest());

        // Every line parses and the cell line links upward to the root.
        let text = set.to_jsonl();
        let parsed: Vec<(u64, Option<u64>)> = text.lines().filter_map(parse_span_line).collect();
        assert_eq!(parsed.len(), set.len());
        let cell_line = parsed.iter().find(|(id, _)| *id == cell).unwrap();
        assert_eq!(cell_line.1, set.find(cell).unwrap().parent);
        let root_line = parsed.iter().find(|(id, _)| *id == root).unwrap();
        assert_eq!(root_line.1, None, "root has no parent field");
    }

    #[test]
    fn hotspots_come_from_the_event_stream_only() {
        let (mut set, _, cell) = chain();
        let before = set.len();
        set.hotspots(cell, &[]);
        assert_eq!(set.len(), before, "no events, no leaf spans");

        let events = vec![
            Event {
                cell: 42,
                seq: 0,
                kind: EventKind::Pass {
                    pass: "merge",
                    enabled: true,
                    visited: 5,
                    transformed: 1,
                    eliminated: 1,
                },
            },
            Event {
                cell: 42,
                seq: 1,
                kind: EventKind::Check {
                    site: 7,
                    path: CheckPathKind::Slow,
                    write: false,
                    loads: 2,
                    region: 64,
                    code: None,
                },
            },
            Event {
                cell: 42,
                seq: 2,
                kind: EventKind::Check {
                    site: 7,
                    path: CheckPathKind::Fast,
                    write: false,
                    loads: 0,
                    region: 8,
                    code: None,
                },
            },
        ];
        set.hotspots(cell, &events);
        assert_eq!(set.len(), before + 2, "one pass + one slow-path site");
        let pass = set
            .spans()
            .iter()
            .find(|s| s.kind == SpanKind::Pass)
            .unwrap();
        assert_eq!(pass.parent, Some(cell));
        assert_eq!(pass.label, "merge");
        let check = set
            .spans()
            .iter()
            .find(|s| s.kind == SpanKind::Check)
            .unwrap();
        assert_eq!(check.index, 7);
        assert!(check.label.contains("1 slow-path"));
        assert_eq!(*set.ancestry(check.id).last().unwrap(), set.spans()[0].id);
    }
}
