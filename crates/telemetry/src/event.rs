//! The event taxonomy: everything the stack can report about itself.
//!
//! Events are **data-plane** records: every field is a deterministic
//! counter, id, or byte count. Wall-clock durations and worker identities
//! are deliberately unrepresentable here (see the crate docs for the
//! thread-invariance rule); they belong to the presentation plane built by
//! [`crate::export::ChromeTrace`].

/// Sentinel site id for promoted pre-header region checks: the planner
/// eliminated the originating sites, so the hoisted check cannot be charged
/// to any one of them.
pub const PRE_CHECK_SITE: u32 = u32::MAX;

/// Sentinel site id for the loop-exit finalisation check of a history cache
/// (Figure 9 line 14), which likewise has no single originating site.
pub const LOOP_FINAL_SITE: u32 = u32::MAX - 1;

/// Human-readable label for a site id, mapping the sentinels to stable
/// names (`"pre-header"` / `"loop-final"`).
pub fn site_label(site: u32) -> String {
    match site {
        PRE_CHECK_SITE => "pre-header".to_string(),
        LOOP_FINAL_SITE => "loop-final".to_string(),
        s => format!("site {s}"),
    }
}

/// Which path a runtime check took, classified from the sanitizer's own
/// counters (the same split Figure 10 of the paper plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckPathKind {
    /// The O(1) fast path sufficed (folded-segment compare / small check).
    Fast,
    /// The slow path ran (prefix + suffix + partial validation).
    Slow,
    /// Admitted by the quasi-bound history cache without a metadata load.
    CacheHit,
    /// A cache miss that refreshed the quasi-bound (implies a real check).
    CacheUpdate,
    /// A dedicated underflow (negative offset) check.
    Underflow,
    /// Pointer-arithmetic bounds computation (LFP-style tools).
    Arith,
    /// The planner eliminated the site; no runtime work was performed.
    Skipped,
}

impl CheckPathKind {
    /// Short stable name used in JSONL/Prometheus output.
    pub fn name(self) -> &'static str {
        match self {
            CheckPathKind::Fast => "fast",
            CheckPathKind::Slow => "slow",
            CheckPathKind::CacheHit => "cache_hit",
            CheckPathKind::CacheUpdate => "cache_update",
            CheckPathKind::Underflow => "underflow",
            CheckPathKind::Arith => "arith",
            CheckPathKind::Skipped => "skipped",
        }
    }

    /// `true` for the paths that load or recompute metadata (everything the
    /// hot-spot table charges as "slow-path share").
    pub fn is_slow_path(self) -> bool {
        matches!(
            self,
            CheckPathKind::Slow | CheckPathKind::CacheUpdate | CheckPathKind::Underflow
        )
    }
}

/// Where the block/line heap placed an allocation — a dependency-free mirror
/// of the runtime's `Placement`, carried on [`EventKind::Alloc`] only when
/// the block/line backend served the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocPlacement {
    /// Block index within the heap (start-relative, not an address).
    pub block: u64,
    /// First line of the slot within its block.
    pub line: u32,
    /// Size-class index, or `u8::MAX` for whole-block spans.
    pub class: u8,
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A runtime check at an instrumented site.
    Check {
        /// Site id within the program.
        site: u32,
        /// Path taken, classified from counter deltas.
        path: CheckPathKind,
        /// `true` for writes, `false` for reads.
        write: bool,
        /// Shadow bytes loaded by this check.
        loads: u32,
        /// Checked region size in bytes.
        region: u64,
        /// Shadow/folded code observed at the access address, when the tool
        /// keeps byte-granular metadata there.
        code: Option<u8>,
    },
    /// A quasi-bound (history cache) refresh: `old_ub` → `new_ub`.
    QuasiBound {
        /// Site id of the cached access.
        site: u32,
        /// Previous exclusive upper bound.
        old_ub: u64,
        /// Refreshed exclusive upper bound.
        new_ub: u64,
        /// Refresh ordinal (the paper bounds it by `⌈log2(n/8)⌉`).
        step: u32,
    },
    /// An allocation was served and its metadata poisoned.
    Alloc {
        /// Requested object size in bytes.
        size: u64,
        /// `true` for stack slots, `false` for heap blocks.
        stack: bool,
        /// Shadow bytes written while poisoning (0 for shadow-less tools).
        poison: u64,
        /// Block/line placement when the block/line backend served the
        /// request; `None` for the free-list backend and stack slots, so
        /// free-list traces serialize byte-identically to before.
        placement: Option<AllocPlacement>,
    },
    /// A free was served (metadata re-poisoned, block quarantined).
    Free {
        /// Shadow bytes written while re-poisoning.
        poison: u64,
    },
    /// A realloc moved an object.
    Realloc {
        /// New object size in bytes.
        new_size: u64,
        /// Shadow bytes written for the new + old blocks.
        poison: u64,
    },
    /// A report was recorded and execution continued (record-and-continue).
    Report {
        /// Site id the report is attributed to, when known.
        site: Option<u32>,
    },
    /// A report was contained under recover mode: the access was skipped and
    /// the tool healed its metadata.
    Contained {
        /// Site id the report is attributed to, when known.
        site: Option<u32>,
        /// `true` when the report was dropped by dedup/rate limits (still
        /// contained, not recorded).
        suppressed: bool,
    },
    /// One analysis-pipeline pass finished (subsumes the per-pass
    /// `PassStats` counters; wall time stays out of the data plane).
    Pass {
        /// Pass name (canonical pipeline spelling).
        pass: &'static str,
        /// Whether the profile enabled the pass.
        enabled: bool,
        /// Sites (or loops) the pass examined.
        visited: u64,
        /// Sites whose plan entry the pass rewrote.
        transformed: u64,
        /// Sites whose runtime check the pass removed entirely.
        eliminated: u64,
    },
    /// End-of-run summary emitted by the interpreter.
    Run {
        /// Executed statement count.
        steps: u64,
        /// Abstract units of real memory work.
        native_work: u64,
        /// Reports raised during the run.
        reports: u64,
    },
}

/// One recorded event: the cell it belongs to, its per-cell sequence
/// number (the deterministic "timestamp"), and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Trace cell (experiment cell index, or 0 for the planner scope).
    pub cell: u32,
    /// Emission ordinal within the cell, starting at 0.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

/// FNV-1a over `bytes` — the digest primitive every trace artefact uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_names_are_stable_and_slowness_is_classified() {
        assert_eq!(CheckPathKind::Fast.name(), "fast");
        assert_eq!(CheckPathKind::CacheUpdate.name(), "cache_update");
        assert!(CheckPathKind::Slow.is_slow_path());
        assert!(CheckPathKind::Underflow.is_slow_path());
        assert!(!CheckPathKind::Fast.is_slow_path());
        assert!(!CheckPathKind::CacheHit.is_slow_path());
        assert!(!CheckPathKind::Skipped.is_slow_path());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
