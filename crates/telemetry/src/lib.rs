#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! End-to-end telemetry for the GiantSan reproduction.
//!
//! The stack can *count* what its sanitizers do ([`giantsan_runtime`
//! counters][counters]) but, before this crate, could not *see* it: which
//! check sites go slow-path, how fast the quasi-bound converges on a given
//! loop, where wall-clock goes inside a batch run. This crate provides the
//! recording abstraction and the export pipeline that answer those
//! questions continuously:
//!
//! * [`Recorder`] — the sink trait the interpreter, the sanitizers, the
//!   analysis pipeline, and the batch engine emit into. Its associated
//!   `ENABLED` const makes the disabled case **zero-cost**: every emission
//!   site is guarded by `if R::ENABLED`, so instantiating a caller at
//!   [`NoopRecorder`] (the default everywhere) compiles the telemetry code
//!   out entirely — determinism digests and BENCH numbers are untouched.
//! * [`TraceRecorder`] — the enabled implementation: an in-memory event
//!   stream plus deterministic sampling [`Histograms`].
//! * [`Event`] / [`EventKind`] — the event taxonomy (checks with path and
//!   folded code, poison/unpoison spans, quasi-bound updates, allocator
//!   ops, recovery containments, analysis passes, run summaries).
//! * [`export`] — three exporters: JSON Lines ([`export::events_jsonl`]),
//!   Chrome `trace_event` format loadable in Perfetto / `chrome://tracing`
//!   ([`export::ChromeTrace`]), and a Prometheus-style text exposition
//!   ([`export::prometheus`]).
//! * [`span`] — causal spans with deterministic parent-linked ids
//!   connecting an HTTP request to the shard, cell, pass, and check
//!   hot-spot work it caused.
//! * [`flight`] — a bounded lock-free per-worker flight recorder whose
//!   ring contents can be dumped as a JSONL + Chrome-trace bundle when a
//!   cell wedges, panics, or a SIGUSR1 arrives.
//!
//! # The thread-invariance rule
//!
//! The **data plane** — every [`Event`] payload and every histogram sample —
//! is counter-driven: sequence numbers, site ids, byte counts, fold degrees.
//! **No wall-clock and no worker identity ever enter an event**, so the
//! sorted event stream and its FNV-1a digest are invariant under thread
//! count and scheduling order; `tests/determinism.rs` pins this. Wall-clock
//! and worker ids exist only in the **presentation plane** (the Chrome trace
//! of batch scheduling), which visualises real machine behaviour and is not
//! digested.
//!
//! [counters]: https://docs.rs/giantsan-runtime
//!
//! # Example
//!
//! ```
//! use giantsan_telemetry::{CheckPathKind, EventKind, Recorder, TraceRecorder};
//!
//! let mut rec = TraceRecorder::for_cell(0);
//! rec.record(EventKind::Check {
//!     site: 1,
//!     path: CheckPathKind::Slow,
//!     write: false,
//!     loads: 2,
//!     region: 1024,
//!     code: Some(giantsan_shadow::codes::folded(7)),
//! });
//! assert_eq!(rec.events().len(), 1);
//! assert_eq!(rec.histograms().region_sizes.count, 1);
//! assert_eq!(rec.histograms().site(1).unwrap().slow, 1);
//! ```

pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod recorder;
pub mod span;

pub use event::{
    fnv1a, site_label, AllocPlacement, CheckPathKind, Event, EventKind, LOOP_FINAL_SITE,
    PRE_CHECK_SITE,
};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{Histograms, Log2Hist, PathMix};
pub use recorder::{NoopRecorder, Recorder, TraceRecorder};
pub use span::{parse_span_line, span_id, Span, SpanKind, SpanSet};
