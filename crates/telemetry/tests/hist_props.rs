//! Property tests for the deterministic histograms: merging is associative,
//! commutative, and shard-count invariant — the algebra the batch engine's
//! thread-invariance guarantee rests on.

use proptest::prelude::*;

use giantsan_telemetry::{CheckPathKind, EventKind, Histograms, Log2Hist};

fn observe_all(values: &[u64]) -> Histograms {
    let mut h = Histograms::default();
    for &v in values {
        h.observe(&event_for(v));
    }
    h
}

/// Derives a mixed event from one sample so every histogram participates.
fn event_for(v: u64) -> EventKind {
    match v % 3 {
        0 => EventKind::Check {
            site: (v % 7) as u32,
            path: match v % 4 {
                0 => CheckPathKind::Fast,
                1 => CheckPathKind::Slow,
                2 => CheckPathKind::CacheHit,
                _ => CheckPathKind::CacheUpdate,
            },
            write: v.is_multiple_of(2),
            loads: (v % 4) as u32,
            region: v,
            code: Some(giantsan_shadow::codes::folded((v % 61) as u32)),
        },
        1 => EventKind::Alloc {
            size: v,
            stack: v.is_multiple_of(2),
            poison: v / 8,
            placement: None,
        },
        _ => EventKind::QuasiBound {
            site: (v % 5) as u32,
            old_ub: v / 2,
            new_ub: v,
            step: (v % 9) as u32,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Element-wise bucket addition never loses or invents samples.
    #[test]
    fn log2_hist_merge_preserves_count_and_sum(a in prop::collection::vec(0u64..u64::MAX, 0..64),
                                               b in prop::collection::vec(0u64..u64::MAX, 0..64)) {
        let mut ha = Log2Hist::default();
        for &v in &a { ha.record(v); }
        let mut hb = Log2Hist::default();
        for &v in &b { hb.record(v); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        let direct: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(direct, merged.count);
    }

    /// merge(a, b) == merge(b, a) for the full histogram set.
    #[test]
    fn merge_is_commutative(a in prop::collection::vec(0u64..1 << 40, 0..48),
                            b in prop::collection::vec(0u64..1 << 40, 0..48)) {
        let ha = observe_all(&a);
        let hb = observe_all(&b);
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// (a + b) + c == a + (b + c).
    #[test]
    fn merge_is_associative(a in prop::collection::vec(0u64..1 << 40, 0..32),
                            b in prop::collection::vec(0u64..1 << 40, 0..32),
                            c in prop::collection::vec(0u64..1 << 40, 0..32)) {
        let (ha, hb, hc) = (observe_all(&a), observe_all(&b), observe_all(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Sharding the sample stream across any number of worker-local
    /// histograms and merging them back yields the single-shard histogram:
    /// thread-shard count never changes the merged result.
    #[test]
    fn shard_count_is_invisible(values in prop::collection::vec(0u64..1 << 40, 0..96),
                                shards in 1usize..9) {
        let reference = observe_all(&values);
        let mut parts: Vec<Histograms> = (0..shards).map(|_| Histograms::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].observe(&event_for(v));
        }
        let mut merged = Histograms::default();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged, reference);
    }
}
