//! Property tests for `TraceRecorder` overflow: at capacity the recorder
//! must drop **deterministically** (the first `max_events` emissions are
//! retained, every later one is dropped — never a sample) and the dropped
//! count must survive every export path, so a truncated trace can never
//! masquerade as a complete one.

use proptest::prelude::*;

use giantsan_telemetry::export::{events_jsonl, prometheus};
use giantsan_telemetry::{EventKind, Recorder, TraceRecorder};

fn event_for(v: u64) -> EventKind {
    match v % 3 {
        0 => EventKind::Alloc {
            size: v,
            stack: false,
            poison: v / 8,
            placement: None,
        },
        1 => EventKind::Free { poison: v % 17 },
        _ => EventKind::Run {
            steps: v,
            native_work: v / 2,
            reports: 0,
        },
    }
}

fn record_all(cap: usize, values: &[u64]) -> TraceRecorder {
    let mut r = TraceRecorder::with_capacity(0, cap);
    for &v in values {
        r.record(event_for(v));
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The retained prefix is exactly the first `cap` emissions, in order,
    /// with contiguous sequence numbers — overflow never reorders, samples,
    /// or replaces.
    #[test]
    fn overflow_keeps_the_deterministic_prefix(
        values in prop::collection::vec(0u64..1 << 20, 0..64),
        cap in 0usize..48,
    ) {
        let r = record_all(cap, &values);
        let kept = values.len().min(cap);
        prop_assert_eq!(r.events().len(), kept);
        prop_assert_eq!(r.dropped(), (values.len() - kept) as u64);
        for (i, e) in r.events().iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64);
            prop_assert_eq!(&e.kind, &event_for(values[i]));
        }
        // Two identical emission streams truncate identically.
        let again = record_all(cap, &values);
        prop_assert_eq!(events_jsonl(r.events()), events_jsonl(again.events()));
    }

    /// `dropped` survives export: `finish()` hands it back untouched and the
    /// Prometheus exposition reports it as `giantsan_trace_events_dropped_total`.
    #[test]
    fn dropped_count_survives_export(
        values in prop::collection::vec(0u64..1 << 20, 0..64),
        cap in 0usize..48,
    ) {
        let r = record_all(cap, &values);
        let expected = (values.len().saturating_sub(cap)) as u64;
        prop_assert_eq!(r.dropped(), expected);

        let exposition = prometheus("test", &[], r.histograms(), r.dropped());
        let line = format!("giantsan_trace_events_dropped_total {expected}");
        prop_assert!(exposition.contains(&line), "missing `{}`", line);

        let (events, _, dropped) = r.finish();
        prop_assert_eq!(dropped, expected);
        prop_assert_eq!(events.len(), values.len().min(cap));
    }

    /// Histograms keep sampling past the cap: the overflow affects only the
    /// buffered stream, never the statistics.
    #[test]
    fn sampling_continues_past_the_cap(
        values in prop::collection::vec(0u64..1 << 20, 0..64),
        cap in 0usize..16,
    ) {
        let capped = record_all(cap, &values);
        let uncapped = record_all(values.len() + 1, &values);
        prop_assert_eq!(capped.histograms(), uncapped.histograms());
    }
}
