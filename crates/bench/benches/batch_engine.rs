//! Batch-engine scaling: the same cell matrix at 1/2/4/8 workers.
//!
//! `batch_matrix/<threads>` times [`giantsan_harness::matrix::run_matrix`]
//! over the default PR 2 cell matrix. On a multi-core host the curve shows
//! the engine's scaling; on a single-core host all points collapse onto the
//! serial time (work stealing adds only the per-cell atomic increment).
//! `batch_overhead/serial-vs-pool-of-1` isolates the pure scheduling
//! overhead: the inline path against a 2-worker pool on the same matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_harness::matrix::{default_matrix, run_matrix};
use giantsan_harness::BatchRunner;
use giantsan_runtime::RuntimeConfig;

fn bench_batch_matrix(c: &mut Criterion) {
    let cells = default_matrix(1, &[0, 1]);
    let cfg = RuntimeConfig::small();
    let mut group = c.benchmark_group("batch_matrix");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &runner,
            |b, runner| b.iter(|| run_matrix(runner, &cells, &cfg).len()),
        );
    }
    group.finish();
}

fn bench_batch_overhead(c: &mut Criterion) {
    // Tiny cells make the scheduling cost visible relative to the work.
    let items: Vec<u64> = (0..4096).collect();
    let job = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x);
    let mut group = c.benchmark_group("batch_overhead");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("inline", |b| {
        let runner = BatchRunner::serial();
        b.iter(|| runner.map(&items, job).len())
    });
    group.bench_function("pool", |b| {
        let runner = BatchRunner::new(2);
        b.iter(|| runner.map(&items, job).len())
    });
    group.finish();
}

criterion_group!(benches, bench_batch_matrix, bench_batch_overhead);
criterion_main!(benches);
