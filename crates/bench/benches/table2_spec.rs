//! Table 2 (wall-clock): the SPEC-like suite under each sanitizer.
//!
//! Each benchmark group is one SPEC-like row; within it, one bench per tool.
//! Criterion's reports give the per-tool ratios whose geometric means
//! correspond to the paper's Table 2 columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use giantsan_bench::{bench_config, plans_for};
use giantsan_harness::{run_planned, Tool};
use giantsan_workloads::spec_suite;

const TOOLS: [Tool; 5] = [
    Tool::Native,
    Tool::GiantSan,
    Tool::Asan,
    Tool::AsanMinusMinus,
    Tool::Lfp,
];

fn bench_spec(c: &mut Criterion) {
    let cfg = bench_config();
    // A representative subset keeps the default bench run short; pass
    // `--bench table2_spec -- <filter>` to focus on one row.
    let subset = [
        "500.perlbench_r",
        "505.mcf_r",
        "508.namd_r",
        "519.lbm_r",
        "520.omnetpp_r",
        "523.xalancbmk_r",
        "541.leela_r",
        "557.xz_r",
    ];
    for w in spec_suite(1) {
        if !subset.contains(&w.id.as_str()) {
            continue;
        }
        let mut group = c.benchmark_group(format!("table2/{}", w.id));
        group.sample_size(10);
        for (tool, plan) in plans_for(&w.program, &TOOLS) {
            group.bench_with_input(
                BenchmarkId::from_parameter(tool.name()),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let out = run_planned(tool, &w.program, plan, &w.inputs, &cfg);
                        assert!(out.result.reports.is_empty());
                        out.result.checksum
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
