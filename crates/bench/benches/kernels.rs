//! Shadow-kernel backend comparison: `scalar` vs `swar` vs `simd` on the
//! four kernel loops, across region sizes.
//!
//! This is the criterion twin of `repro bench`'s `BENCH_PR6.json` sweep.
//! Each backend is obtained explicitly through [`kernel::select`] — the
//! process-wide dispatch is untouched, so the backends can be interleaved in
//! one run. Scan inputs are clean-shadow worst cases (no early exit): the
//! exact loops a full region check or ASan guardian walk pays on clean
//! memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_shadow::codes::GOOD;
use giantsan_shadow::kernel::{self, Backend};

/// Application-region sizes (bytes); the shadow slices are 1/8 of these.
const REGION_SIZES: [u64; 4] = [1024, 4096, 16384, 65536];

fn backends() -> Vec<(&'static str, &'static kernel::Kernels)> {
    Backend::ALL
        .into_iter()
        .map(|b| (kernel::select(b).name(), kernel::select(b)))
        .collect()
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_first_ge");
    for size in REGION_SIZES {
        let shadow = vec![GOOD; (size / 8) as usize];
        group.throughput(Throughput::Bytes(shadow.len() as u64));
        for (name, k) in backends() {
            group.bench_with_input(BenchmarkId::new(name, size), &shadow, |b, shadow| {
                b.iter(|| k.first_ge(shadow, GOOD + 1))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_first_ne");
    for size in REGION_SIZES {
        let shadow = vec![GOOD; (size / 8) as usize];
        group.throughput(Throughput::Bytes(shadow.len() as u64));
        for (name, k) in backends() {
            group.bench_with_input(BenchmarkId::new(name, size), &shadow, |b, shadow| {
                b.iter(|| k.first_ne(shadow, GOOD))
            });
        }
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_fill");
    for size in REGION_SIZES {
        let segs = (size / 8) as usize;
        group.throughput(Throughput::Bytes(segs as u64));
        for (name, k) in backends() {
            let mut dst = vec![0u8; segs];
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| k.fill(&mut dst, GOOD))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_write_folded_run");
    for size in REGION_SIZES {
        let segs = (size / 8) as usize;
        group.throughput(Throughput::Bytes(segs as u64));
        for (name, k) in backends() {
            let mut dst = vec![0u8; segs];
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| k.write_folded_run(&mut dst))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scans, bench_writes);
criterion_main!(benches);
