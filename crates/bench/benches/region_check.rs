//! The headline microbenchmark (§1, §4.2): checking an `S`-byte region costs
//! O(1) with folded segments and Θ(S/8) with ASan's guardian.
//!
//! The paper's motivating example: a 1 KiB region costs ASan 128 shadow
//! loads; GiantSan answers from one folded segment. The bench sweeps region
//! sizes so the criterion report shows ASan's linear growth against
//! GiantSan's flat line.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_bench::{prepped_asan, prepped_giantsan};
use giantsan_runtime::{AccessKind, Sanitizer};

fn bench_region_checks(c: &mut Criterion) {
    let sizes: Vec<u64> = vec![64, 256, 1024, 4096, 16384, 65536];
    let max = *sizes.last().unwrap();

    let (mut gs, gbuf) = prepped_giantsan(max);
    let (mut asan, abuf) = prepped_asan(max);

    let mut group = c.benchmark_group("region_check");
    for &size in &sizes {
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(BenchmarkId::new("GiantSan", size), &size, |b, &size| {
            b.iter(|| {
                gs.check_region(gbuf.base, gbuf.base + size, AccessKind::Read)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("ASan", size), &size, |b, &size| {
            b.iter(|| {
                asan.check_region(abuf.base, abuf.base + size, AccessKind::Read)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_small_access(c: &mut Criterion) {
    // Instruction-level checks (w ≤ 8): both tools are O(1) here; the bench
    // verifies GiantSan's encoding does not slow down the common case.
    let (mut gs, gbuf) = prepped_giantsan(4096);
    let (mut asan, abuf) = prepped_asan(4096);

    let mut group = c.benchmark_group("small_access");
    group.bench_function("GiantSan", |b| {
        b.iter(|| {
            gs.check_access(gbuf.base + 128, 8, AccessKind::Write)
                .unwrap()
        })
    });
    group.bench_function("ASan", |b| {
        b.iter(|| {
            asan.check_access(abuf.base + 128, 8, AccessKind::Write)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_region_checks, bench_small_access);
criterion_main!(benches);
