//! §4.3: history caching. An unbounded loop over a buffer costs GiantSan
//! `⌈log2(n/8)⌉` metadata loads in total (quasi-bound refreshes); every other
//! access is a register compare. ASan loads shadow on every access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_baselines::Asan;
use giantsan_core::GiantSan;
use giantsan_runtime::{AccessKind, CacheSlot, Region, RuntimeConfig, Sanitizer};

fn bench_cached_loop(c: &mut Criterion) {
    let n: u64 = 16384;
    let mut gs = GiantSan::new(RuntimeConfig::default());
    let gbuf = gs.alloc(n, Region::Heap).unwrap();
    let mut asan = Asan::new(RuntimeConfig::default());
    let abuf = asan.alloc(n, Region::Heap).unwrap();

    let mut group = c.benchmark_group("quasi_bound_loop");
    group.throughput(Throughput::Elements(n / 8));
    group.bench_function(BenchmarkId::new("GiantSan_cached", n), |b| {
        b.iter(|| {
            let mut slot = CacheSlot::new();
            for off in (0..n).step_by(8) {
                gs.cached_check(&mut slot, gbuf.base, off as i64, 8, AccessKind::Read)
                    .unwrap();
            }
            gs.loop_final_check(&slot, gbuf.base, AccessKind::Read)
                .unwrap();
            slot.updates
        })
    });
    group.bench_function(BenchmarkId::new("GiantSan_uncached", n), |b| {
        b.iter(|| {
            for off in (0..n).step_by(8) {
                gs.check_anchored(
                    gbuf.base,
                    gbuf.base + off,
                    gbuf.base + off + 8,
                    AccessKind::Read,
                )
                .unwrap();
            }
        })
    });
    group.bench_function(BenchmarkId::new("ASan_per_access", n), |b| {
        b.iter(|| {
            for off in (0..n).step_by(8) {
                asan.check_access(abuf.base + off, 8, AccessKind::Read)
                    .unwrap();
            }
        })
    });
    group.finish();
}

fn bench_reverse_loop(c: &mut Criterion) {
    // The §5.4 weak spot: descending accesses anchored at the buffer end
    // pay a dedicated underflow check each.
    let n: u64 = 16384;
    let mut gs = GiantSan::new(RuntimeConfig::default());
    let gbuf = gs.alloc(n, Region::Heap).unwrap();
    let end = gbuf.base + n;
    let mut asan = Asan::new(RuntimeConfig::default());
    let abuf = asan.alloc(n, Region::Heap).unwrap();
    let aend = abuf.base + n;

    let mut group = c.benchmark_group("reverse_loop");
    group.throughput(Throughput::Elements(n / 8));
    group.bench_function("GiantSan_reverse", |b| {
        b.iter(|| {
            let mut slot = CacheSlot::new();
            for k in 1..=(n / 8) {
                gs.cached_check(&mut slot, end, -(8 * k as i64), 8, AccessKind::Read)
                    .unwrap();
            }
        })
    });
    group.bench_function("ASan_reverse", |b| {
        b.iter(|| {
            for k in 1..=(n / 8) {
                asan.check_access(aend - 8 * k, 8, AccessKind::Read)
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cached_loop, bench_reverse_loop);
criterion_main!(benches);
