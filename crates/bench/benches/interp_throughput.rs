//! End-to-end interpreter throughput per tool and traversal pattern.
//!
//! Two questions, one artefact:
//!
//! * `interp_throughput/<pattern>/<size>` — how fast does each sanitizer
//!   drive the interpreter on forward/random/reverse traversals? This is the
//!   wall-clock realisation of the analytic overhead model, and the group
//!   where the word-wide guardian walk shows up for ASan.
//! * `interp_dispatch/<pattern>` — what does monomorphization buy? The same
//!   GiantSan run through the statically-dispatched [`run_planned`] path
//!   versus a boxed tool through [`giantsan_ir::run_dyn`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_bench::{bench_config, plans_for, traversal_cases};
use giantsan_harness::{run_planned, Tool};
use giantsan_ir::{run_dyn, ExecConfig};
use giantsan_workloads::Pattern;

const TOOLS: [Tool; 5] = [
    Tool::Native,
    Tool::GiantSan,
    Tool::Asan,
    Tool::AsanMinusMinus,
    Tool::Lfp,
];

fn bench_interp_throughput(c: &mut Criterion) {
    let cfg = bench_config();
    for case in traversal_cases(&[4096, 65536]) {
        let mut group = c.benchmark_group(format!("interp_throughput/{}", case.label()));
        group.sample_size(20);
        group.throughput(Throughput::Bytes(case.size));
        for (tool, plan) in plans_for(&case.program, &TOOLS) {
            // LFP's anchor-relative bounds flag every reverse-traversal
            // access (a known baseline artifact); everyone else must be
            // report-free on these in-bounds workloads.
            let must_be_clean = !(tool == Tool::Lfp && case.pattern == Pattern::Reverse);
            group.bench_with_input(
                BenchmarkId::from_parameter(tool.name()),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let out = run_planned(tool, &case.program, plan, &case.inputs, &cfg);
                        assert!(!must_be_clean || out.result.reports.is_empty());
                        out.result.checksum
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let cfg = bench_config();
    let exec = ExecConfig::default();
    for case in traversal_cases(&[16384]) {
        let plan = Tool::GiantSan.plan(&case.program);
        let mut group = c.benchmark_group(format!("interp_dispatch/{}", case.pattern.name()));
        group.sample_size(20);
        group.bench_function("monomorphized", |b| {
            b.iter(|| {
                let out = run_planned(Tool::GiantSan, &case.program, &plan, &case.inputs, &cfg);
                out.result.checksum
            })
        });
        group.bench_function("dyn", |b| {
            b.iter(|| {
                let mut san = Tool::GiantSan.sanitizer(&cfg);
                let out = run_dyn(&case.program, &case.inputs, san.as_mut(), &plan, &exec);
                out.checksum
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_interp_throughput, bench_dispatch);
criterion_main!(benches);
