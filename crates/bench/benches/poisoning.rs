//! §4.1: poisoning with the folding pattern is linear time, like ASan's
//! flat poisoning ("updating the shadow memory with the new encoding does
//! not take extra computation").
//!
//! Benches the run-based folding writer against a flat `memset`-style
//! poisoner and against the segment-by-segment reference implementation
//! across object sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_core::encoding;
use giantsan_core::poison::{poison_object, poison_object_reference, poison_range};
use giantsan_shadow::{AddressSpace, ShadowMemory};

fn bench_poisoning(c: &mut Criterion) {
    let space = AddressSpace::new(0x1_0000, 4 << 20);
    let mut shadow = ShadowMemory::new(&space, encoding::UNALLOCATED);
    let base = space.lo();

    let mut group = c.benchmark_group("poisoning");
    for size in [64u64, 1024, 16384, 262144, 1 << 20] {
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(BenchmarkId::new("folding_runs", size), &size, |b, &size| {
            b.iter(|| poison_object(&mut shadow, base, size))
        });
        group.bench_with_input(
            BenchmarkId::new("folding_reference", size),
            &size,
            |b, &size| b.iter(|| poison_object_reference(&mut shadow, base, size)),
        );
        group.bench_with_input(
            BenchmarkId::new("flat_asan_style", size),
            &size,
            |b, &size| {
                let len = size / 8 * 8;
                b.iter(|| poison_range(&mut shadow, base, len, encoding::FREED))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_poisoning);
criterion_main!(benches);
