//! Figure 11 (wall-clock): traversal patterns for Native / GiantSan / ASan.
//!
//! Groups are `fig11/<pattern>/<size>`; the three series correspond to the
//! figure's three lines. The paper's findings to look for: GiantSan beats
//! ASan on forward and random traversals and loses on reverse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use giantsan_bench::{bench_config, plans_for};
use giantsan_harness::{run_planned, Tool};
use giantsan_workloads::{traversal_program, Pattern};

const TOOLS: [Tool; 3] = [Tool::Native, Tool::GiantSan, Tool::Asan];

fn bench_traversals(c: &mut Criterion) {
    let cfg = bench_config();
    for pattern in Pattern::ALL {
        for size in [4096u64, 16384] {
            let (prog, inputs) = traversal_program(pattern, size, 1);
            let mut group = c.benchmark_group(format!("fig11/{}/{}", pattern.name(), size));
            group.sample_size(20);
            for (tool, plan) in plans_for(&prog, &TOOLS) {
                group.bench_with_input(
                    BenchmarkId::from_parameter(tool.name()),
                    &plan,
                    |b, plan| {
                        b.iter(|| {
                            let out = run_planned(tool, &prog, plan, &inputs, &cfg);
                            assert!(out.result.reports.is_empty());
                            out.result.checksum
                        })
                    },
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_traversals);
criterion_main!(benches);
