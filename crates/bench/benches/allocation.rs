//! Allocator-path overhead: alloc/free churn under each runtime.
//!
//! Sanitizer allocators pay for redzone poisoning and quarantine bookkeeping
//! (ASan, GiantSan) or size-class arithmetic (LFP). This bench isolates that
//! cost — the component that dominates allocation-heavy workloads like
//! omnetpp and leela, where LFP's lean allocator wins rows of Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use giantsan_baselines::{Asan, Lfp};
use giantsan_core::GiantSan;
use giantsan_runtime::{NullSanitizer, Region, RuntimeConfig, Sanitizer};

fn churn(san: &mut dyn Sanitizer, rounds: u64, size: u64) {
    for _ in 0..rounds {
        let a = san.alloc(size, Region::Heap).expect("alloc");
        san.free(a.base).expect("free");
    }
}

fn bench_alloc_free(c: &mut Criterion) {
    const ROUNDS: u64 = 256;
    let mut group = c.benchmark_group("alloc_free_churn");
    for size in [16u64, 256, 4096] {
        group.throughput(Throughput::Elements(ROUNDS));
        group.bench_with_input(BenchmarkId::new("Native", size), &size, |b, &size| {
            let mut san = NullSanitizer::new(RuntimeConfig::default());
            b.iter(|| churn(&mut san, ROUNDS, size))
        });
        group.bench_with_input(BenchmarkId::new("GiantSan", size), &size, |b, &size| {
            let mut san = GiantSan::new(RuntimeConfig::default());
            b.iter(|| churn(&mut san, ROUNDS, size))
        });
        group.bench_with_input(BenchmarkId::new("ASan", size), &size, |b, &size| {
            let mut san = Asan::new(RuntimeConfig::default());
            b.iter(|| churn(&mut san, ROUNDS, size))
        });
        group.bench_with_input(BenchmarkId::new("LFP", size), &size, |b, &size| {
            let mut san = Lfp::new(RuntimeConfig::default());
            b.iter(|| churn(&mut san, ROUNDS, size))
        });
    }
    group.finish();
}

fn bench_stack_frames(c: &mut Criterion) {
    // Frame push/alloca/pop cycles: the stack-protection cost.
    const ROUNDS: u64 = 256;
    let mut group = c.benchmark_group("stack_frames");
    group.throughput(Throughput::Elements(ROUNDS));
    let run = |san: &mut dyn Sanitizer| {
        for _ in 0..ROUNDS {
            san.push_frame();
            let _ = san.alloc(128, Region::Stack).expect("alloca");
            san.pop_frame();
        }
    };
    group.bench_function("Native", |b| {
        let mut san = NullSanitizer::new(RuntimeConfig::default());
        b.iter(|| run(&mut san))
    });
    group.bench_function("GiantSan", |b| {
        let mut san = GiantSan::new(RuntimeConfig::default());
        b.iter(|| run(&mut san))
    });
    group.bench_function("ASan", |b| {
        let mut san = Asan::new(RuntimeConfig::default());
        b.iter(|| run(&mut san))
    });
    group.finish();
}

criterion_group!(benches, bench_alloc_free, bench_stack_frames);
criterion_main!(benches);
