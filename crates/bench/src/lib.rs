#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Shared helpers for the criterion benchmarks.
//!
//! The benches regenerate the paper's timing artefacts with wall-clock
//! measurements (the analytic counterparts live in `giantsan-harness`):
//!
//! * `table2_spec` — Table 2: the SPEC-like suite under every tool;
//! * `fig11_traversal` — Figure 11: forward/random/reverse traversals;
//! * `region_check` — §4.2's headline: O(1) folded region checks vs ASan's
//!   linear guardian across region sizes;
//! * `poisoning` — §4.1: linear-time folding poisoner vs flat poisoning;
//! * `quasi_bound` — §4.3: cached vs uncached loop protection;
//! * `interp_throughput` — end-to-end interpreter throughput per tool and
//!   traversal pattern, plus monomorphized-vs-dynamic dispatch.

use giantsan_baselines::Asan;
use giantsan_core::GiantSan;
use giantsan_harness::Tool;
use giantsan_ir::Program;
use giantsan_runtime::{Allocation, Region, RuntimeConfig, Sanitizer};
use giantsan_workloads::{traversal_program, Pattern};

/// Builds the (tool, plan) pairs for a program, reusing plans across
/// criterion iterations.
pub fn plans_for(program: &Program, tools: &[Tool]) -> Vec<(Tool, giantsan_ir::CheckPlan)> {
    tools.iter().map(|t| (*t, t.plan(program))).collect()
}

/// The runtime configuration used by all wall-clock benches.
pub fn bench_config() -> RuntimeConfig {
    RuntimeConfig::default()
}

/// A GiantSan instance with one live `size`-byte heap object — the standard
/// fixture for region-check microbenches.
pub fn prepped_giantsan(size: u64) -> (GiantSan, Allocation) {
    let mut san = GiantSan::new(bench_config());
    let a = san.alloc(size, Region::Heap).expect("bench alloc");
    (san, a)
}

/// An ASan instance with one live `size`-byte heap object.
pub fn prepped_asan(size: u64) -> (Asan, Allocation) {
    let mut san = Asan::new(bench_config());
    let a = san.alloc(size, Region::Heap).expect("bench alloc");
    (san, a)
}

/// One traversal workload instance: the program, its inputs, and the labels
/// the benches and the JSON artefact share.
#[derive(Debug)]
pub struct TraversalCase {
    /// Access pattern (forward/random/reverse).
    pub pattern: Pattern,
    /// Buffer size in bytes.
    pub size: u64,
    /// The built program.
    pub program: Program,
    /// Program inputs.
    pub inputs: Vec<i64>,
}

impl TraversalCase {
    /// `<pattern>/<size>` — the group label used by criterion and the
    /// harness `bench` subcommand alike.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pattern.name(), self.size)
    }
}

/// The traversal matrix shared by `interp_throughput`, `fig11_traversal`,
/// and the harness `bench` subcommand: every pattern at each given size.
pub fn traversal_cases(sizes: &[u64]) -> Vec<TraversalCase> {
    let mut out = Vec::new();
    for pattern in Pattern::ALL {
        for &size in sizes {
            let (program, inputs) = traversal_program(pattern, size, 1);
            out.push(TraversalCase {
                pattern,
                size,
                program,
                inputs,
            });
        }
    }
    out
}
