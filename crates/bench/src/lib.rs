#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Shared helpers for the criterion benchmarks.
//!
//! The benches regenerate the paper's timing artefacts with wall-clock
//! measurements (the analytic counterparts live in `giantsan-harness`):
//!
//! * `table2_spec` — Table 2: the SPEC-like suite under every tool;
//! * `fig11_traversal` — Figure 11: forward/random/reverse traversals;
//! * `region_check` — §4.2's headline: O(1) folded region checks vs ASan's
//!   linear guardian across region sizes;
//! * `poisoning` — §4.1: linear-time folding poisoner vs flat poisoning;
//! * `quasi_bound` — §4.3: cached vs uncached loop protection.

use giantsan_harness::Tool;
use giantsan_ir::Program;
use giantsan_runtime::RuntimeConfig;

/// Builds the (tool, plan) pairs for a program, reusing plans across
/// criterion iterations.
pub fn plans_for(program: &Program, tools: &[Tool]) -> Vec<(Tool, giantsan_ir::CheckPlan)> {
    tools.iter().map(|t| (*t, t.plan(program))).collect()
}

/// The runtime configuration used by all wall-clock benches.
pub fn bench_config() -> RuntimeConfig {
    RuntimeConfig::default()
}
