//! Tool profiles: declarative pass configurations for each sanitizer.
//!
//! A profile is a name, a [`PassSet`] selecting which pipeline passes run,
//! and one runtime cost-model fact (`linear_region_checks`). The paper's
//! ablation study (Table 2, right columns) is exactly a sweep over pass
//! subsets: GiantSan with the caching passes only, with the elimination
//! passes only, and with both. The baselines are fixed points in the same
//! space: ASan enables nothing, ASan-- enables the elimination and
//! promotion passes over a linear-walk runtime, LFP only anchors.

use crate::pipeline::{PassId, PassSet};

/// Instrumentation capabilities of a tool, as the set of planner passes its
/// compilation pipeline runs.
///
/// # Example
///
/// ```
/// use giantsan_analysis::{PassId, ToolProfile};
/// let g = ToolProfile::giantsan();
/// assert!(g.caching() && g.elimination() && g.anchored() && g.operation_level());
/// assert!(g.enables(PassId::Cache));
/// let a = ToolProfile::asan();
/// assert!(!a.caching() && !a.elimination() && !a.anchored());
/// assert!(a.enables(PassId::ConstProp), "structural passes always run");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolProfile {
    /// Display name of the configuration.
    pub name: &'static str,
    /// The passes this tool's pipeline runs.
    passes: PassSet,
    /// The runtime's region check walks one shadow byte per segment
    /// (ASan's guardian) instead of GiantSan's O(1) fold check. Merging is
    /// then only profitable when it saves more per-access checks than the
    /// merged walk costs.
    pub linear_region_checks: bool,
}

/// The elimination family (§4.4.2): must-alias grouping, static-safety
/// elision, and aliased-check merging.
fn elimination_passes(s: PassSet) -> PassSet {
    s.with(PassId::MustAlias)
        .with(PassId::StaticSafety)
        .with(PassId::Merge)
}

/// The promotion family (§4.4.2): loop-bound facts plus check-in-loop
/// promotion.
fn promotion_passes(s: PassSet) -> PassSet {
    s.with(PassId::LoopBounds).with(PassId::Promote)
}

impl ToolProfile {
    /// An arbitrary named pass configuration (the structural passes are
    /// always included).
    pub fn custom(name: &'static str, passes: PassSet, linear_region_checks: bool) -> Self {
        ToolProfile {
            name,
            passes: passes.with(PassId::ConstProp).with(PassId::Finalize),
            linear_region_checks,
        }
    }

    /// Full GiantSan: elimination + promotion + caching + anchoring.
    pub fn giantsan() -> Self {
        let p = promotion_passes(elimination_passes(PassSet::structural()))
            .with(PassId::Cache)
            .with(PassId::Anchor);
        ToolProfile::custom("GiantSan", p, false)
    }

    /// Ablation: history caching only (no merging/promotion).
    pub fn giantsan_cache_only() -> Self {
        let p = PassSet::structural()
            .with(PassId::Cache)
            .with(PassId::Anchor);
        ToolProfile::custom("GiantSan-CacheOnly", p, false)
    }

    /// Ablation: check elimination/promotion only (no caching).
    pub fn giantsan_elimination_only() -> Self {
        let p = promotion_passes(elimination_passes(PassSet::structural())).with(PassId::Anchor);
        ToolProfile::custom("GiantSan-EliminationOnly", p, false)
    }

    /// Stock ASan: instruction-level checks everywhere.
    pub fn asan() -> Self {
        ToolProfile::custom("ASan", PassSet::structural(), true)
    }

    /// ASan--: static check elimination over the ASan runtime.
    pub fn asan_minus_minus() -> Self {
        let p = promotion_passes(elimination_passes(PassSet::structural()));
        ToolProfile::custom("ASan--", p, true)
    }

    /// LFP: pointer-derived bounds checked at every access (anchored by
    /// construction — the bound comes from the source pointer), no static
    /// optimisation.
    pub fn lfp() -> Self {
        ToolProfile::custom("LFP", PassSet::structural().with(PassId::Anchor), false)
    }

    /// Native execution: no checks at all (the plan is never consulted, but
    /// analysing under this profile yields all-direct sites).
    pub fn native() -> Self {
        ToolProfile::custom("Native", PassSet::structural(), false)
    }

    /// The passes this profile's pipeline runs.
    pub fn passes(&self) -> PassSet {
        self.passes
    }

    /// Does this profile run `pass`? Structural passes always do.
    pub fn enables(&self, pass: PassId) -> bool {
        pass.is_structural() || self.passes.contains(pass)
    }

    /// This profile minus one pass (structural passes cannot be dropped).
    /// The name is kept — pair with [`ToolProfile::named`] in ablations.
    #[must_use]
    pub fn without_pass(mut self, pass: PassId) -> Self {
        self.passes = self.passes.without(pass);
        self
    }

    /// The same configuration under a different display name.
    #[must_use]
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// May merge and hoist checks into region checks covering whole
    /// operations (requires a runtime that can check regions; GiantSan does
    /// it in O(1), ASan-- pays a linear walk).
    pub fn operation_level(&self) -> bool {
        self.enables(PassId::Promote)
    }

    /// May use the quasi-bound history cache (§4.3).
    pub fn caching(&self) -> bool {
        self.enables(PassId::Cache)
    }

    /// Checks are anchored at the object base pointer (§4.4.1).
    pub fn anchored(&self) -> bool {
        self.enables(PassId::Anchor)
    }

    /// May eliminate must-aliased / dominated checks (§4.4.2).
    pub fn elimination(&self) -> bool {
        self.enables(PassId::Merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_profiles_partition_capabilities() {
        let cache = ToolProfile::giantsan_cache_only();
        let elim = ToolProfile::giantsan_elimination_only();
        assert!(cache.caching() && !cache.elimination());
        assert!(!elim.caching() && elim.elimination());
        // Full GiantSan is the union of the two ablation pass sets.
        let g = ToolProfile::giantsan();
        assert!(g.caching() == cache.caching() && g.elimination() == elim.elimination());
        for p in cache.passes().iter() {
            assert!(g.enables(p), "{:?} missing from full GiantSan", p);
        }
        for p in elim.passes().iter() {
            assert!(g.enables(p), "{:?} missing from full GiantSan", p);
        }
    }

    #[test]
    fn baseline_profiles() {
        assert!(ToolProfile::asan_minus_minus().elimination());
        assert!(!ToolProfile::asan_minus_minus().caching());
        assert!(ToolProfile::lfp().anchored());
        assert!(!ToolProfile::lfp().elimination());
        assert_eq!(ToolProfile::native().name, "Native");
        assert!(ToolProfile::asan().linear_region_checks);
        assert!(!ToolProfile::giantsan().linear_region_checks);
    }

    #[test]
    fn capability_queries_match_pass_sets() {
        let g = ToolProfile::giantsan();
        assert_eq!(g.passes(), PassSet::full());
        let no_cache = g.clone().without_pass(PassId::Cache);
        assert!(!no_cache.caching() && no_cache.elimination());
        assert_eq!(no_cache.name, "GiantSan");
        assert_eq!(no_cache.named("GiantSan-NoCache").name, "GiantSan-NoCache");
    }

    #[test]
    fn custom_profiles_always_run_structural_passes() {
        let p = ToolProfile::custom("bare", PassSet::empty(), false);
        assert!(p.enables(PassId::ConstProp));
        assert!(p.enables(PassId::Finalize));
        assert!(!p.enables(PassId::Cache));
    }
}
