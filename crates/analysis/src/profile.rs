//! Tool capability profiles: which optimisations each sanitizer's
//! instrumentation may use.
//!
//! The paper's ablation study (Table 2, right columns) is exactly a sweep
//! over these flags: GiantSan with caching only, with elimination only, and
//! with both. The baselines are fixed points in the same space: ASan has no
//! optimisations, ASan-- has elimination, LFP checks every access against
//! pointer-derived bounds.

/// Instrumentation capabilities of a tool.
///
/// # Example
///
/// ```
/// use giantsan_analysis::ToolProfile;
/// let g = ToolProfile::giantsan();
/// assert!(g.caching && g.elimination && g.anchored && g.operation_level);
/// let a = ToolProfile::asan();
/// assert!(!a.caching && !a.elimination && !a.anchored);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolProfile {
    /// Display name of the configuration.
    pub name: &'static str,
    /// May merge and hoist checks into region checks covering whole
    /// operations (requires a runtime that can check regions; GiantSan does
    /// it in O(1), ASan-- pays a linear walk).
    pub operation_level: bool,
    /// May use the quasi-bound history cache (§4.3).
    pub caching: bool,
    /// Checks are anchored at the object base pointer (§4.4.1).
    pub anchored: bool,
    /// May eliminate must-aliased / dominated checks (§4.4.2).
    pub elimination: bool,
    /// The runtime's region check walks one shadow byte per segment
    /// (ASan's guardian) instead of GiantSan's O(1) fold check. Merging is
    /// then only profitable when it saves more per-access checks than the
    /// merged walk costs.
    pub linear_region_checks: bool,
}

impl ToolProfile {
    /// Full GiantSan: elimination + promotion + caching + anchoring.
    pub fn giantsan() -> Self {
        ToolProfile {
            name: "GiantSan",
            operation_level: true,
            caching: true,
            anchored: true,
            elimination: true,
            linear_region_checks: false,
        }
    }

    /// Ablation: history caching only (no merging/promotion).
    pub fn giantsan_cache_only() -> Self {
        ToolProfile {
            name: "GiantSan-CacheOnly",
            operation_level: false,
            caching: true,
            anchored: true,
            elimination: false,
            linear_region_checks: false,
        }
    }

    /// Ablation: check elimination/promotion only (no caching).
    pub fn giantsan_elimination_only() -> Self {
        ToolProfile {
            name: "GiantSan-EliminationOnly",
            operation_level: true,
            caching: false,
            anchored: true,
            elimination: true,
            linear_region_checks: false,
        }
    }

    /// Stock ASan: instruction-level checks everywhere.
    pub fn asan() -> Self {
        ToolProfile {
            name: "ASan",
            operation_level: false,
            caching: false,
            anchored: false,
            elimination: false,
            linear_region_checks: true,
        }
    }

    /// ASan--: static check elimination over the ASan runtime.
    pub fn asan_minus_minus() -> Self {
        ToolProfile {
            name: "ASan--",
            operation_level: true,
            caching: false,
            anchored: false,
            elimination: true,
            linear_region_checks: true,
        }
    }

    /// LFP: pointer-derived bounds checked at every access (anchored by
    /// construction — the bound comes from the source pointer), no static
    /// optimisation.
    pub fn lfp() -> Self {
        ToolProfile {
            name: "LFP",
            operation_level: false,
            caching: false,
            anchored: true,
            elimination: false,
            linear_region_checks: false,
        }
    }

    /// Native execution: no checks at all.
    pub fn native() -> Self {
        ToolProfile {
            name: "Native",
            operation_level: false,
            caching: false,
            anchored: false,
            elimination: false,
            linear_region_checks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_profiles_partition_capabilities() {
        let cache = ToolProfile::giantsan_cache_only();
        let elim = ToolProfile::giantsan_elimination_only();
        assert!(cache.caching && !cache.elimination);
        assert!(!elim.caching && elim.elimination);
        // Full GiantSan is the union.
        let g = ToolProfile::giantsan();
        assert!(g.caching == cache.caching && g.elimination == elim.elimination);
    }

    #[test]
    fn baseline_profiles() {
        assert!(ToolProfile::asan_minus_minus().elimination);
        assert!(!ToolProfile::asan_minus_minus().caching);
        assert!(ToolProfile::lfp().anchored);
        assert!(!ToolProfile::lfp().elimination);
        assert_eq!(ToolProfile::native().name, "Native");
    }
}
