//! `const-prop` (structural): constant propagation and context building.
//!
//! One walk over the program gathers everything position-dependent so the
//! later passes can be position-independent: the SSA definition environment
//! (for SCEV decomposition and invariance queries), the loop table, the
//! allocation-barrier map, the pointer-redefinition relation, one
//! [`SiteRec`] per access site and its constant-folded offset. Memory
//! intrinsics are settled here — the runtime guardian checks them as one
//! region for every tool (paper Table 1, "predefined semantics").

use giantsan_ir::{PtrId, SiteAction, SiteId, Stmt};
use giantsan_runtime::AccessKind;

use crate::affine::{self, VarDef};
use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, LoopCtx, PassId, PassOutcome, SiteRec};
use crate::planner::SiteFate;

pub(crate) struct ConstPropPass;

impl Pass for ConstPropPass {
    fn id(&self) -> PassId {
        PassId::ConstProp
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let program = cx.program;
        mark_barriers(cx, &program.stmts, &mut Vec::new());
        let mut out = PassOutcome::default();
        walk(cx, &program.stmts, &mut Vec::new(), &mut out);
        out
    }
}

/// Marks every loop that contains an allocation/free/realloc anywhere in its
/// body: promotion across such a loop would test freed or recycled memory.
fn mark_barriers(cx: &mut AnalysisCtx<'_>, stmts: &[Stmt], stack: &mut Vec<giantsan_ir::LoopId>) {
    for s in stmts {
        match s {
            Stmt::Alloc { .. } | Stmt::Free { .. } | Stmt::Realloc { .. } => {
                for l in stack.iter() {
                    cx.barriers.insert(*l, true);
                }
            }
            Stmt::For { id, body, .. } => {
                stack.push(*id);
                cx.barriers.entry(*id).or_insert(false);
                mark_barriers(cx, body, stack);
                stack.pop();
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                mark_barriers(cx, then_body, stack);
                mark_barriers(cx, else_body, stack);
            }
            Stmt::Frame { body } => mark_barriers(cx, body, stack),
            _ => {}
        }
    }
}

fn loop_ids(stack: &[LoopCtx]) -> Vec<giantsan_ir::LoopId> {
    stack.iter().map(|l| l.id).collect()
}

/// Records that `ptr` is (re)defined inside every loop currently on the
/// stack: neither promotion nor caching is sound for such accesses.
fn note_ptr_def(cx: &mut AnalysisCtx<'_>, stack: &[LoopCtx], ptr: PtrId) {
    for l in stack {
        cx.ptr_defs_in_loop.insert((ptr, l.id));
    }
}

struct Access<'a> {
    site: SiteId,
    ptr: PtrId,
    offset: &'a giantsan_ir::Expr,
    width: u8,
    kind: AccessKind,
}

fn record_access(
    cx: &mut AnalysisCtx<'_>,
    stack: &[LoopCtx],
    out: &mut PassOutcome,
    a: Access<'_>,
) {
    let Access {
        site,
        ptr,
        offset,
        width,
        kind,
    } = a;
    let idx = site.0 as usize;
    out.visited += 1;
    let c = affine::const_eval(offset);
    if c.is_some() {
        out.transformed += 1;
    }
    cx.const_offsets[idx] = c;
    cx.sites[idx] = Some(SiteRec {
        ptr,
        offset: offset.clone(),
        width,
        kind,
        loops: stack.to_vec(),
    });
}

fn walk(cx: &mut AnalysisCtx<'_>, stmts: &[Stmt], stack: &mut Vec<LoopCtx>, out: &mut PassOutcome) {
    for s in stmts {
        match s {
            Stmt::Let { var, expr } => {
                cx.env.insert(
                    *var,
                    VarDef::Let {
                        expr: expr.clone(),
                        loops: loop_ids(stack),
                    },
                );
            }
            Stmt::Alloc { ptr, .. } => note_ptr_def(cx, stack, *ptr),
            Stmt::Free { .. } => {}
            Stmt::Realloc { ptr, .. } => note_ptr_def(cx, stack, *ptr),
            Stmt::PtrCopy { dst, .. } => note_ptr_def(cx, stack, *dst),
            Stmt::Load {
                site,
                ptr,
                offset,
                width,
                dst,
            } => {
                if let Some(d) = dst {
                    cx.env.insert(
                        *d,
                        VarDef::Load {
                            loops: loop_ids(stack),
                        },
                    );
                }
                record_access(
                    cx,
                    stack,
                    out,
                    Access {
                        site: *site,
                        ptr: *ptr,
                        offset,
                        width: *width,
                        kind: AccessKind::Read,
                    },
                );
            }
            Stmt::Store {
                site,
                ptr,
                offset,
                width,
                ..
            } => {
                record_access(
                    cx,
                    stack,
                    out,
                    Access {
                        site: *site,
                        ptr: *ptr,
                        offset,
                        width: *width,
                        kind: AccessKind::Write,
                    },
                );
            }
            Stmt::MemSet { site, .. } | Stmt::MemCpy { site, .. } | Stmt::StrCpy { site, .. } => {
                out.visited += 1;
                cx.decide_site(
                    site.0 as usize,
                    SiteAction::Direct,
                    SiteFate::MemIntrinsic,
                    PassId::ConstProp,
                    "predefined semantics: the runtime guardian checks the whole region".into(),
                );
            }
            Stmt::For {
                id,
                var,
                lo,
                hi,
                opaque_bound,
                body,
                ..
            } => {
                let ctx = LoopCtx {
                    id: *id,
                    var: *var,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    opaque: *opaque_bound,
                };
                stack.push(ctx.clone());
                cx.loops.insert(*id, ctx);
                cx.env.insert(
                    *var,
                    VarDef::Induction {
                        of: *id,
                        loops: loop_ids(stack),
                    },
                );
                walk(cx, body, stack, out);
                stack.pop();
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk(cx, then_body, stack, out);
                walk(cx, else_body, stack, out);
            }
            Stmt::Frame { body } => walk(cx, body, stack, out),
        }
    }
}
