//! `finalize` (structural): plain instruction-level checks for whatever no
//! earlier pass claimed.
//!
//! For a profile with every optimisation disabled (ASan, Native) this is
//! where every access site lands; for anchored profiles the `anchor` pass
//! has already taken the leftovers, and this pass decides nothing. Site ids
//! that never appeared in the program (no record) keep their initialized
//! `Direct` action with no provenance.

use giantsan_ir::SiteAction;

use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct FinalizePass;

impl Pass for FinalizePass {
    fn id(&self) -> PassId {
        PassId::Finalize
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        for idx in 0..cx.sites.len() {
            if cx.decided[idx] || cx.sites[idx].is_none() {
                continue;
            }
            out.visited += 1;
            out.transformed += 1;
            cx.decide_site(
                idx,
                SiteAction::Direct,
                SiteFate::Direct,
                PassId::Finalize,
                "instruction-level check at every execution".into(),
            );
        }
        out
    }
}
