//! `promote`: check-in-loop promotion (paper §4.4.2, Figure 8c).
//!
//! An access whose offset decomposes as `coeff·i + base` over the innermost
//! loop's induction variable is replaced by one region pre-check in a loop
//! pre-header covering the whole iteration range. Loop-invariant accesses
//! (`coeff == 0`) hoist under the elimination family (the ASan-- style
//! optimisation, keyed on the `merge` pass being enabled); true affine
//! accesses additionally need a transparent, loop-invariant trip count
//! (`loop-bounds` facts).
//!
//! The hull then climbs outward through enclosing loops it is still affine
//! in (`hoist_hull`), stopping at allocation barriers, pointer
//! redefinitions, and loops without a provably positive trip count.
//! Promotion is refused outright when the innermost loop has a barrier or
//! redefines the pointer — the pre-check would test stale memory.

use giantsan_ir::{Expr, LoopId, PreCheck, PtrId, SiteAction};

use crate::affine;
use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, LoopCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct PromotePass;

impl Pass for PromotePass {
    fn id(&self) -> PassId {
        PassId::Promote
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        for idx in 0..cx.sites.len() {
            if cx.decided[idx] {
                continue;
            }
            let Some(rec) = cx.sites[idx].clone() else {
                continue;
            };
            let Some(inner) = rec.loops.last().cloned() else {
                continue;
            };
            out.visited += 1;
            let has_barrier = cx.barriers.get(&inner.id).copied().unwrap_or(false);
            let ptr_varies = cx.ptr_defs_in_loop.contains(&(rec.ptr, inner.id));
            if has_barrier || ptr_varies {
                continue;
            }
            let Some(aff) = affine::decompose(&rec.offset, inner.id, inner.var, &cx.env) else {
                continue;
            };
            let promotable = if aff.coeff == 0 {
                // Loop-invariant check: hoisting is part of the elimination
                // family.
                cx.enabled.contains(PassId::Merge)
            } else {
                // Affine: needs a knowable, invariant trip count.
                !inner.opaque && cx.bounds_invariant.get(&inner.id).copied().unwrap_or(false)
            };
            if !promotable {
                continue;
            }
            let (lo, hi) = promoted_range(&aff, &inner, rec.width);
            let (target, lo, hi) = hoist_hull(cx, &rec.loops, lo, hi, rec.ptr);
            cx.plans
                .entry(target)
                .or_default()
                .pre_checks
                .push(PreCheck {
                    ptr: rec.ptr,
                    lo,
                    hi,
                    kind: rec.kind,
                });
            let reason = if aff.coeff == 0 {
                format!("loop-invariant range; CI hoisted to loop {target}'s pre-header")
            } else {
                format!(
                    "affine stride {} over loop {}; CI hoisted to loop {target}'s pre-header",
                    aff.coeff, inner.id
                )
            };
            out.transformed += 1;
            out.eliminated += 1;
            cx.decide_site(
                idx,
                SiteAction::Skip,
                SiteFate::Promoted,
                PassId::Promote,
                reason,
            );
        }
        out
    }
}

/// Builds the `[lo, hi)` offset expressions of a promoted check:
/// `CI(x + min, x + max + width)` over the loop's iteration range. Lower
/// bounds stay raw; the `anchor` pass folds in the §4.4.1 anchor for
/// anchored tools (Figure 8c's `CI(x, x+4N)`).
fn promoted_range(aff: &affine::Affine, l: &LoopCtx, width: u8) -> (Expr, Expr) {
    let a = aff.coeff;
    let b = || aff.base.clone();
    let lo_i = || l.lo.clone();
    let hi_i = || l.hi.clone() - 1;
    if a >= 0 {
        (
            affine::fold(lo_i() * a + b()),
            affine::fold(hi_i() * a + b() + width as i64),
        )
    } else {
        (
            affine::fold(hi_i() * a + b()),
            affine::fold(lo_i() * a + b() + width as i64),
        )
    }
}

/// Hoists a promoted hull `[lo, hi)` outward through the loop stack,
/// widening it over each induction variable it is affine in. Returns the
/// loop to attach the pre-check to and the widened hull.
fn hoist_hull(
    cx: &AnalysisCtx<'_>,
    stack: &[LoopCtx],
    mut lo: Expr,
    mut hi: Expr,
    ptr: PtrId,
) -> (LoopId, Expr, Expr) {
    let mut level = stack.len() - 1;
    while level > 0 {
        let current = &stack[level];
        let parent = &stack[level - 1];
        // The loop being left must provably execute at least once, so the
        // widened endpoints correspond to accesses that really run.
        let trip_positive = cx.trip_positive.get(&current.id).copied().unwrap_or(false);
        if !trip_positive
            || cx.barriers.get(&parent.id).copied().unwrap_or(false)
            || cx.ptr_defs_in_loop.contains(&(ptr, parent.id))
        {
            break;
        }
        // Widen the hull over the *parent's* induction variable: the bounds
        // may still reference it after leaving `current`.
        let (Some(alo), Some(ahi)) = (
            affine::decompose(&lo, parent.id, parent.var, &cx.env),
            affine::decompose(&hi, parent.id, parent.var, &cx.env),
        ) else {
            break;
        };
        let plo = || parent.lo.clone();
        let phi = || parent.hi.clone() - 1;
        lo = affine::fold(if alo.coeff >= 0 {
            plo() * alo.coeff + alo.base
        } else {
            phi() * alo.coeff + alo.base
        });
        hi = affine::fold(if ahi.coeff >= 0 {
            phi() * ahi.coeff + ahi.base
        } else {
            plo() * ahi.coeff + ahi.base
        });
        level -= 1;
    }
    (stack[level].id, lo, hi)
}
