//! `loop-bounds`: SCEV-style per-loop facts for the promotion pass.
//!
//! Two facts per loop, both pure functions of the loop's bound expressions
//! and the (complete, SSA) definition environment:
//!
//! - **trip-positive**: both bounds are constants with `hi > lo`, so the
//!   loop provably executes. Multi-level hoisting may only lift a pre-check
//!   past a loop that provably runs — lifting past a possibly-empty loop
//!   would fire checks for accesses that never execute.
//! - **bounds-invariant**: no variable in the bound expressions is defined
//!   inside the loop itself. The bounds are evaluated at entry, but a
//!   promoted pre-check re-reads them in the pre-header, so anything
//!   defined inside disqualifies promotion.

use giantsan_ir::{Expr, LoopId};

use crate::affine::{self, DefEnv, VarDef};
use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, LoopCtx, PassId, PassOutcome};

pub(crate) struct LoopBoundsPass;

impl Pass for LoopBoundsPass {
    fn id(&self) -> PassId {
        PassId::LoopBounds
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        let ids: Vec<LoopId> = cx.loops.keys().copied().collect();
        for id in ids {
            let lc = cx.loops[&id].clone();
            out.visited += 1;
            let trip = matches!(
                (affine::const_eval(&lc.lo), affine::const_eval(&lc.hi)),
                (Some(l), Some(h)) if h > l
            );
            let invariant = bounds_invariant(&cx.env, &lc);
            if trip || invariant {
                out.transformed += 1;
            }
            cx.trip_positive.insert(id, trip);
            cx.bounds_invariant.insert(id, invariant);
        }
        out
    }
}

/// Are the loop's bound expressions invariant inside the loop itself?
fn bounds_invariant(env: &DefEnv, l: &LoopCtx) -> bool {
    let check = |e: &Expr| {
        e.vars().iter().all(|v| match env.get(v) {
            None => true,
            Some(d) => match d {
                VarDef::Induction { loops, .. }
                | VarDef::Let { loops, .. }
                | VarDef::Load { loops } => !loops.contains(&l.id),
            },
        })
    };
    check(&l.lo) && check(&l.hi)
}
