//! `must-alias`: grouping of constant-offset accesses per pointer.
//!
//! A second structural walk replays the program's block structure and
//! collects, per block, runs of constant-offset accesses to the same
//! pointer with no intervening kill. A kill is anything that could change
//! what the pointer maps to or what lies around it: an (re)allocation or
//! free, a pointer copy, a non-constant-offset access on the same pointer
//! (merging across it could move a check past a redzone-crossing access),
//! or any control-flow boundary (loop, branch, frame, end of block).
//!
//! The same walk tracks *freshness*: pointers holding an allocation of
//! statically known size, block-local and killed by the same events. The
//! `static-safety` pass consumes the per-site freshness record; the `merge`
//! pass consumes the groups.

use std::collections::HashMap;

use giantsan_ir::{PtrId, Stmt};

use crate::affine;
use crate::passes::Pass;
use crate::pipeline::{AliasGroup, AnalysisCtx, PassId, PassOutcome};

pub(crate) struct MustAliasPass;

impl Pass for MustAliasPass {
    fn id(&self) -> PassId {
        PassId::MustAlias
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let program = cx.program;
        let mut out = PassOutcome::default();
        walk(cx, &program.stmts, &mut out);
        // Sites that made it into a recorded (≥ 2 member) group.
        out.transformed = cx.groups.iter().map(|g| g.members.len() as u64).sum();
        out
    }
}

fn flush(cx: &mut AnalysisCtx<'_>, groups: &mut HashMap<PtrId, Vec<usize>>, ptr: PtrId) {
    if let Some(run) = groups.remove(&ptr) {
        if run.len() >= 2 {
            cx.groups.push(AliasGroup { ptr, members: run });
        }
    }
}

fn flush_all(cx: &mut AnalysisCtx<'_>, groups: &mut HashMap<PtrId, Vec<usize>>) {
    let ptrs: Vec<PtrId> = groups.keys().copied().collect();
    for p in ptrs {
        flush(cx, groups, p);
    }
}

fn walk(cx: &mut AnalysisCtx<'_>, stmts: &[Stmt], out: &mut PassOutcome) {
    let mut groups: HashMap<PtrId, Vec<usize>> = HashMap::new();
    let mut fresh: HashMap<PtrId, i64> = HashMap::new();
    for s in stmts {
        match s {
            Stmt::Let { .. } => {}
            Stmt::Alloc { ptr, size, .. } => {
                flush(cx, &mut groups, *ptr);
                match affine::const_eval(size) {
                    Some(c) if c > 0 => fresh.insert(*ptr, c),
                    _ => fresh.remove(ptr),
                };
            }
            Stmt::Free { ptr, .. } => {
                flush_all(cx, &mut groups);
                fresh.remove(ptr);
            }
            Stmt::Realloc { ptr, new_size } => {
                flush_all(cx, &mut groups);
                match affine::const_eval(new_size) {
                    Some(c) if c > 0 => fresh.insert(*ptr, c),
                    _ => fresh.remove(ptr),
                };
            }
            Stmt::PtrCopy { dst, .. } => {
                flush(cx, &mut groups, *dst);
                fresh.remove(dst);
            }
            Stmt::Load { site, ptr, .. } | Stmt::Store { site, ptr, .. } => {
                let idx = site.0 as usize;
                out.visited += 1;
                cx.fresh_at_site[idx] = fresh.get(ptr).copied();
                if cx.const_offsets[idx].is_some() {
                    groups.entry(*ptr).or_default().push(idx);
                } else {
                    flush(cx, &mut groups, *ptr);
                }
            }
            Stmt::MemSet { .. } | Stmt::MemCpy { .. } | Stmt::StrCpy { .. } => {
                // Intrinsics are guardian-checked and break no group.
            }
            Stmt::For { body, .. } => {
                flush_all(cx, &mut groups);
                walk(cx, body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                flush_all(cx, &mut groups);
                walk(cx, then_body, out);
                walk(cx, else_body, out);
            }
            Stmt::Frame { body } => {
                flush_all(cx, &mut groups);
                walk(cx, body, out);
            }
        }
    }
    flush_all(cx, &mut groups);
}
