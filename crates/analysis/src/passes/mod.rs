//! The concrete pipeline passes (one module per stage).
//!
//! Each pass implements [`Pass`]: a pure function from the shared
//! [`AnalysisCtx`](crate::pipeline::AnalysisCtx) to an updated context plus
//! its own [`PassOutcome`](crate::pipeline::PassOutcome) counters. The
//! canonical order — and why it is what it is — lives in
//! [`crate::pipeline`]; the registry below returns the passes in exactly
//! that order.

use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};

mod alias;
mod anchor;
mod cache;
mod finalize;
mod loops;
mod merge;
mod promote;
mod scan;
mod static_safety;

/// One pipeline stage.
pub(crate) trait Pass: Sync {
    /// The stage's identity (order, name, structural flag).
    fn id(&self) -> PassId;
    /// Runs the stage over the shared context.
    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome;
}

/// Every pass, in canonical pipeline order (matches [`PassId::PIPELINE`]).
pub(crate) fn registry() -> [&'static dyn Pass; 9] {
    [
        &scan::ConstPropPass,
        &alias::MustAliasPass,
        &loops::LoopBoundsPass,
        &static_safety::StaticSafetyPass,
        &merge::MergePass,
        &promote::PromotePass,
        &cache::CachePass,
        &anchor::AnchorPass,
        &finalize::FinalizePass,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_pipeline_order() {
        let ids: Vec<PassId> = registry().iter().map(|p| p.id()).collect();
        assert_eq!(ids, PassId::PIPELINE.to_vec());
    }
}
