//! `merge`: aliased-check elimination (paper §4.4.2).
//!
//! Each must-alias group still alive after `static-safety` collapses into
//! one region check `[min offset, max offset+width)` carried by the group's
//! lowest-numbered site (the *leader*); the other members are eliminated.
//!
//! For a tool whose runtime walks one shadow byte per covered segment
//! (ASan's linear guardian rather than GiantSan's O(1) fold check), the
//! merge is refused when the hull walk would cost at least as much as the
//! per-access checks it replaces.
//!
//! Lower bounds are stored raw here; the `anchor` pass extends non-negative
//! hulls down to the object base for anchored profiles.

use giantsan_ir::{Expr, SiteAction};

use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct MergePass;

impl Pass for MergePass {
    fn id(&self) -> PassId {
        PassId::Merge
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        let groups = cx.groups.clone();
        for g in &groups {
            let alive: Vec<usize> = g
                .members
                .iter()
                .copied()
                .filter(|&i| !cx.decided[i])
                .collect();
            out.visited += alive.len() as u64;
            if alive.len() < 2 {
                continue;
            }
            let offset = |i: usize| cx.const_offsets[i].expect("grouped sites have const offsets");
            let width = |i: usize| cx.sites[i].as_ref().expect("grouped site").width as i64;
            let lo = alive.iter().map(|&i| offset(i)).min().expect("nonempty");
            let hi = alive
                .iter()
                .map(|&i| offset(i) + width(i))
                .max()
                .expect("nonempty");
            // With a linear guardian (ASan--), a merged region check walks
            // one shadow byte per covered segment: only merge when that walk
            // is cheaper than the per-access checks it replaces.
            if cx.profile.linear_region_checks {
                let hull_segments = ((hi - lo) as u64).div_ceil(8);
                if hull_segments >= alive.len() as u64 {
                    continue;
                }
            }
            let leader = *alive.iter().min().expect("nonempty group");
            for &i in &alive {
                if i == leader {
                    out.transformed += 1;
                    cx.decide_site(
                        i,
                        SiteAction::Region {
                            lo: Expr::Const(lo),
                            hi: Expr::Const(hi),
                        },
                        SiteFate::MergeLeader,
                        PassId::Merge,
                        format!(
                            "leads a {}-site merged hull [{lo}, {hi}) on {}",
                            alive.len(),
                            g.ptr
                        ),
                    );
                } else {
                    out.transformed += 1;
                    out.eliminated += 1;
                    cx.decide_site(
                        i,
                        SiteAction::Skip,
                        SiteFate::MergedAway,
                        PassId::Merge,
                        format!("covered by merge leader s{leader}"),
                    );
                }
            }
        }
        out
    }
}
