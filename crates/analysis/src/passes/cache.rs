//! `cache`: quasi-bound history-cache assignment (paper §4.3, Figure 9).
//!
//! Every in-loop access that neither merged nor promoted gets routed
//! through a per-(loop, pointer) history cache: the first access checks and
//! remembers a quasi-bound, later accesses below it are admitted without
//! touching shadow memory. Slots are allocated in site order, one per
//! (loop, pointer) pair; the loop's plan re-checks the cached range at loop
//! exit (Figure 9 line 14) so admissions after a mid-loop `free` are still
//! reported.
//!
//! A pointer redefined inside the loop gets no slot — its quasi-bound would
//! describe a previous iteration's object. Allocation barriers do *not*
//! block caching (unlike promotion): the miss path re-validates against
//! live metadata, and the loop-exit final check covers the admitted range.

use giantsan_ir::{CacheId, SiteAction};

use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct CachePass;

impl Pass for CachePass {
    fn id(&self) -> PassId {
        PassId::Cache
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        for idx in 0..cx.sites.len() {
            if cx.decided[idx] {
                continue;
            }
            let Some((ptr, loop_id)) = cx.sites[idx]
                .as_ref()
                .and_then(|r| r.loops.last().map(|l| (r.ptr, l.id)))
            else {
                continue;
            };
            out.visited += 1;
            if cx.ptr_defs_in_loop.contains(&(ptr, loop_id)) {
                continue;
            }
            let cache = match cx.caches.get(&(loop_id, ptr)) {
                Some(c) => *c,
                None => {
                    let id = CacheId(cx.num_caches);
                    cx.num_caches += 1;
                    cx.caches.insert((loop_id, ptr), id);
                    cx.plans.entry(loop_id).or_default().caches.push((id, ptr));
                    id
                }
            };
            out.transformed += 1;
            cx.decide_site(
                idx,
                SiteAction::Cached { cache },
                SiteFate::Cached,
                PassId::Cache,
                format!("quasi-bound slot #{} for {ptr} on loop {loop_id}", cache.0),
            );
        }
        out
    }
}
