//! `anchor`: operation-level anchoring at the object base (paper §4.4.1).
//!
//! Three rewrites for anchored tools, all after placement is settled:
//!
//! 1. Every still-undecided access becomes an *anchored* operation check
//!    (checked from the object base instead of the access address).
//! 2. Merged-region lower bounds extend down to the base
//!    (`lo → min(lo, 0)`): the region check then also covers underflow.
//! 3. Promoted pre-check lower bounds that are provably non-negative
//!    constants anchor to the base (`lo → 0`), which is what turns
//!    Figure 8c's hull into `CI(x, x+4N)`.
//!
//! Running these as a late pass is equivalent to the old inline anchoring:
//! a constant lower bound stays constant through hull widening (`fold(x·0 +
//! c) = c`), so anchoring before or after hoisting yields the same bound.

use giantsan_ir::{Expr, SiteAction};

use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct AnchorPass;

impl Pass for AnchorPass {
    fn id(&self) -> PassId {
        PassId::Anchor
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        // 1. Leftover sites: anchored operation checks.
        for idx in 0..cx.sites.len() {
            if cx.decided[idx] || cx.sites[idx].is_none() {
                continue;
            }
            out.visited += 1;
            out.transformed += 1;
            cx.decide_site(
                idx,
                SiteAction::Anchored,
                SiteFate::Anchored,
                PassId::Anchor,
                "anchored operation check at the object base (§4.4.1)".into(),
            );
        }
        // 2. Merged regions: extend non-negative hulls down to the base.
        for act in cx.actions.iter_mut() {
            if let SiteAction::Region { lo, .. } = act {
                if let Some(c) = lo.as_const() {
                    out.visited += 1;
                    if c > 0 {
                        *lo = Expr::Const(0);
                        out.transformed += 1;
                    }
                }
            }
        }
        // 3. Promoted pre-checks: anchor provably non-negative lower bounds.
        for lp in cx.plans.values_mut() {
            for pre in &mut lp.pre_checks {
                if let Some(c) = pre.lo.as_const() {
                    out.visited += 1;
                    if c >= 0 {
                        if pre.lo != Expr::Const(0) {
                            out.transformed += 1;
                        }
                        pre.lo = Expr::Const(0);
                    }
                }
            }
        }
        out
    }
}
