//! `static-safety`: elision of provably in-bounds accesses.
//!
//! A constant offset into a pointer that still holds a fresh allocation of
//! statically known size needs no runtime check at all when
//! `0 <= offset && offset + width <= size`. Freshness is the block-local
//! fact computed by the `must-alias` walk; running this pass *before*
//! `merge` means a statically-safe site leaves its must-alias group before
//! the merge hull is computed — exactly the behavior of the old inline
//! walker, where a safe site never joined a group.

use giantsan_ir::SiteAction;

use crate::passes::Pass;
use crate::pipeline::{AnalysisCtx, PassId, PassOutcome};
use crate::planner::SiteFate;

pub(crate) struct StaticSafetyPass;

impl Pass for StaticSafetyPass {
    fn id(&self) -> PassId {
        PassId::StaticSafety
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> PassOutcome {
        let mut out = PassOutcome::default();
        for idx in 0..cx.sites.len() {
            if cx.decided[idx] {
                continue;
            }
            let Some(c) = cx.const_offsets[idx] else {
                continue;
            };
            let Some((width, ptr)) = cx.sites[idx].as_ref().map(|r| (r.width, r.ptr)) else {
                continue;
            };
            out.visited += 1;
            let Some(size) = cx.fresh_at_site[idx] else {
                continue;
            };
            if c >= 0 && c + width as i64 <= size {
                out.transformed += 1;
                out.eliminated += 1;
                cx.decide_site(
                    idx,
                    SiteAction::Skip,
                    SiteFate::StaticallySafe,
                    PassId::StaticSafety,
                    format!(
                        "[{c}, {}) provably inside the fresh {size}-byte allocation {ptr}",
                        c + width as i64
                    ),
                );
            }
        }
        out
    }
}
