//! The instrumentation planner: from a program and a tool profile to a
//! [`CheckPlan`].
//!
//! This is the reproduction of the paper's compilation-phase pipeline
//! (§4.4). [`analyze`] runs the pass pipeline (see [`crate::pipeline`]): the
//! planner first gives every access its instruction-level check, then —
//! pass set permitting — merges must-aliased constant-offset checks
//! (Aliased Check Elimination), hoists loop-invariant checks, promotes
//! affine in-loop checks to one pre-header region check (Check-in-Loop
//! Promotion via the SCEV-style [`crate::affine`] decomposition), and routes
//! everything else through quasi-bound history caches. The worked example is
//! Figure 8: five checks become `CI(p, p+8)`, `CI(x, x+4N)` and one cached
//! check for `y[j]`.

use std::collections::HashMap;

use giantsan_ir::{CheckPlan, Program};

use crate::pipeline::{PassManager, PassStats, Provenance};
use crate::profile::ToolProfile;

/// Why a site ended up with its action (static accounting for Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteFate {
    /// Plain instruction-level check.
    Direct,
    /// Anchored operation check.
    Anchored,
    /// Carries a merged region check covering eliminated aliases.
    MergeLeader,
    /// Eliminated: covered by a merge leader.
    MergedAway,
    /// Eliminated: hoisted to a loop pre-header (invariant or affine).
    Promoted,
    /// Routed through a quasi-bound cache.
    Cached,
    /// Memory intrinsic checked as a region by the runtime guardian.
    MemIntrinsic,
    /// Eliminated: the access is provably in bounds at compile time (a
    /// constant offset into a constant-size allocation with no intervening
    /// free) — no runtime check is needed at all.
    StaticallySafe,
}

/// A produced plan plus its static accounting and observability records.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The executable plan.
    pub plan: CheckPlan,
    /// Static fate of every site, indexed by [`giantsan_ir::SiteId`].
    pub fates: Vec<SiteFate>,
    /// Which pass decided each site, and why (`None` for site ids that
    /// never appear in the program).
    pub provenance: Vec<Option<Provenance>>,
    /// One row per pipeline stage, in execution order.
    pub pass_stats: Vec<PassStats>,
}

impl Analysis {
    /// Counts sites per fate.
    pub fn fate_counts(&self) -> HashMap<SiteFate, usize> {
        let mut m = HashMap::new();
        for f in &self.fates {
            *m.entry(*f).or_insert(0) += 1;
        }
        m
    }

    /// Renders the plan human-readably: one line per site, then the
    /// per-loop pre-checks (the "instrumented source" view of Figure 8c).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, fate) in self.fates.iter().enumerate() {
            let _ = writeln!(out, "site s{i}: {}", fate.describe());
        }
        let mut loops: Vec<_> = self.plan.loops.iter().collect();
        loops.sort_by_key(|(id, _)| **id);
        for (id, lp) in loops {
            for pre in &lp.pre_checks {
                let _ = writeln!(
                    out,
                    "loop {id} pre-header: CI({} + {}, {} + {})",
                    pre.ptr, pre.lo, pre.ptr, pre.hi
                );
            }
            for (cache, ptr) in &lp.caches {
                let _ = writeln!(out, "loop {id}: quasi-bound slot #{} for {ptr}", cache.0);
            }
        }
        out
    }

    /// Renders the per-site provenance table: fate, deciding pass, and the
    /// pass's recorded reasoning.
    pub fn render_provenance(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, fate) in self.fates.iter().enumerate() {
            match &self.provenance[i] {
                Some(p) => {
                    let _ = writeln!(
                        out,
                        "s{i:<4} {:<15} [{:<13}] {}",
                        format!("{fate:?}"),
                        p.pass.name(),
                        p.reason
                    );
                }
                None => {
                    let _ = writeln!(out, "s{i:<4} {:<15} [{:<13}] -", format!("{fate:?}"), "-");
                }
            }
        }
        out
    }

    /// Renders the per-pass statistics table (one row per pipeline stage).
    pub fn render_pass_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("pass           on   visited  transformed  eliminated  wall\n");
        for s in &self.pass_stats {
            let _ = writeln!(
                out,
                "{:<14} {:<3} {:>8} {:>12} {:>11}  {:?}",
                s.pass.name(),
                if s.enabled { "yes" } else { "no" },
                s.visited,
                s.transformed,
                s.eliminated,
                s.wall
            );
        }
        out
    }
}

impl SiteFate {
    /// One-line description of the fate.
    pub fn describe(self) -> &'static str {
        match self {
            SiteFate::Direct => "instruction-level check every execution",
            SiteFate::Anchored => "anchored operation check every execution",
            SiteFate::MergeLeader => "merged region check (covers aliased sites)",
            SiteFate::MergedAway => "eliminated (covered by a merged check)",
            SiteFate::Promoted => "eliminated (hoisted to a loop pre-header CI)",
            SiteFate::Cached => "history-cached (quasi-bound)",
            SiteFate::MemIntrinsic => "region-checked by the runtime guardian",
            SiteFate::StaticallySafe => "eliminated (statically in bounds)",
        }
    }
}

/// Runs the planner for `program` under `profile`: schedules the pass
/// pipeline for the profile's pass set and runs it.
///
/// # Example
///
/// The paper's Figure 8 merging result:
///
/// ```
/// use giantsan_analysis::{analyze, SiteFate, ToolProfile};
/// use giantsan_ir::{Expr, ProgramBuilder};
///
/// // p[0] + p[10] + p[20] — three aliased constant-offset loads into a
/// // runtime-sized buffer (a constant-size one would be statically safe).
/// let mut b = ProgramBuilder::new("alias");
/// let n = b.input(0);
/// let p = b.alloc_heap(n);
/// let _ = b.load(p, 0i64, 8);
/// let _ = b.load(p, 80i64, 8);
/// let _ = b.load(p, 160i64, 8);
/// let prog = b.build();
///
/// let a = analyze(&prog, &ToolProfile::giantsan());
/// assert_eq!(a.fates[0], SiteFate::MergeLeader);
/// assert_eq!(a.fates[1], SiteFate::MergedAway);
/// assert_eq!(a.fates[2], SiteFate::MergedAway);
/// ```
pub fn analyze(program: &Program, profile: &ToolProfile) -> Analysis {
    PassManager::for_profile(profile).run(program, profile)
}

/// [`analyze`] with a telemetry recorder: one [`Pass`] event per pipeline
/// stage (see [`PassManager::run_recorded`]).
///
/// [`Pass`]: giantsan_telemetry::EventKind::Pass
pub fn analyze_recorded<R: giantsan_telemetry::Recorder>(
    program: &Program,
    profile: &ToolProfile,
    rec: &mut R,
) -> Analysis {
    PassManager::for_profile(profile).run_recorded(program, profile, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PassId;
    use giantsan_ir::{Expr, LoopId, ProgramBuilder, SiteAction};

    /// The paper's Figure 8a program.
    fn figure8() -> Program {
        let mut b = ProgramBuilder::new("figure8");
        let n = b.input(0);
        // int *x = p[0]; int *y = p[1]; modelled as two buffers.
        let x = b.alloc_heap(Expr::input(0) * 4);
        let y = b.alloc_heap(Expr::input(0) * 4 + 1024);
        b.for_loop(0i64, n, |b, i| {
            let j = b.load(x, Expr::var(i) * 4, 4); // site 0
            b.store(y, Expr::var(j) * 4, 4, Expr::var(i)); // site 1
        });
        b.memset(x, 0i64, Expr::input(0) * 4, 0i64); // site 2
        b.free(x);
        b.free(y);
        b.build()
    }

    #[test]
    fn figure8_giantsan_plan_matches_figure_8c() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        // x[i] promoted to CI(x, x+4N); y[j] cached; memset checked as region.
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Cached);
        assert_eq!(a.fates[2], SiteFate::MemIntrinsic);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks.len(), 1);
        assert_eq!(lp.caches.len(), 1);
        assert_eq!(a.plan.num_caches, 1);
        // The promoted region is [0, 4N): anchored at x.
        assert_eq!(lp.pre_checks[0].lo, Expr::Const(0));
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[100]), 400);
    }

    #[test]
    fn figure8_asan_plan_is_all_direct() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::asan());
        assert_eq!(a.fates[0], SiteFate::Direct);
        assert_eq!(a.fates[1], SiteFate::Direct);
        assert!(a.plan.loops.is_empty());
        assert_eq!(a.plan.num_caches, 0);
    }

    #[test]
    fn figure8_asan_mm_promotes_but_does_not_cache() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Direct, "no caching in ASan--");
        // Non-anchored: the promoted range keeps its computed lower bound.
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo.eval(&[], &[100]), 0);
    }

    #[test]
    fn cache_only_profile_caches_everything_in_loops() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan_cache_only());
        assert_eq!(a.fates[0], SiteFate::Cached);
        assert_eq!(a.fates[1], SiteFate::Cached);
        assert_eq!(a.plan.num_caches, 2);
    }

    #[test]
    fn elimination_only_promotes_and_anchors_the_rest() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan_elimination_only());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Anchored);
    }

    #[test]
    fn opaque_bounds_block_promotion() {
        let mut b = ProgramBuilder::new("opaque");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        b.for_loop_opaque(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Cached);
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Direct);
    }

    #[test]
    fn frees_inside_loops_block_promotion() {
        let mut b = ProgramBuilder::new("barrier");
        let n = b.input(0);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
            let q = b.alloc_heap(16);
            b.free(q);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(
            a.fates[0],
            SiteFate::Cached,
            "allocation churn in the loop must force the cached path"
        );
    }

    #[test]
    fn invariant_access_hoisted() {
        let mut b = ProgramBuilder::new("invariant");
        let n = b.input(0);
        let p = b.alloc_heap(64);
        b.for_loop(0i64, n, |b, _| {
            b.load_discard(p, 8i64, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo, Expr::Const(8));
        assert_eq!(lp.pre_checks[0].hi, Expr::Const(16));
    }

    #[test]
    fn reverse_affine_promotes_with_flipped_range() {
        let mut b = ProgramBuilder::new("rev");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        b.for_loop_rev(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        // Direction does not matter for the range: still [0, 8N).
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[64]), 512);
    }

    #[test]
    fn negative_stride_promotion() {
        let mut b = ProgramBuilder::new("negstride");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        // offset = 8*(N-1) - 8*i: walks backward with a forward loop.
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, (Expr::input(0) - 1) * 8 - Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        // For N = 4: region [0, 32).
        assert_eq!(lp.pre_checks[0].lo.eval(&[], &[4]), 0);
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[4]), 32);
    }

    #[test]
    fn merging_respects_barriers() {
        let mut b = ProgramBuilder::new("barrier2");
        let p = b.alloc_heap(64);
        b.load_discard(p, 0i64, 8);
        b.free(p);
        let q = b.alloc_heap(64);
        let _ = q;
        b.load_discard(p, 8i64, 8); // use-after-free, separately checked
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_ne!(a.fates[0], SiteFate::MergedAway);
        assert_ne!(a.fates[1], SiteFate::MergedAway);
    }

    #[test]
    fn merged_region_covers_hull_and_underflow_keeps_sign() {
        let mut b = ProgramBuilder::new("hull");
        let n = b.input(0);
        let p = b.alloc_heap(n);
        b.store(p, 16i64, 8, 1i64);
        b.load_discard(p, 40i64, 4);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        match &a.plan.sites[0] {
            SiteAction::Region { lo, hi } => {
                // Anchored: extends down to the base.
                assert_eq!(lo, &Expr::Const(0));
                assert_eq!(hi, &Expr::Const(44));
            }
            other => panic!("expected region, got {other:?}"),
        }
        // For ASan--, the hull spans 6 segments but only replaces 2 checks:
        // the linear guardian makes that merge unprofitable, so it is
        // refused.
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.plan.sites[0], SiteAction::Direct);
        assert_eq!(a.plan.sites[1], SiteAction::Direct);
    }

    #[test]
    fn asan_mm_merges_only_when_profitable() {
        // Three 8-byte accesses inside one 16-byte hull: the 2-segment walk
        // replaces 3 checks — profitable even for a linear guardian.
        let mut b = ProgramBuilder::new("dense");
        let n = b.input(0);
        let p = b.alloc_heap(n);
        b.load_discard(p, 0i64, 8);
        b.load_discard(p, 4i64, 8);
        b.load_discard(p, 8i64, 8);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::MergeLeader);
        assert_eq!(a.fates[1], SiteFate::MergedAway);
        assert_eq!(a.fates[2], SiteFate::MergedAway);
        match &a.plan.sites[0] {
            SiteAction::Region { lo, hi } => {
                assert_eq!(lo, &Expr::Const(0));
                assert_eq!(hi, &Expr::Const(16));
            }
            other => panic!("expected region, got {other:?}"),
        }
    }

    #[test]
    fn lfp_profile_anchors_every_site() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::lfp());
        assert_eq!(a.fates[0], SiteFate::Anchored);
        assert_eq!(a.fates[1], SiteFate::Anchored);
        assert!(a.plan.loops.is_empty());
    }

    #[test]
    fn constant_nests_hoist_to_the_outermost_loop() {
        // A stencil-style nest with constant inner bounds: the promoted
        // check climbs to the outer (runtime-bounded) loop and runs once per
        // outer iteration instead of once per row.
        let mut b = ProgramBuilder::new("nest");
        let steps = b.input(0);
        let p = b.alloc_heap(64 * 64 * 8);
        b.for_loop(0i64, steps, |b, _| {
            b.for_loop(1i64, 63i64, |b, y| {
                b.for_loop(1i64, 63i64, |b, x| {
                    b.load_discard(p, (Expr::var(y) * 64 + Expr::var(x)) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        // The pre-check lives on the outermost loop (id 0), anchored at the
        // base for the anchored profile.
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks.len(), 1);
        assert_eq!(lp.pre_checks[0].lo.as_const(), Some(0));
        assert_eq!(lp.pre_checks[0].hi.as_const(), Some((62 * 64 + 62) * 8 + 8));
        assert!(!a.plan.loops.contains_key(&LoopId(2)));
        // The non-anchored profile keeps the true widened lower offset.
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo.as_const(), Some((64 + 1) * 8));
    }

    #[test]
    fn hoisting_stops_at_possibly_empty_loops() {
        // The middle loop's bound is a runtime input: it may run zero times,
        // so lifting the inner check past it would fire for accesses that
        // never happen. The check must stay on the inner loop.
        let mut b = ProgramBuilder::new("maybe-empty");
        let outer_n = b.input(0);
        let mid_n = b.input(1);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, outer_n, |b, _| {
            b.for_loop(0i64, mid_n.clone(), |b, _| {
                b.for_loop(0i64, 8i64, |b, x| {
                    b.load_discard(p, Expr::var(x) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        // Hoisted out of the constant x-loop (id 2) to the mid loop (id 1),
        // but no further: the mid loop's own trip is not provably positive.
        assert!(a.plan.loops.contains_key(&LoopId(1)));
        assert!(!a.plan.loops.contains_key(&LoopId(0)));
        // Soundness at runtime: mid_n = 0 with a tiny buffer must not
        // report.
        let mut b = ProgramBuilder::new("maybe-empty-2");
        let outer_n = b.input(0);
        let mid_n = b.input(1);
        let p = b.alloc_heap(8);
        b.for_loop(0i64, outer_n, |b, _| {
            b.for_loop(0i64, mid_n.clone(), |b, _| {
                b.for_loop(0i64, 8i64, |b, x| {
                    b.load_discard(p, Expr::var(x) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let mut san = giantsan_core::GiantSan::new(giantsan_runtime::RuntimeConfig::small());
        let r = giantsan_ir::run(
            &prog,
            &[5, 0],
            &mut san,
            &a.plan,
            &giantsan_ir::ExecConfig::default(),
        );
        assert!(r.reports.is_empty(), "{:?}", r.reports.first());
    }

    #[test]
    fn strcpy_sites_are_guardian_checked() {
        let mut b = ProgramBuilder::new("strcpy");
        let src = b.alloc_heap(64);
        let dst = b.alloc_heap(64);
        b.strcpy(dst, 0i64, src, 0i64);
        let prog = b.build();
        for profile in [ToolProfile::giantsan(), ToolProfile::asan()] {
            let a = analyze(&prog, &profile);
            assert_eq!(a.fates[0], SiteFate::MemIntrinsic, "{}", profile.name);
        }
    }

    #[test]
    fn realloc_blocks_promotion_and_caching() {
        // The pointer is redefined by realloc inside the loop: neither a
        // hoisted pre-check nor a cache slot may survive the move.
        let mut b = ProgramBuilder::new("realloc-loop");
        let n = b.input(0);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
            b.realloc(p, 4096i64);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert!(
            matches!(a.fates[0], SiteFate::Anchored | SiteFate::Direct),
            "got {:?}",
            a.fates[0]
        );
        assert_eq!(a.plan.num_caches, 0);
        assert!(a.plan.loops.is_empty() || a.plan.loops[&LoopId(0)].pre_checks.is_empty());
    }

    #[test]
    fn fate_counts_sum_to_sites() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let total: usize = a.fate_counts().values().sum();
        assert_eq!(total, prog.num_sites as usize);
    }

    #[test]
    fn statically_safe_accesses_need_no_check() {
        // Constant offsets inside a fresh constant-size allocation: zero
        // runtime checks; the same offsets past the size still get checks.
        let mut b = ProgramBuilder::new("static");
        let p = b.alloc_heap(48);
        b.store(p, 0i64, 8, 1i64);
        b.store(p, 40i64, 8, 2i64);
        b.load_discard(p, 44i64, 4); // 44+4 = 48: still inside
        b.load_discard(p, 48i64, 1); // one past: needs a check
        b.free(p);
        b.load_discard(p, 0i64, 8); // after free: freshness is dead
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::StaticallySafe);
        assert_eq!(a.fates[1], SiteFate::StaticallySafe);
        assert_eq!(a.fates[2], SiteFate::StaticallySafe);
        assert_ne!(a.fates[3], SiteFate::StaticallySafe);
        assert_ne!(a.fates[4], SiteFate::StaticallySafe);
        // ASan (no elimination) still checks everything.
        let a = analyze(&prog, &ToolProfile::asan());
        assert!(a.fates.iter().all(|f| *f == SiteFate::Direct));
    }

    #[test]
    fn static_safety_is_block_local_and_killed_by_redefinition() {
        let mut b = ProgramBuilder::new("static-scope");
        let p = b.alloc_heap(64);
        // Inside a nested construct: freshness does not propagate.
        b.if_nonzero(1i64, |b| {
            b.store(p, 0i64, 8, 1i64);
        });
        // Redefinition by ptr_add kills it for the alias.
        let q = b.ptr_add(p, 8i64);
        b.store(q, 0i64, 8, 2i64);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_ne!(a.fates[0], SiteFate::StaticallySafe, "nested block");
        assert_ne!(a.fates[1], SiteFate::StaticallySafe, "derived pointer");
    }

    #[test]
    fn render_shows_sites_and_prechecks() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let s = a.render();
        assert!(s.contains("site s0: eliminated (hoisted"), "{s}");
        assert!(s.contains("site s1: history-cached"), "{s}");
        assert!(s.contains("pre-header: CI(p0 + 0, p0 +"), "{s}");
        assert!(s.contains("quasi-bound slot #0 for p1"), "{s}");
    }

    #[test]
    fn provenance_names_the_deciding_pass() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.provenance.len(), prog.num_sites as usize);
        let p0 = a.provenance[0].as_ref().unwrap();
        assert_eq!(p0.pass, PassId::Promote);
        assert!(p0.reason.contains("affine stride 4"), "{}", p0.reason);
        let p1 = a.provenance[1].as_ref().unwrap();
        assert_eq!(p1.pass, PassId::Cache);
        let p2 = a.provenance[2].as_ref().unwrap();
        assert_eq!(p2.pass, PassId::ConstProp);
        let s = a.render_provenance();
        assert!(s.contains("[promote"), "{s}");
        assert!(s.contains("[cache"), "{s}");
    }

    #[test]
    fn pass_stats_cover_the_whole_pipeline() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.pass_stats.len(), PassId::PIPELINE.len());
        // Every pass of the full profile is enabled and the decisions add
        // up: promote 1, cache 1, const-prop settles the intrinsic.
        assert!(a.pass_stats.iter().all(|s| s.enabled));
        let by = |id: PassId| a.pass_stats.iter().find(|s| s.pass == id).unwrap();
        assert_eq!(by(PassId::Promote).transformed, 1);
        assert_eq!(by(PassId::Cache).transformed, 1);
        assert_eq!(by(PassId::Finalize).transformed, 0);
        let s = a.render_pass_stats();
        assert!(s.contains("const-prop"), "{s}");
        assert!(s.contains("promote"), "{s}");
    }

    #[test]
    fn disabled_passes_decide_nothing() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::asan());
        for s in &a.pass_stats {
            if !s.enabled {
                assert_eq!(s.transformed, 0, "{:?}", s.pass);
            }
        }
        // Everything lands in finalize for ASan (but the intrinsic site is
        // settled by const-prop).
        let fin = a
            .pass_stats
            .iter()
            .find(|s| s.pass == PassId::Finalize)
            .unwrap();
        assert_eq!(fin.transformed, 2);
    }
}
